//! A downstream application's view of an atomic swap: wallets, off-chain
//! negotiation of `ms(D)`, and a persistent swap session that survives a
//! client crash between the commit decision and settlement.
//!
//! The flow mirrors what a real wallet integration would do:
//!
//! 1. Alice and Bob each hold a [`Wallet`]; Alice proposes the swap graph
//!    and both contribute signature shares until `ms(D)` is complete.
//! 2. A [`SwapSession`] drives the AC3WN phases one step at a time,
//!    persisting its state to a JSON file after every phase.
//! 3. Right after the witness network records the commit decision, the
//!    client process "crashes" (we drop the session object). The world keeps
//!    mining blocks meanwhile.
//! 4. A fresh process reloads the session from the JSON file and settles the
//!    swap — possible precisely because AC3WN has no timelock racing against
//!    the recovery (the paper's commitment property).
//!
//! Run with: `cargo run --example client_session`

use ac3wn::client::{Negotiation, SessionPhase, SwapSession, Wallet};
use ac3wn::prelude::*;

fn main() {
    let scenario_cfg = ScenarioConfig::default();
    let mut scenario = two_party_scenario(50, 80, &scenario_cfg);
    let protocol_cfg =
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };

    // ---------------------------------------------------------------------
    // 1. Wallets and off-chain negotiation.
    // ---------------------------------------------------------------------
    let alice = Wallet::new("alice");
    let bob = Wallet::new("bob");
    println!("Alice's address: {}", alice.address());
    println!("Bob's   address: {}", bob.address());
    println!(
        "Funding before the swap — alice: {} total, bob: {} total",
        alice.total_balance(&scenario.world),
        bob.total_balance(&scenario.world)
    );

    let mut negotiation = Negotiation::new(scenario.graph.clone());
    negotiation.submit(alice.sign_proposal(negotiation.proposal())).expect("alice signs");
    println!(
        "\nAlice signed; still waiting on {} participant(s)",
        negotiation.missing_signers().len()
    );
    negotiation.submit(bob.sign_proposal(negotiation.proposal())).expect("bob signs");
    let signed = negotiation.finalize().expect("ms(D) verifies");
    println!("ms(D) complete: {} participants signed the graph", signed.graph.participants().len());

    // ---------------------------------------------------------------------
    // 2. Drive the session phase by phase, persisting after each step.
    // ---------------------------------------------------------------------
    let state_file = std::env::temp_dir().join("ac3wn-client-session.json");
    let mut session =
        SwapSession::new(signed, scenario.witness_chain, protocol_cfg).expect("session starts");
    for _ in 0..3 {
        let phase = session
            .step(&mut scenario.world, &mut scenario.participants)
            .expect("protocol step succeeds");
        std::fs::write(&state_file, session.to_json()).expect("persist session state");
        println!("phase: {phase}  (state persisted to {})", state_file.display());
        if phase == SessionPhase::Decided {
            break;
        }
    }
    assert_eq!(session.phase(), SessionPhase::Decided);
    println!("\nCommit decision recorded on the witness chain: {:?}", session.decision());

    // ---------------------------------------------------------------------
    // 3. The client crashes before settling. Time passes.
    // ---------------------------------------------------------------------
    drop(session);
    println!("client crashed before settlement; the chains keep producing blocks...");
    scenario.world.advance(30_000);

    // ---------------------------------------------------------------------
    // 4. A new process reloads the session and settles the swap.
    // ---------------------------------------------------------------------
    let snapshot = std::fs::read_to_string(&state_file).expect("read persisted session");
    let mut recovered = SwapSession::from_json(&snapshot).expect("session state decodes");
    println!(
        "recovered session in phase {} with decision {:?}",
        recovered.phase(),
        recovered.decision()
    );
    recovered
        .run_to_completion(&mut scenario.world, &mut scenario.participants)
        .expect("settlement completes");
    println!("final phase: {}", recovered.phase());
    println!("verdict:     {}", recovered.verdict(&scenario.world));
    println!(
        "Funding after the swap — alice: {} total, bob: {} total (fees paid: {})",
        alice.total_balance(&scenario.world),
        bob.total_balance(&scenario.world),
        recovered.fees_paid()
    );
    assert!(recovered.verdict(&scenario.world).is_atomic());
    let _ = std::fs::remove_file(&state_file);
}
