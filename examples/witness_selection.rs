//! Choosing the witness network (Section 6.3) and the cost of coordination
//! (Section 6.2).
//!
//! For a given value at risk, how many confirmations `d` must the asset
//! contracts demand of the witness decision so that a 51% attack on the
//! witness network costs more than it could steal? And what does the extra
//! coordination contract cost? This example evaluates the paper's formulas
//! and then demonstrates on the simulator that a shallow fork of the
//! witness chain cannot flip a decision protected by depth `d`.
//!
//! Run with: `cargo run --example witness_selection`

use ac3wn::core::analysis::{cost, witness_choice};
use ac3wn::prelude::*;

fn main() {
    // ---- Section 6.3: the depth inequality --------------------------------
    let hourly_attack_cost = 300_000.0; // the paper's Bitcoin estimate, USD/hour
    let blocks_per_hour = 6.0;

    println!("Witness = Bitcoin-like network (51% attack ≈ $300K/hour, 6 blocks/hour):");
    for value in [10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0] {
        let d = witness_choice::required_depth(value, hourly_attack_cost, blocks_per_hour);
        println!(
            "  value at risk ${value:>10.0} => require d = {d:>3} confirmations \
             (attack would cost ${:.0})",
            witness_choice::attack_cost(d, hourly_attack_cost, blocks_per_hour)
        );
    }
    println!(
        "  paper's example: $1M at risk ⇒ d > 20 ⇒ d = {}",
        witness_choice::required_depth(1_000_000.0, hourly_attack_cost, blocks_per_hour)
    );

    // ---- Section 6.2: what the coordination contract costs ----------------
    println!("\nCoordination overhead (one extra contract + one extra call):");
    for n in [2u64, 5, 10, 20] {
        println!(
            "  N = {n:>2} contracts: Herlihy fee = {:>3}, AC3WN fee = {:>3} (overhead 1/{n})",
            cost::herlihy_fee(n, 4, 2),
            cost::ac3wn_fee(n, 4, 2)
        );
    }
    println!(
        "  in dollars: ≈${:.2} at $300/ETH, ≈${:.2} at $140/ETH",
        cost::overhead_usd(300.0),
        cost::overhead_usd(140.0)
    );

    // ---- Fork resilience on the simulator ----------------------------------
    println!("\nFork resilience demo:");
    let mut scenario = two_party_scenario(50, 80, &ScenarioConfig::default());
    let config = ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };
    let report = Ac3wn::new(config).execute(&mut scenario).expect("swap");
    println!("  swap settled: {}", report.verdict());
    assert!(report.is_atomic());

    let witness = scenario.witness_chain;
    let height_before = scenario.world.chain(witness).unwrap().height();
    // A 2-block-deep adversarial fork, shallower than the d = 3 the asset
    // contracts demanded. The canonical chain may reorganise, but the
    // decision the contracts already accepted (buried ≥ d) is unaffected —
    // the redeemed assets stay redeemed.
    scenario.world.inject_fork(witness, 2, 3).expect("fork injection");
    let height_after = scenario.world.chain(witness).unwrap().height();
    println!(
        "  injected a 3-block attacker branch forking 2 below the witness tip \
         (height {height_before} -> {height_after})"
    );
    println!("  swap verdict after the fork: {}", report.verdict());
    println!("  => a fork shallower than d cannot undo an accepted decision (Lemma 5.3).");
}
