//! Quickstart: the paper's running example (Figure 4).
//!
//! Alice owns X units on chain A ("Bitcoin") and wants Bob's Y units on
//! chain B ("Ethereum"). They execute the swap atomically with AC3WN: a
//! witness contract on a third permissionless chain coordinates the commit,
//! and both asset contracts redeem against evidence of its decision.
//!
//! Run with: `cargo run --example quickstart`

use ac3wn::prelude::*;

fn main() {
    // Two fast simulated chains plus a witness chain; every participant is
    // funded on every chain (assets to swap + fee budget).
    let scenario_cfg = ScenarioConfig::default();
    let mut scenario = two_party_scenario(50, 80, &scenario_cfg);

    let alice = scenario.participants.get("alice").unwrap().address();
    let bob = scenario.participants.get("bob").unwrap().address();
    let chain_a = scenario.asset_chains[0];
    let chain_b = scenario.asset_chains[1];

    println!("Before the swap:");
    println!("  alice on chain A: {}", scenario.world.chain(chain_a).unwrap().balance_of(&alice));
    println!("  bob   on chain A: {}", scenario.world.chain(chain_a).unwrap().balance_of(&bob));
    println!("  alice on chain B: {}", scenario.world.chain(chain_b).unwrap().balance_of(&alice));
    println!("  bob   on chain B: {}", scenario.world.chain(chain_b).unwrap().balance_of(&bob));

    // Execute the AC3WN protocol: graph multisignature, witness contract,
    // parallel deployment, decision, parallel redemption.
    let config = ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };
    let report = Ac3wn::new(config).execute(&mut scenario).expect("swap executes");

    println!("\n{}", report.summary());
    println!("decision: {:?}", report.decision);
    println!("atomic:   {}", report.is_atomic());
    println!(
        "latency:  {:.2} Δ ({} simulated ms)",
        report.latency_in_deltas(),
        report.latency_ms()
    );

    println!("\nAfter the swap:");
    println!("  alice on chain A: {}", scenario.world.chain(chain_a).unwrap().balance_of(&alice));
    println!("  bob   on chain A: {}", scenario.world.chain(chain_a).unwrap().balance_of(&bob));
    println!("  alice on chain B: {}", scenario.world.chain(chain_b).unwrap().balance_of(&alice));
    println!("  bob   on chain B: {}", scenario.world.chain(chain_b).unwrap().balance_of(&bob));

    println!("\nProtocol timeline:");
    for event in report.timeline.events() {
        let t = (event.at.saturating_sub(report.started_at)) as f64 / report.delta_ms as f64;
        println!("  t = {t:>5.2} Δ  {:?}", event.kind);
    }

    assert!(report.is_atomic());
    assert_eq!(report.decision, Some(true));
}
