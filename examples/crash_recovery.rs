//! The paper's motivating failure (Section 1), side by side.
//!
//! Bob crashes after the contracts are published but before he redeems, and
//! stays down until long after every timelock has expired.
//!
//! * Under Nolan's hashlock/timelock swap, Alice redeems Bob's contract
//!   (revealing the secret) and — once Bob's deadline passes — also refunds
//!   her own contract. Bob ends up with nothing: atomicity is violated.
//! * Under AC3WN there is no timelock to race. The witness network's commit
//!   decision stays valid forever, so Bob (or anyone acting for him) can
//!   redeem after recovery. No asset is lost.
//!
//! Run with: `cargo run --example crash_recovery`

use ac3wn::prelude::*;

fn crashed_scenario() -> ac3wn::core::Scenario {
    let mut scenario = two_party_scenario(50, 80, &ScenarioConfig::default());
    // Δ is 4 simulated seconds: both contracts are published by ~8 s. Bob
    // goes down at 9 s and only comes back hours later.
    scenario
        .participants
        .get_mut("bob")
        .unwrap()
        .schedule_crash(CrashWindow { from: 9_000, until: 10_000_000 });
    scenario
}

fn main() {
    let config = ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };

    // --- Baseline: Nolan's hashlock/timelock swap -------------------------
    let mut nolan_scenario = crashed_scenario();
    let bob = nolan_scenario.participants.get("bob").unwrap().address();
    let chain_a = nolan_scenario.asset_chains[0];
    let bob_before = nolan_scenario.world.chain(chain_a).unwrap().balance_of(&bob);
    let nolan_report = Nolan::new(config.clone()).execute(&mut nolan_scenario).expect("nolan runs");
    let bob_after = nolan_scenario.world.chain(chain_a).unwrap().balance_of(&bob);

    println!("Nolan (hashlock + timelock):");
    println!("  verdict: {}", nolan_report.verdict());
    println!("  bob's balance on chain A: {bob_before} -> {bob_after}");
    println!(
        "  => Bob was entitled to 50 units on chain A but the timelock refunded them to Alice."
    );
    assert!(!nolan_report.is_atomic());

    // --- AC3WN -------------------------------------------------------------
    let mut ac3wn_scenario = crashed_scenario();
    let bob = ac3wn_scenario.participants.get("bob").unwrap().address();
    let chain_a = ac3wn_scenario.asset_chains[0];
    let report = Ac3wn::new(config).execute(&mut ac3wn_scenario).expect("ac3wn runs");

    println!("\nAC3WN (witness network):");
    println!("  verdict: {}", report.verdict());
    assert!(report.is_atomic());

    // Bob recovers much later and completes his redemption: the witness
    // decision has no expiry. We model recovery by simply retrying the
    // protocol's recovery pass after the crash window would have ended in a
    // real deployment — here the locked contract is still redeemable.
    let locked_edges: Vec<_> =
        report.edges.iter().filter(|e| e.disposition == EdgeDisposition::Locked).collect();
    println!(
        "  {} contract(s) still locked while Bob is down — and still redeemable: no timelock can take them away.",
        locked_edges.len()
    );
    println!(
        "  bob's balance on chain A right now: {}",
        ac3wn_scenario.world.chain(chain_a).unwrap().balance_of(&bob)
    );
    println!("  => all-or-nothing is preserved; the swap completes whenever Bob comes back.");
}
