//! Complex AC2T graphs (Figure 7 / Section 5.3): a supply-chain style
//! multi-party exchange.
//!
//! A manufacturer, a shipper, a retailer and an insurer exchange assets that
//! live on four different chains. The resulting transaction graph is cyclic
//! — and one variant is even disconnected — shapes that the single-leader
//! hashlock protocols cannot execute but AC3WN commits atomically.
//!
//! Run with: `cargo run --example supply_chain`

use ac3wn::core::scenario::custom_scenario;
use ac3wn::prelude::*;

fn run(label: &str, names: &[&str], edges: &[(usize, usize, u64)]) {
    let cfg = ScenarioConfig::default();
    let protocol_cfg =
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };

    // Can Herlihy's single-leader protocol even attempt this graph?
    let probe = custom_scenario(names, edges, &cfg);
    println!("== {label} ==");
    println!("  shape: {:?}, contracts: {}", probe.graph.shape(), probe.graph.contract_count());
    match Herlihy::supports_graph(&probe.graph) {
        Ok(leader) => println!("  Herlihy: supported (leader {leader})"),
        Err(e) => println!("  Herlihy: UNSUPPORTED — {e}"),
    }

    // AC3WN executes it regardless of shape.
    let mut scenario = custom_scenario(names, edges, &cfg);
    let report = Ac3wn::new(protocol_cfg).execute(&mut scenario).expect("ac3wn runs");
    println!("  AC3WN:   {} (latency {:.2} Δ)", report.verdict(), report.latency_in_deltas());
    assert!(report.is_atomic());
    println!();
}

fn main() {
    // A cyclic four-party supply chain: the manufacturer ships goods to the
    // shipper, the shipper delivers to the retailer, the retailer pays the
    // manufacturer, and the insurer settles premiums with the shipper.
    run(
        "cyclic supply chain (goods, delivery, payment, premium)",
        &["manufacturer", "shipper", "retailer", "insurer"],
        &[
            (0, 1, 40), // goods title      -> shipper
            (1, 2, 40), // delivered goods  -> retailer
            (2, 0, 90), // payment          -> manufacturer
            (3, 1, 15), // insurance payout -> shipper
            (1, 3, 5),  // premium          -> insurer
        ],
    );

    // The paper's Figure 7a: a pure three-party cycle.
    run("Figure 7a: three-party cycle", &["a", "b", "c"], &[(0, 1, 10), (1, 2, 20), (2, 0, 30)]);

    // The paper's Figure 7b: two completely independent swaps committed as
    // one atomic transaction (e.g. a portfolio rebalancing executed
    // all-or-nothing).
    run(
        "Figure 7b: disconnected portfolio rebalance",
        &["a", "b", "c", "d"],
        &[(0, 1, 10), (1, 0, 20), (2, 3, 30), (3, 2, 40)],
    );
}
