//! The paper's introduction, as a runnable comparison: exchanging tokens
//! through a trusted centralized exchange versus a peer-to-peer atomic
//! cross-chain transaction under AC3WN.
//!
//! Alice owns 50 units on chain A and wants Bob's 80 units on chain B.
//!
//! * **Centralized exchange (Trent)** — both sides first transfer their
//!   assets to Trent, then Trent pays each of them out on the other chain:
//!   four on-chain transactions, four transfer fees, and complete trust in
//!   Trent. Nothing forces Trent (or the counterparty) to complete the
//!   second half — the example also runs the abscond case, where Alice and
//!   Bob simply lose their deposits.
//! * **AC3WN** — one witness contract plus one asset contract per edge,
//!   executed atomically with no trusted intermediary; the only overhead
//!   over the hashlock baselines is the witness contract and its single
//!   state-change call (Section 6.2).
//!
//! Run with: `cargo run --example exchange_vs_p2p`

use ac3wn::prelude::*;

/// Submit a plain transfer of `amount` from `from` to `to` on `chain`.
fn transfer(
    scenario: &mut Scenario,
    from: &str,
    to: &str,
    chain: ChainId,
    amount: Amount,
) -> Result<TxId, String> {
    let fee = scenario.world.chain(chain).unwrap().params().transfer_fee;
    let from_addr = scenario.participants.get(from).unwrap().address();
    let to_addr = scenario.participants.get(to).unwrap().address();
    let (inputs, outputs) = scenario
        .world
        .chain(chain)
        .unwrap()
        .plan_payment(&from_addr, &to_addr, amount, fee)
        .ok_or_else(|| format!("{from} cannot fund the transfer"))?;
    let tx =
        scenario.participants.get_mut(from).unwrap().builder(chain).transfer(inputs, outputs, fee);
    let txid = scenario.world.submit(chain, tx).map_err(|e| e.to_string())?;
    scenario.world.wait_for_inclusion(chain, txid, 60_000).map_err(|e| e.to_string())?;
    Ok(txid)
}

fn balances(scenario: &Scenario, who: &str) -> (Amount, Amount) {
    let addr = scenario.participants.get(who).unwrap().address();
    let a = scenario.world.chain(scenario.asset_chains[0]).unwrap().balance_of(&addr);
    let b = scenario.world.chain(scenario.asset_chains[1]).unwrap().balance_of(&addr);
    (a, b)
}

fn print_balances(scenario: &Scenario, label: &str) {
    println!("  {label}");
    for who in ["alice", "bob", "trent"] {
        if scenario.participants.get(who).is_none() {
            continue;
        }
        let (a, b) = balances(scenario, who);
        println!("    {who:<6} chain A: {a:>5}   chain B: {b:>5}");
    }
}

/// Both legs of the exchange settle honestly: 4 transactions, 4 fees, and
/// the whole flow hinges on Trent behaving.
fn exchange_honest() {
    println!("\n=== Route 1: centralized exchange, Trent behaves ===");
    let mut s = custom_scenario(
        &["alice", "bob", "trent"],
        &[(0, 1, 50), (1, 0, 80)],
        &ScenarioConfig::default(),
    );
    print_balances(&s, "before:");
    let (chain_a, chain_b) = (s.asset_chains[0], s.asset_chains[1]);
    let mut txs = 0;
    txs += transfer(&mut s, "alice", "trent", chain_a, 50).map(|_| 1).unwrap_or(0);
    txs += transfer(&mut s, "bob", "trent", chain_b, 80).map(|_| 1).unwrap_or(0);
    txs += transfer(&mut s, "trent", "alice", chain_b, 80).map(|_| 1).unwrap_or(0);
    txs += transfer(&mut s, "trent", "bob", chain_a, 50).map(|_| 1).unwrap_or(0);
    print_balances(&s, "after:");
    println!("  on-chain transactions: {txs} (paper: four transactions when fiat or deposits are involved)");
    println!("  trust required: full custody of both assets by Trent");
}

/// Trent takes the deposits and never pays out — the trust failure the
/// paper's introduction warns about. No protocol rule is violated; the
/// participants simply lose.
fn exchange_abscond() {
    println!("\n=== Route 2: centralized exchange, Trent absconds ===");
    let mut s = custom_scenario(
        &["alice", "bob", "trent"],
        &[(0, 1, 50), (1, 0, 80)],
        &ScenarioConfig::default(),
    );
    print_balances(&s, "before:");
    let (chain_a, chain_b) = (s.asset_chains[0], s.asset_chains[1]);
    transfer(&mut s, "alice", "trent", chain_a, 50).unwrap();
    transfer(&mut s, "bob", "trent", chain_b, 80).unwrap();
    // Trent simply stops responding.
    print_balances(&s, "after (Trent keeps both deposits):");
    let (alice_a, alice_b) = balances(&s, "alice");
    let (bob_a, bob_b) = balances(&s, "bob");
    println!(
        "  alice lost {} on chain A and received nothing on chain B; bob lost {} on chain B",
        1_000 - alice_a,
        1_000 - bob_b
    );
    debug_assert!(alice_b == 1_000 && bob_a == 1_000);
}

/// The peer-to-peer route: AC3WN commits the swap atomically with no
/// intermediary at all.
fn p2p_ac3wn() {
    println!("\n=== Route 3: peer-to-peer AC3WN ===");
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    print_balances(&s, "before:");
    let cfg = ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };
    let report = Ac3wn::new(cfg).execute(&mut s).expect("swap executes");
    print_balances(&s, "after:");
    println!("  {}", report.summary());
    println!(
        "  contracts deployed: {} (N + 1: one per edge plus the witness contract SC_w)",
        report.deployments
    );
    println!(
        "  contract calls:     {} (N + 1: one settlement per edge plus SC_w's state change)",
        report.calls
    );
    println!(
        "  trust required: none — the witness network is permissionless, like the asset chains"
    );
    assert!(report.is_atomic());
}

fn main() {
    println!("Exchanging 50 units on chain A for 80 units on chain B (the paper's introduction).");
    exchange_honest();
    exchange_abscond();
    p2p_ac3wn();
    println!(
        "\nSummary: the centralized routes need a trusted custodian and give no atomicity — the \
         abscond run shows both participants simply losing their deposits — while AC3WN commits \
         the same exchange atomically for one extra contract and one extra call."
    );
}
