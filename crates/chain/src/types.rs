//! Fundamental identifier and value types shared across the simulated
//! blockchains.

use ac3_crypto::{Hash256, PublicKey};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a blockchain inside the simulated multi-chain world
/// (e.g. "Bitcoin" = 0, "Ethereum" = 1, the witness chain = 2, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChainId(pub u32);

impl ChainId {
    /// The raw numeric id.
    pub fn as_u32(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for ChainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain#{}", self.0)
    }
}

/// An end-user identity on a chain. The paper identifies users by their
/// public keys (Section 2.2); we follow that directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Address(pub PublicKey);

impl Address {
    /// The underlying public key.
    pub fn public_key(&self) -> PublicKey {
        self.0
    }

    /// Canonical byte encoding used in transaction hashes.
    pub fn to_bytes(&self) -> [u8; 8] {
        self.0.to_bytes()
    }
}

impl From<PublicKey> for Address {
    fn from(pk: PublicKey) -> Self {
        Address(pk)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An asset quantity. All assets on all simulated chains are denominated in
/// indivisible integer units (satoshi/wei-like).
pub type Amount = u64;

/// A transaction identifier (hash of the canonical transaction encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxId(pub Hash256);

impl TxId {
    /// The underlying hash.
    pub fn hash(&self) -> Hash256 {
        self.0
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx:{}", self.0)
    }
}

/// A block identifier (hash of the block header).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct BlockHash(pub Hash256);

impl BlockHash {
    /// The hash of the (non-existent) parent of a genesis block.
    pub const GENESIS_PARENT: BlockHash = BlockHash(Hash256::ZERO);

    /// The underlying hash.
    pub fn hash(&self) -> Hash256 {
        self.0
    }
}

impl fmt::Display for BlockHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{}", self.0)
    }
}

/// Identifier of a deployed smart contract: the id of the transaction that
/// deployed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ContractId(pub Hash256);

impl ContractId {
    /// The underlying hash.
    pub fn hash(&self) -> Hash256 {
        self.0
    }
}

impl fmt::Display for ContractId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sc:{}", self.0)
    }
}

/// A reference to a specific transaction output (the UTXO model of
/// Section 2.3, Figures 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OutPoint {
    /// The transaction that created the output.
    pub txid: TxId,
    /// The index of the output within that transaction.
    pub index: u32,
}

impl OutPoint {
    /// Construct an outpoint.
    pub fn new(txid: TxId, index: u32) -> Self {
        OutPoint { txid, index }
    }

    /// Canonical byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(36);
        out.extend_from_slice(self.txid.0.as_bytes());
        out.extend_from_slice(&self.index.to_be_bytes());
        out
    }
}

impl fmt::Display for OutPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.txid, self.index)
    }
}

/// Height of a block within a chain (genesis = 0).
pub type BlockHeight = u64;

/// Simulated wall-clock time in milliseconds since simulation start.
pub type Timestamp = u64;

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_crypto::KeyPair;

    #[test]
    fn chain_id_display() {
        assert_eq!(ChainId(7).to_string(), "chain#7");
        assert_eq!(ChainId(7).as_u32(), 7);
    }

    #[test]
    fn address_wraps_public_key() {
        let kp = KeyPair::from_seed(b"alice");
        let addr = Address::from(kp.public());
        assert_eq!(addr.public_key(), kp.public());
        assert_eq!(addr.to_bytes(), kp.public().to_bytes());
    }

    #[test]
    fn outpoint_encoding_unique_per_index() {
        let txid = TxId(Hash256::digest(b"tx"));
        let a = OutPoint::new(txid, 0);
        let b = OutPoint::new(txid, 1);
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.to_bytes().len(), 36);
    }

    #[test]
    fn genesis_parent_is_zero() {
        assert_eq!(BlockHash::GENESIS_PARENT.hash(), Hash256::ZERO);
    }
}
