//! The block store: a tree of blocks with longest-chain fork choice.
//!
//! Permissionless chains fork; the paper's correctness argument (Lemma 5.3)
//! and the depth parameter `d` both hinge on how forks are created and
//! resolved. The store therefore keeps *every* block it has seen — not just
//! the canonical chain — tracks all tips, and resolves forks with the
//! longest-chain rule (ties broken by lowest hash, deterministically).
//!
//! Storage is split in two (DESIGN.md §11):
//!
//! * **metadata** — headers, chain lengths, the child/tip sets and the
//!   canonical indexes — lives in memory, always. It is small and touched
//!   on every fork-choice decision and every header query, so header-only
//!   paths ([`BlockStore::header`], [`BlockStore::headers_since`]) never
//!   materialize a block body;
//! * **bodies** — the transaction payloads — go through the pluggable
//!   [`Store`] trait: the in-memory map by default, or the paged
//!   file-backed backend ([`crate::storage::PagedStore`]) whose buffer
//!   pool bounds resident memory regardless of chain length.

use crate::block::{Block, BlockHeader};
use crate::storage::{Store, StoreConfig, StoreStats};
use crate::types::{BlockHash, BlockHeight, TxId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Errors raised when inserting blocks into the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The parent of the inserted block is unknown.
    UnknownParent(BlockHash),
    /// The block's height is not parent height + 1.
    BadHeight {
        /// The height carried by the block.
        got: BlockHeight,
        /// The height it should have had.
        expected: BlockHeight,
    },
    /// A different block with the same hash is already stored.
    DuplicateBlock(BlockHash),
    /// The block's Merkle root does not match its transactions.
    BadTxRoot(BlockHash),
    /// The block header does not satisfy its proof-of-work target.
    InsufficientWork(BlockHash),
    /// A genesis block was inserted into a store that already has one.
    DuplicateGenesis,
    /// The body backend failed to persist or retrieve a block (file-backed
    /// backends only; the in-memory backend never raises this).
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownParent(h) => write!(f, "unknown parent {h}"),
            StoreError::BadHeight { got, expected } => {
                write!(f, "bad height {got}, expected {expected}")
            }
            StoreError::DuplicateBlock(h) => write!(f, "duplicate block {h}"),
            StoreError::BadTxRoot(h) => write!(f, "bad tx root in {h}"),
            StoreError::InsufficientWork(h) => write!(f, "insufficient proof of work in {h}"),
            StoreError::DuplicateGenesis => write!(f, "store already has a genesis block"),
            StoreError::Io(e) => write!(f, "block storage io error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// In-memory metadata of one stored block: everything fork choice and
/// header queries need, without the body.
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    header: BlockHeader,
    /// Cumulative chain length (number of blocks from genesis, inclusive).
    chain_len: u64,
}

/// A tree of blocks with longest-chain fork choice.
///
/// Beyond the raw fork tree, the store maintains two indexes that are
/// updated incrementally whenever the canonical tip changes (see
/// `DESIGN.md`):
///
/// * a height → canonical-hash vector, making [`BlockStore::canonical_block_at_height`],
///   [`BlockStore::is_canonical`], [`BlockStore::depth_of`] and
///   [`BlockStore::headers_since`] O(1)/O(result) instead of walking parent
///   pointers from the tip on every call;
/// * a txid → (canonical block, index) map, making
///   [`BlockStore::find_canonical_tx`] O(1) instead of scanning the whole
///   canonical chain.
///
/// On a reorg only the divergent suffix of the canonical chain is reindexed.
///
/// Block *bodies* are held by a pluggable [`Store`] backend — see the
/// module docs and [`BlockStore::with_config`].
#[derive(Debug)]
pub struct BlockStore {
    meta: HashMap<BlockHash, BlockMeta>,
    bodies: Box<dyn Store>,
    /// Children of each block, used to enumerate forks.
    children: HashMap<BlockHash, Vec<BlockHash>>,
    /// All current tips (blocks without children), kept sorted for
    /// deterministic iteration.
    tips: BTreeMap<BlockHash, ()>,
    genesis: Option<BlockHash>,
    /// The current canonical tip under the fork-choice rule.
    best_tip: Option<BlockHash>,
    /// Canonical chain indexed by height (`canonical[h]` is the canonical
    /// block at height `h`), maintained incrementally on best-tip changes.
    canonical: Vec<BlockHash>,
    /// Canonical transaction locations: txid → (containing block, index in
    /// block), covering exactly the blocks in `canonical`.
    canonical_txs: HashMap<TxId, (BlockHash, usize)>,
}

impl Default for BlockStore {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockStore {
    /// An empty store on the backend selected by the environment
    /// ([`StoreConfig::from_env`]; the in-memory map unless
    /// `AC3_STORE_BACKEND=paged`).
    pub fn new() -> Self {
        Self::with_config(StoreConfig::from_env())
    }

    /// An empty store on an explicit body backend.
    pub fn with_config(config: StoreConfig) -> Self {
        BlockStore {
            meta: HashMap::new(),
            bodies: config.build(),
            children: HashMap::new(),
            tips: BTreeMap::new(),
            genesis: None,
            best_tip: None,
            canonical: Vec::new(),
            canonical_txs: HashMap::new(),
        }
    }

    /// Number of blocks stored (across all forks).
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// The genesis block hash, if a genesis has been inserted.
    pub fn genesis(&self) -> Option<BlockHash> {
        self.genesis
    }

    /// The canonical tip.
    pub fn best_tip(&self) -> Option<BlockHash> {
        self.best_tip
    }

    /// Height of the canonical tip.
    pub fn best_height(&self) -> Option<BlockHeight> {
        self.best_tip.and_then(|h| self.meta.get(&h)).map(|m| m.header.height)
    }

    /// All current tips (canonical and fork tips).
    pub fn tips(&self) -> Vec<BlockHash> {
        self.tips.keys().copied().collect()
    }

    /// Fetch a block by hash. On the paged backend this faults the block's
    /// page(s) into the buffer pool; the returned block is shared, not
    /// copied, on the in-memory backend.
    pub fn get(&self, hash: &BlockHash) -> Option<Arc<Block>> {
        // The metadata map is the source of truth for membership; the body
        // backend must agree.
        if !self.meta.contains_key(hash) {
            return None;
        }
        self.bodies.body(hash)
    }

    /// Fetch a header by hash. Served from in-memory metadata: never
    /// materializes a body, regardless of backend.
    pub fn header(&self, hash: &BlockHash) -> Option<BlockHeader> {
        self.meta.get(hash).map(|m| m.header)
    }

    /// Whether `hash` is stored.
    pub fn contains(&self, hash: &BlockHash) -> bool {
        self.meta.contains_key(hash)
    }

    /// Counters and shape of the body backend (all-zero counters on the
    /// in-memory backend).
    pub fn stats(&self) -> StoreStats {
        self.bodies.stats()
    }

    /// The body backend's name: `"memory"` or `"paged"`.
    pub fn backend(&self) -> &'static str {
        self.bodies.stats().backend
    }

    /// Write any buffered dirty pages back to the backing file.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.bodies.flush().map_err(|e| StoreError::Io(e.to_string()))
    }

    /// The body of a block that is known to be stored.
    fn body(&self, hash: &BlockHash) -> Arc<Block> {
        self.bodies.body(hash).expect("indexed block has a stored body")
    }

    /// Insert a block, performing structural validation (parent link,
    /// height, Merkle root, proof of work). Stateful validation (UTXO and
    /// contract execution) is the responsibility of
    /// [`crate::chain::Blockchain`].
    pub fn insert(&mut self, block: Block) -> Result<BlockHash, StoreError> {
        let hash = block.hash();
        if self.meta.contains_key(&hash) {
            if *self.body(&hash) == block {
                return Ok(hash); // idempotent re-insert
            }
            return Err(StoreError::DuplicateBlock(hash));
        }
        if !block.tx_root_valid() {
            return Err(StoreError::BadTxRoot(hash));
        }
        if !block.header.meets_target() {
            return Err(StoreError::InsufficientWork(hash));
        }

        let chain_len = if block.header.is_genesis() {
            if self.genesis.is_some() {
                return Err(StoreError::DuplicateGenesis);
            }
            1
        } else {
            let parent = self
                .meta
                .get(&block.header.parent)
                .ok_or(StoreError::UnknownParent(block.header.parent))?;
            let expected = parent.header.height + 1;
            if block.header.height != expected {
                return Err(StoreError::BadHeight { got: block.header.height, expected });
            }
            parent.chain_len + 1
        };

        if block.header.is_genesis() {
            self.genesis = Some(hash);
        } else {
            self.children.entry(block.header.parent).or_default().push(hash);
            self.tips.remove(&block.header.parent);
        }
        self.tips.insert(hash, ());
        self.meta.insert(hash, BlockMeta { header: block.header, chain_len });
        self.bodies.insert_body(hash, block).map_err(|e| StoreError::Io(e.to_string()))?;
        self.update_best_tip();
        Ok(hash)
    }

    /// Recompute the canonical tip: longest chain wins, ties broken by the
    /// numerically smallest tip hash so every node converges on the same
    /// choice. When the tip changes, the canonical indexes are repaired
    /// incrementally: only the suffix past the fork point is reindexed.
    fn update_best_tip(&mut self) {
        let old_best = self.best_tip;
        self.best_tip = self
            .tips
            .keys()
            .max_by(|a, b| {
                let la = self.meta[*a].chain_len;
                let lb = self.meta[*b].chain_len;
                // Longest first; on equal length prefer the smaller hash
                // (max_by keeps the "greater", so invert the hash ordering).
                la.cmp(&lb).then_with(|| b.cmp(a))
            })
            .copied();
        if self.best_tip != old_best {
            self.reindex_canonical();
        }
    }

    /// Repair `canonical` and `canonical_txs` after a best-tip change.
    /// Walks back from the new tip only until it rejoins the previously
    /// indexed chain, so extending the tip is O(1) and a reorg is
    /// O(divergent suffix), never O(chain length). The fork walk itself
    /// uses only in-memory metadata; bodies are read just for the blocks
    /// whose transactions are (un)indexed.
    fn reindex_canonical(&mut self) {
        let Some(tip) = self.best_tip else {
            self.canonical.clear();
            self.canonical_txs.clear();
            return;
        };
        // Collect the new-branch blocks (descending) until we meet a block
        // that is already canonical at its height.
        let mut fresh: Vec<BlockHash> = Vec::new();
        let mut cursor = tip;
        let fork_height = loop {
            let meta = &self.meta[&cursor];
            let height = meta.header.height as usize;
            if self.canonical.get(height) == Some(&cursor) {
                break height as u64;
            }
            fresh.push(cursor);
            if meta.header.is_genesis() {
                break 0;
            }
            cursor = meta.header.parent;
        };
        // Un-index the abandoned suffix (strictly above the fork point, or
        // the whole chain when the new branch roots at a fresh genesis).
        let keep = if fresh.last().map(|h| self.meta[h].header.is_genesis()) == Some(true) {
            0
        } else {
            fork_height as usize + 1
        };
        let abandoned: Vec<BlockHash> = self.canonical.drain(keep..).collect();
        for hash in abandoned {
            let block = self.body(&hash);
            for tx in &block.transactions {
                // Remove only entries still pointing at the abandoned block;
                // a duplicate txid re-indexed by the new branch must stay.
                if let Some((owner, _)) = self.canonical_txs.get(&tx.id()) {
                    if *owner == hash {
                        self.canonical_txs.remove(&tx.id());
                    }
                }
            }
        }
        // Index the new suffix in ascending height order.
        for hash in fresh.into_iter().rev() {
            let block = self.body(&hash);
            debug_assert_eq!(block.header.height as usize, self.canonical.len());
            for (idx, tx) in block.transactions.iter().enumerate() {
                self.canonical_txs.insert(tx.id(), (hash, idx));
            }
            self.canonical.push(hash);
        }
    }

    /// The canonical chain from genesis to the best tip (inclusive), as a
    /// borrowed slice — the allocation-free accessor; prefer it over
    /// [`BlockStore::canonical_chain`].
    pub fn canonical_hashes(&self) -> &[BlockHash] {
        &self.canonical
    }

    /// The canonical chain from genesis to the best tip (inclusive),
    /// cloned into a fresh `Vec`. Callers that only iterate should use
    /// [`BlockStore::canonical_hashes`].
    pub fn canonical_chain(&self) -> Vec<BlockHash> {
        self.canonical.clone()
    }

    /// Whether `hash` lies on the canonical chain. O(1) via the height
    /// index.
    pub fn is_canonical(&self, hash: &BlockHash) -> bool {
        let Some(meta) = self.meta.get(hash) else { return false };
        self.canonical.get(meta.header.height as usize) == Some(hash)
    }

    /// The canonical block at a given height, if the chain is that long.
    /// O(1) via the height index.
    pub fn canonical_block_at_height(&self, height: BlockHeight) -> Option<BlockHash> {
        self.canonical.get(height as usize).copied()
    }

    /// Number of blocks burying `hash` on the canonical chain: 0 for the
    /// tip, `None` if the block is not canonical.
    ///
    /// This is the paper's depth `d`: a block "buried under d blocks".
    pub fn depth_of(&self, hash: &BlockHash) -> Option<u64> {
        if !self.is_canonical(hash) {
            return None;
        }
        let height = self.meta.get(hash)?.header.height;
        Some(self.best_height()? - height)
    }

    /// Locate the canonical block containing `txid`, returning the block
    /// hash and the transaction's index within the block. O(1) via the
    /// canonical transaction index.
    pub fn find_canonical_tx(&self, txid: &TxId) -> Option<(BlockHash, usize)> {
        self.canonical_txs.get(txid).copied()
    }

    /// The canonical headers from (and excluding) `from` up to the tip, in
    /// ascending height order. Returns `None` if `from` is not canonical.
    /// This is the evidence payload of Section 4.3: "the headers of all the
    /// blocks that follow the stored stable block".
    ///
    /// Served entirely from in-memory metadata: no block body is
    /// materialized on any backend (the header-only read path).
    pub fn headers_since(&self, from: &BlockHash) -> Option<Vec<BlockHeader>> {
        if !self.is_canonical(from) {
            return None;
        }
        let from_height = self.meta.get(from)?.header.height as usize;
        Some(self.canonical[from_height + 1..].iter().map(|h| self.meta[h].header).collect())
    }

    /// Iterate canonical blocks in ascending height order. Each step
    /// fetches one body through the backend (a sequential page scan on the
    /// paged backend).
    pub fn canonical_blocks(&self) -> impl Iterator<Item = Arc<Block>> + '_ {
        self.canonical.iter().map(move |h| self.body(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockHeader};
    use crate::storage::PolicyKind;
    use crate::transaction::{coinbase, Transaction};
    use crate::types::{Address, ChainId};
    use ac3_crypto::{Hash256, KeyPair};

    fn miner() -> Address {
        Address::from(KeyPair::from_seed(b"miner").public())
    }

    fn make_block(parent: Option<&Block>, tag: u64, txs: Vec<Transaction>) -> Block {
        let (parent_hash, height) = match parent {
            Some(p) => (p.hash(), p.header.height + 1),
            None => (BlockHash::GENESIS_PARENT, 0),
        };
        let mut transactions = vec![coinbase(miner(), 50, tag)];
        transactions.extend(txs);
        let header = BlockHeader {
            chain: ChainId(0),
            parent: parent_hash,
            tx_root: Block::compute_tx_root(&transactions),
            height,
            timestamp: tag,
            target: Hash256::MAX,
            nonce: tag,
        };
        Block { header, transactions }
    }

    fn chain_of(len: usize) -> (BlockStore, Vec<Block>) {
        let mut store = BlockStore::new();
        let mut blocks = Vec::new();
        for i in 0..len {
            let block = make_block(blocks.last(), i as u64, vec![]);
            store.insert(block.clone()).unwrap();
            blocks.push(block);
        }
        (store, blocks)
    }

    #[test]
    fn linear_chain_is_canonical() {
        let (store, blocks) = chain_of(5);
        assert_eq!(store.best_height(), Some(4));
        assert_eq!(store.canonical_hashes().len(), 5);
        for b in &blocks {
            assert!(store.is_canonical(&b.hash()));
        }
        assert_eq!(store.depth_of(&blocks[0].hash()), Some(4));
        assert_eq!(store.depth_of(&blocks[4].hash()), Some(0));
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut store = BlockStore::new();
        let genesis = make_block(None, 0, vec![]);
        let orphan = make_block(Some(&genesis), 1, vec![]);
        assert_eq!(store.insert(orphan).unwrap_err(), StoreError::UnknownParent(genesis.hash()));
    }

    #[test]
    fn bad_height_rejected() {
        let (mut store, blocks) = chain_of(2);
        let mut bad = make_block(Some(&blocks[1]), 99, vec![]);
        bad.header.height = 7;
        bad.header.tx_root = Block::compute_tx_root(&bad.transactions);
        assert_eq!(store.insert(bad).unwrap_err(), StoreError::BadHeight { got: 7, expected: 2 });
    }

    #[test]
    fn bad_tx_root_rejected() {
        let (mut store, blocks) = chain_of(1);
        let mut bad = make_block(Some(&blocks[0]), 1, vec![]);
        bad.header.tx_root = Hash256::digest(b"wrong");
        assert_eq!(store.insert(bad.clone()).unwrap_err(), StoreError::BadTxRoot(bad.hash()));
    }

    #[test]
    fn second_genesis_rejected() {
        let (mut store, _) = chain_of(1);
        let other_genesis = make_block(None, 42, vec![]);
        assert_eq!(store.insert(other_genesis).unwrap_err(), StoreError::DuplicateGenesis);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let (mut store, blocks) = chain_of(3);
        let len = store.len();
        store.insert(blocks[1].clone()).unwrap();
        assert_eq!(store.len(), len);
    }

    #[test]
    fn longest_fork_wins() {
        let (mut store, blocks) = chain_of(3);
        // Fork from height 1: build a longer competing branch.
        let f2 = make_block(Some(&blocks[1]), 100, vec![]);
        let f3 = make_block(Some(&f2), 101, vec![]);
        let f4 = make_block(Some(&f3), 102, vec![]);
        store.insert(f2.clone()).unwrap();
        assert_eq!(store.best_tip(), Some(blocks[2].hash()), "tie keeps deterministic choice");
        store.insert(f3.clone()).unwrap();
        store.insert(f4.clone()).unwrap();
        assert_eq!(store.best_tip(), Some(f4.hash()));
        assert!(store.is_canonical(&f2.hash()));
        assert!(!store.is_canonical(&blocks[2].hash()));
        // The abandoned block is no longer canonical so it has no depth.
        assert_eq!(store.depth_of(&blocks[2].hash()), None);
    }

    #[test]
    fn equal_length_fork_resolves_deterministically() {
        let (mut store, blocks) = chain_of(2);
        let a = make_block(Some(&blocks[1]), 7, vec![]);
        let b = make_block(Some(&blocks[1]), 8, vec![]);
        store.insert(a.clone()).unwrap();
        store.insert(b.clone()).unwrap();
        let expected = if a.hash() < b.hash() { a.hash() } else { b.hash() };
        assert_eq!(store.best_tip(), Some(expected));
        assert_eq!(store.tips().len(), 2);
    }

    #[test]
    fn canonical_block_at_height_walks_best_branch() {
        let (mut store, blocks) = chain_of(3);
        let f2 = make_block(Some(&blocks[1]), 100, vec![]);
        let f3 = make_block(Some(&f2), 101, vec![]);
        store.insert(f2.clone()).unwrap();
        store.insert(f3.clone()).unwrap();
        assert_eq!(store.canonical_block_at_height(2), Some(f2.hash()));
        assert_eq!(store.canonical_block_at_height(3), Some(f3.hash()));
        assert_eq!(store.canonical_block_at_height(9), None);
    }

    #[test]
    fn headers_since_returns_suffix() {
        let (store, blocks) = chain_of(5);
        let headers = store.headers_since(&blocks[1].hash()).unwrap();
        assert_eq!(headers.len(), 3);
        assert_eq!(headers[0].height, 2);
        assert_eq!(headers[2].height, 4);
        // Non-canonical / unknown start -> None.
        assert!(store.headers_since(&BlockHash(Hash256::digest(b"nope"))).is_none());
    }

    #[test]
    fn find_canonical_tx_locates_transactions() {
        let (store, blocks) = chain_of(4);
        let target = blocks[2].transactions[0].id();
        let (hash, idx) = store.find_canonical_tx(&target).unwrap();
        assert_eq!(hash, blocks[2].hash());
        assert_eq!(idx, 0);
    }

    #[test]
    fn insufficient_work_rejected() {
        let mut store = BlockStore::new();
        let mut genesis = make_block(None, 0, vec![]);
        genesis.header.target = Hash256::ZERO;
        assert!(matches!(store.insert(genesis).unwrap_err(), StoreError::InsufficientWork(_)));
    }

    /// The full store test-surface above runs on whatever backend the
    /// environment selects (the CI backend matrix sets
    /// `AC3_STORE_BACKEND=paged`); this test pins the paged backend
    /// explicitly, with a pool an order of magnitude smaller than the
    /// chain, and checks the fork-choice surface plus the counters.
    #[test]
    fn paged_backend_with_tiny_pool_serves_a_much_larger_chain() {
        let config =
            StoreConfig::Paged { pool_pages: 4, page_size: 512, policy: PolicyKind::Sieve };
        let mut store = BlockStore::with_config(config);
        let mut blocks = Vec::new();
        for i in 0..200 {
            let block = make_block(blocks.last(), i as u64, vec![]);
            store.insert(block.clone()).unwrap();
            blocks.push(block);
        }
        let stats = store.stats();
        assert_eq!(stats.backend, "paged");
        assert_eq!(stats.blocks, 200);
        assert!(
            stats.bytes_stored > 10 * 4 * 512,
            "chain must be ≥ 10× the pool, got {} bytes",
            stats.bytes_stored
        );
        assert!(stats.evictions > 0, "eviction must actually be exercised");
        assert!(stats.misses > 0);
        // Every block — resident or spilled — reads back intact.
        for b in &blocks {
            assert_eq!(*store.get(&b.hash()).unwrap(), *b);
        }
        // Header-only paths do not touch the pool.
        let pins_before = store.stats();
        let headers = store.headers_since(&blocks[0].hash()).unwrap();
        assert_eq!(headers.len(), 199);
        let pins_after = store.stats();
        assert_eq!(pins_after.hits, pins_before.hits, "headers_since reads no pages");
        assert_eq!(pins_after.misses, pins_before.misses);
    }
}
