//! The unspent-transaction-output (UTXO) set.
//!
//! Section 2.2 of the paper: "the storage layer stores the ownership
//! information of assets in the system" — an asset is owned by the identity
//! its latest output is linked to, assets are created by mining, and
//! transactions merge or split assets (Figures 2 and 3). This module tracks
//! exactly that ownership state and enforces the two miner-side validation
//! rules the paper calls out: users can only transact on assets they own,
//! and no asset can be spent twice.

use crate::transaction::{Transaction, TxKind, TxOutput};
use crate::types::{Address, Amount, OutPoint, TxId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised while applying transactions to the UTXO set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UtxoError {
    /// The referenced output does not exist (never created or already spent).
    MissingInput(OutPoint),
    /// The signer does not own the referenced output.
    NotOwner {
        /// The offending outpoint.
        outpoint: OutPoint,
        /// The actual owner.
        owner: Address,
        /// The address that attempted to spend it.
        spender: Address,
    },
    /// Output value exceeds input value (attempted asset inflation).
    ValueMismatch {
        /// Total value consumed.
        inputs: Amount,
        /// Total value produced plus fee plus locked value.
        outputs: Amount,
    },
    /// The same outpoint appears twice in one transaction.
    DuplicateInput(OutPoint),
    /// A transaction with inputs has no sender to authorise them.
    MissingSender,
}

impl fmt::Display for UtxoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UtxoError::MissingInput(op) => write!(f, "missing or already-spent input {op}"),
            UtxoError::NotOwner { outpoint, owner, spender } => {
                write!(f, "{spender} does not own {outpoint} (owner {owner})")
            }
            UtxoError::ValueMismatch { inputs, outputs } => {
                write!(f, "outputs+fee {outputs} exceed inputs {inputs}")
            }
            UtxoError::DuplicateInput(op) => write!(f, "duplicate input {op}"),
            UtxoError::MissingSender => write!(f, "transaction with inputs has no sender"),
        }
    }
}

impl std::error::Error for UtxoError {}

/// The set of unspent outputs of one chain.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtxoSet {
    /// Unspent outputs keyed by outpoint. A `BTreeMap` keeps iteration
    /// deterministic, which keeps simulations reproducible.
    utxos: BTreeMap<OutPoint, TxOutput>,
}

impl UtxoSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of unspent outputs.
    pub fn len(&self) -> usize {
        self.utxos.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.utxos.is_empty()
    }

    /// Look up an unspent output.
    pub fn get(&self, outpoint: &OutPoint) -> Option<&TxOutput> {
        self.utxos.get(outpoint)
    }

    /// Whether `outpoint` is currently unspent.
    pub fn contains(&self, outpoint: &OutPoint) -> bool {
        self.utxos.contains_key(outpoint)
    }

    /// Total value owned by `address`.
    pub fn balance_of(&self, address: &Address) -> Amount {
        self.utxos.values().filter(|o| o.owner == *address).map(|o| o.value).sum()
    }

    /// Total value of every unspent output (the "money supply").
    pub fn total_value(&self) -> Amount {
        self.utxos.values().map(|o| o.value).sum()
    }

    /// All unspent outpoints owned by `address`, in deterministic order.
    pub fn outputs_of(&self, address: &Address) -> Vec<(OutPoint, TxOutput)> {
        self.utxos.iter().filter(|(_, o)| o.owner == *address).map(|(k, v)| (*k, *v)).collect()
    }

    /// Select outputs owned by `address` covering at least `amount`.
    /// Returns the selected outpoints and their total value, or `None` if
    /// the balance is insufficient.
    pub fn select_inputs(
        &self,
        address: &Address,
        amount: Amount,
    ) -> Option<(Vec<OutPoint>, Amount)> {
        let mut selected = Vec::new();
        let mut total: Amount = 0;
        for (op, out) in self.utxos.iter() {
            if out.owner == *address {
                selected.push(*op);
                total += out.value;
                if total >= amount {
                    return Some((selected, total));
                }
            }
        }
        None
    }

    /// Credit an output directly (used for genesis allocations and contract
    /// payouts materialised by the chain).
    pub fn credit(&mut self, outpoint: OutPoint, output: TxOutput) {
        self.utxos.insert(outpoint, output);
    }

    /// Validate `tx` against the current set without mutating it.
    ///
    /// Checks the paper's two storage-layer rules (ownership and no double
    /// spending) plus value conservation: inputs must cover outputs + fee +
    /// any value locked into a deployed contract. Coinbase and contract-call
    /// transactions consume no inputs and are validated elsewhere.
    pub fn validate(&self, tx: &Transaction) -> Result<(), UtxoError> {
        let inputs = tx.consumed_inputs();
        if inputs.is_empty() {
            return Ok(());
        }
        let sender = tx.sender.ok_or(UtxoError::MissingSender)?;

        let mut seen = std::collections::BTreeSet::new();
        let mut input_value: Amount = 0;
        for op in inputs {
            if !seen.insert(*op) {
                return Err(UtxoError::DuplicateInput(*op));
            }
            let out = self.get(op).ok_or(UtxoError::MissingInput(*op))?;
            if out.owner != sender {
                return Err(UtxoError::NotOwner {
                    outpoint: *op,
                    owner: out.owner,
                    spender: sender,
                });
            }
            input_value += out.value;
        }

        let locked = match &tx.kind {
            TxKind::Deploy { locked_value, .. } => *locked_value,
            _ => 0,
        };
        let output_value: Amount =
            tx.created_outputs().iter().map(|o| o.value).sum::<Amount>() + tx.fee + locked;
        if output_value > input_value {
            return Err(UtxoError::ValueMismatch { inputs: input_value, outputs: output_value });
        }
        Ok(())
    }

    /// Apply a validated transaction: spend its inputs and create its
    /// outputs. Callers must have called [`UtxoSet::validate`] first (the
    /// chain's block application does).
    pub fn apply(&mut self, tx: &Transaction) -> Result<(), UtxoError> {
        self.validate(tx)?;
        for op in tx.consumed_inputs() {
            self.utxos.remove(op);
        }
        let txid = tx.id();
        for (i, out) in tx.created_outputs().iter().enumerate() {
            self.credit(OutPoint::new(txid, i as u32), *out);
        }
        Ok(())
    }

    /// Credit a payout produced by a contract call (redeem/refund). The
    /// outpoint is derived from the calling transaction so it is unique and
    /// reproducible.
    pub fn credit_contract_payout(
        &mut self,
        call_txid: TxId,
        seq: u32,
        to: Address,
        value: Amount,
    ) {
        // Contract payouts use high output indices so they can never collide
        // with outputs created directly by the transaction.
        self.credit(OutPoint::new(call_txid, 0x8000_0000 + seq), TxOutput::new(to, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{coinbase, TxBuilder};
    use ac3_crypto::{Hash256, KeyPair};
    use proptest::prelude::*;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn builder(seed: &[u8]) -> TxBuilder {
        TxBuilder::new(KeyPair::from_seed(seed), 0)
    }

    /// Give `owner` a single UTXO of `value` and return its outpoint.
    fn fund(set: &mut UtxoSet, owner: Address, value: Amount, tag: u8) -> OutPoint {
        let op = OutPoint::new(TxId(Hash256::digest(&[tag])), 0);
        set.credit(op, TxOutput::new(owner, value));
        op
    }

    #[test]
    fn coinbase_credits_miner() {
        let mut set = UtxoSet::new();
        let miner = addr(b"miner");
        set.apply(&coinbase(miner, 50, 0)).unwrap();
        assert_eq!(set.balance_of(&miner), 50);
        assert_eq!(set.total_value(), 50);
    }

    #[test]
    fn merge_transaction_like_figure2_tx1() {
        // Alice merges three assets (1, 0.5, 0.3 scaled to integers) into one
        // owned by Bob — the paper's TX1.
        let mut set = UtxoSet::new();
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let i1 = fund(&mut set, alice, 10, 1);
        let i2 = fund(&mut set, alice, 5, 2);
        let i3 = fund(&mut set, alice, 3, 3);

        let mut b = builder(b"alice");
        let tx = b.transfer(vec![i1, i2, i3], vec![TxOutput::new(bob, 18)], 0);
        set.apply(&tx).unwrap();
        assert_eq!(set.balance_of(&alice), 0);
        assert_eq!(set.balance_of(&bob), 18);
    }

    #[test]
    fn split_transaction_like_figure2_tx2() {
        // Bob splits one asset into two outputs of different values — TX2.
        let mut set = UtxoSet::new();
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let input = fund(&mut set, bob, 18, 1);
        let mut b = builder(b"bob");
        let tx = b.transfer(vec![input], vec![TxOutput::new(alice, 3), TxOutput::new(bob, 15)], 0);
        set.apply(&tx).unwrap();
        assert_eq!(set.balance_of(&alice), 3);
        assert_eq!(set.balance_of(&bob), 15);
    }

    #[test]
    fn double_spend_rejected() {
        let mut set = UtxoSet::new();
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let input = fund(&mut set, alice, 10, 1);
        let mut b = builder(b"alice");
        let tx1 = b.transfer(vec![input], vec![TxOutput::new(bob, 10)], 0);
        let tx2 = b.transfer(vec![input], vec![TxOutput::new(bob, 10)], 0);
        set.apply(&tx1).unwrap();
        assert_eq!(set.validate(&tx2).unwrap_err(), UtxoError::MissingInput(input));
    }

    #[test]
    fn duplicate_input_in_one_tx_rejected() {
        let mut set = UtxoSet::new();
        let alice = addr(b"alice");
        let input = fund(&mut set, alice, 10, 1);
        let mut b = builder(b"alice");
        let tx = b.transfer(vec![input, input], vec![TxOutput::new(alice, 20)], 0);
        assert_eq!(set.validate(&tx).unwrap_err(), UtxoError::DuplicateInput(input));
    }

    #[test]
    fn spending_someone_elses_asset_rejected() {
        let mut set = UtxoSet::new();
        let alice = addr(b"alice");
        let input = fund(&mut set, alice, 10, 1);
        let mut mallory = builder(b"mallory");
        let tx = mallory.transfer(vec![input], vec![TxOutput::new(mallory.address(), 10)], 0);
        match set.validate(&tx).unwrap_err() {
            UtxoError::NotOwner { owner, spender, .. } => {
                assert_eq!(owner, alice);
                assert_eq!(spender, mallory.address());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn inflation_rejected() {
        let mut set = UtxoSet::new();
        let alice = addr(b"alice");
        let input = fund(&mut set, alice, 10, 1);
        let mut b = builder(b"alice");
        let tx = b.transfer(vec![input], vec![TxOutput::new(alice, 11)], 0);
        assert!(matches!(set.validate(&tx).unwrap_err(), UtxoError::ValueMismatch { .. }));
    }

    #[test]
    fn deploy_locking_more_than_inputs_rejected() {
        let mut set = UtxoSet::new();
        let alice = addr(b"alice");
        let input = fund(&mut set, alice, 10, 1);
        let mut b = builder(b"alice");
        let tx = b.deploy(vec![input], 11, vec![], b"ctor".to_vec(), 0);
        assert!(matches!(set.validate(&tx).unwrap_err(), UtxoError::ValueMismatch { .. }));
        let ok = b.deploy(vec![input], 8, vec![TxOutput::new(alice, 1)], b"ctor".to_vec(), 1);
        assert!(set.validate(&ok).is_ok());
    }

    #[test]
    fn select_inputs_covers_amount_or_none() {
        let mut set = UtxoSet::new();
        let alice = addr(b"alice");
        fund(&mut set, alice, 5, 1);
        fund(&mut set, alice, 7, 2);
        let (inputs, total) = set.select_inputs(&alice, 10).unwrap();
        assert!(total >= 10);
        assert!(!inputs.is_empty());
        assert!(set.select_inputs(&alice, 13).is_none());
    }

    #[test]
    fn contract_payout_outpoints_do_not_collide() {
        let mut set = UtxoSet::new();
        let alice = addr(b"alice");
        let txid = TxId(Hash256::digest(b"call"));
        set.credit_contract_payout(txid, 0, alice, 10);
        set.credit_contract_payout(txid, 1, alice, 11);
        assert_eq!(set.balance_of(&alice), 21);
        assert_eq!(set.len(), 2);
    }

    proptest! {
        /// Value conservation: applying any sequence of random valid
        /// merge/split transfers never changes the total supply (fees are 0
        /// in this property).
        #[test]
        fn prop_value_conserved_under_merge_split(splits in proptest::collection::vec(1u64..5, 1..12)) {
            let mut set = UtxoSet::new();
            let alice = addr(b"alice");
            let mut b = builder(b"alice");
            fund(&mut set, alice, 1_000, 1);
            let supply = set.total_value();

            for parts in splits {
                // Spend everything Alice owns into `parts` equal-ish outputs.
                let outs = set.outputs_of(&alice);
                let total: Amount = outs.iter().map(|(_, o)| o.value).sum();
                let inputs: Vec<OutPoint> = outs.iter().map(|(op, _)| *op).collect();
                let share = total / parts;
                let mut outputs: Vec<TxOutput> =
                    (0..parts - 1).map(|_| TxOutput::new(alice, share)).collect();
                outputs.push(TxOutput::new(alice, total - share * (parts - 1)));
                let tx = b.transfer(inputs, outputs, 0);
                set.apply(&tx).unwrap();
                prop_assert_eq!(set.total_value(), supply);
            }
        }

        /// Balances are never negative and never exceed the supply.
        #[test]
        fn prop_balance_bounded_by_supply(amounts in proptest::collection::vec(1u64..1000, 1..10)) {
            let mut set = UtxoSet::new();
            let alice = addr(b"alice");
            for (i, a) in amounts.iter().enumerate() {
                fund(&mut set, alice, *a, i as u8);
            }
            prop_assert!(set.balance_of(&alice) <= set.total_value());
            prop_assert_eq!(set.balance_of(&alice), amounts.iter().sum::<u64>());
        }
    }
}
