//! Blocks and block headers.
//!
//! A block header carries the parent link, the Merkle root of its
//! transactions, its height, a timestamp, the proof-of-work difficulty
//! target and a nonce — the minimum a light client (Section 4.3) needs to
//! verify chain continuity and transaction inclusion.

use crate::transaction::Transaction;
use crate::types::{BlockHash, BlockHeight, ChainId, Timestamp};
use ac3_crypto::{Hash256, MerkleTree, Sha256};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A block header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// The chain this block belongs to. Including the chain id in the header
    /// prevents replaying headers of one simulated chain as evidence about
    /// another.
    pub chain: ChainId,
    /// Hash of the parent block header (all-zero for genesis).
    pub parent: BlockHash,
    /// Merkle root over the block's transactions.
    pub tx_root: Hash256,
    /// Height of this block (genesis = 0).
    pub height: BlockHeight,
    /// Simulated time at which the block was mined (milliseconds).
    pub timestamp: Timestamp,
    /// The proof-of-work target: the header hash must be numerically below
    /// or equal to this value.
    pub target: Hash256,
    /// The proof-of-work nonce.
    pub nonce: u64,
}

impl BlockHeader {
    /// Canonical encoding used for hashing and proof-of-work.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(b"ac3wn/header/v1");
        out.extend_from_slice(&self.chain.0.to_be_bytes());
        out.extend_from_slice(self.parent.0.as_bytes());
        out.extend_from_slice(self.tx_root.as_bytes());
        out.extend_from_slice(&self.height.to_be_bytes());
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        out.extend_from_slice(self.target.as_bytes());
        out.extend_from_slice(&self.nonce.to_be_bytes());
        out
    }

    /// The block hash (hash of the header).
    pub fn hash(&self) -> BlockHash {
        let mut h = Sha256::new();
        h.update(&self.canonical_bytes());
        BlockHash(Hash256::from(h.finalize()))
    }

    /// Whether the header hash satisfies its own difficulty target.
    pub fn meets_target(&self) -> bool {
        self.hash().0.meets_target(&self.target)
    }

    /// Whether this is a genesis header.
    pub fn is_genesis(&self) -> bool {
        self.height == 0 && self.parent == BlockHash::GENESIS_PARENT
    }
}

impl fmt::Display for BlockHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} h={} {}", self.chain, self.height, self.hash())
    }
}

/// A full block: header plus ordered transactions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// The transactions, in execution order. By convention the first
    /// transaction (if any) may be a coinbase.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// The block hash.
    pub fn hash(&self) -> BlockHash {
        self.header.hash()
    }

    /// Compute the Merkle root over a transaction list. Leaves are the
    /// memoized canonical encodings, so each transaction is serialized at
    /// most once across root computation, id hashing and proof generation.
    pub fn compute_tx_root(transactions: &[Transaction]) -> Hash256 {
        MerkleTree::from_leaves(transactions.iter().map(|t| t.canonical_bytes_cached())).root()
    }

    /// The Merkle tree over this block's transactions (used to produce SPV
    /// inclusion proofs).
    pub fn tx_tree(&self) -> MerkleTree {
        MerkleTree::from_leaves(self.transactions.iter().map(|t| t.canonical_bytes_cached()))
    }

    /// Whether the header's Merkle root matches the transactions.
    pub fn tx_root_valid(&self) -> bool {
        Self::compute_tx_root(&self.transactions) == self.header.tx_root
    }

    /// Locate a transaction by id and return its index.
    pub fn find_tx(&self, txid: &crate::types::TxId) -> Option<usize> {
        self.transactions.iter().position(|t| t.id() == *txid)
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} txs)", self.header, self.transactions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{coinbase, TxBuilder};
    use crate::types::Address;
    use ac3_crypto::KeyPair;

    fn sample_block(n_txs: usize) -> Block {
        let miner = Address::from(KeyPair::from_seed(b"miner").public());
        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let mut txs = vec![coinbase(miner, 50, 1)];
        for _ in 0..n_txs {
            txs.push(builder.transfer(vec![], vec![], 1));
        }
        let header = BlockHeader {
            chain: ChainId(0),
            parent: BlockHash::GENESIS_PARENT,
            tx_root: Block::compute_tx_root(&txs),
            height: 0,
            timestamp: 0,
            target: Hash256::MAX,
            nonce: 0,
        };
        Block { header, transactions: txs }
    }

    #[test]
    fn header_hash_changes_with_nonce() {
        let block = sample_block(2);
        let mut other = block.header;
        other.nonce += 1;
        assert_ne!(block.header.hash(), other.hash());
    }

    #[test]
    fn header_hash_changes_with_chain_id() {
        let block = sample_block(0);
        let mut other = block.header;
        other.chain = ChainId(9);
        assert_ne!(block.header.hash(), other.hash());
    }

    #[test]
    fn tx_root_validation() {
        let mut block = sample_block(3);
        assert!(block.tx_root_valid());
        block.transactions.pop();
        assert!(!block.tx_root_valid());
    }

    #[test]
    fn max_target_always_met() {
        let block = sample_block(1);
        assert!(block.header.meets_target());
    }

    #[test]
    fn zero_target_never_met() {
        let mut block = sample_block(1);
        block.header.target = Hash256::ZERO;
        assert!(!block.header.meets_target());
    }

    #[test]
    fn genesis_detection() {
        let block = sample_block(0);
        assert!(block.header.is_genesis());
        let mut non_genesis = block.header;
        non_genesis.height = 1;
        assert!(!non_genesis.is_genesis());
    }

    #[test]
    fn find_tx_locates_inclusion_index() {
        let block = sample_block(3);
        let target = block.transactions[2].id();
        assert_eq!(block.find_tx(&target), Some(2));
        let missing = crate::types::TxId(Hash256::digest(b"missing"));
        assert_eq!(block.find_tx(&missing), None);
    }

    #[test]
    fn inclusion_proofs_verify_against_header_root() {
        let block = sample_block(4);
        let tree = block.tx_tree();
        for (i, tx) in block.transactions.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            assert!(proof.verify(&block.header.tx_root, &tx.canonical_bytes()));
        }
    }
}
