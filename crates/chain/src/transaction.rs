//! The transaction model (Section 2.3 of the paper).
//!
//! A transaction is "a digital signature that transfers the ownership of
//! assets from one identity to another". We implement the UTXO model the
//! paper illustrates in Figures 2 and 3 (merge and split transactions) plus
//! the two smart-contract message kinds the paper needs: contract deployment
//! (which may lock assets, `msg.value`) and contract function calls.

use crate::types::{Address, Amount, OutPoint, TxId};
use ac3_crypto::{Hash256, KeyPair, Sha256, Signature};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// A transaction output: an asset of some value owned by an identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxOutput {
    /// The identity that owns the new asset.
    pub owner: Address,
    /// The asset value.
    pub value: Amount,
}

impl TxOutput {
    /// Construct an output.
    pub fn new(owner: Address, value: Amount) -> Self {
        TxOutput { owner, value }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.owner.to_bytes());
        out.extend_from_slice(&self.value.to_be_bytes());
    }
}

/// The three kinds of state transition end-users can submit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxKind {
    /// Transfer / merge / split assets (Figures 2 and 3).
    Transfer {
        /// The consumed outputs; all must be owned by the signer.
        inputs: Vec<OutPoint>,
        /// The newly created outputs.
        outputs: Vec<TxOutput>,
    },
    /// Deploy a smart contract, optionally locking assets in it
    /// (`msg.value`, Section 2.3).
    Deploy {
        /// Outputs consumed to fund the locked value plus the fee.
        inputs: Vec<OutPoint>,
        /// The asset value locked in the contract.
        locked_value: Amount,
        /// Change returned to the deployer (inputs - locked_value - fee).
        change: Vec<TxOutput>,
        /// Opaque constructor payload, decoded by the chain's contract VM.
        payload: Vec<u8>,
    },
    /// Invoke a function on a deployed smart contract.
    Call {
        /// The contract being called.
        contract: crate::types::ContractId,
        /// Opaque call payload, decoded by the chain's contract VM.
        payload: Vec<u8>,
    },
    /// A mining reward output created by the miner of a block. Carries no
    /// inputs and no signature; at most one per block.
    Coinbase {
        /// The reward outputs.
        outputs: Vec<TxOutput>,
    },
}

/// Lazily computed identity of a transaction: its canonical encoding and the
/// hash of that encoding. Both are derived purely from the transaction's
/// other fields, so the cache is invisible to equality, ordering and
/// serialization, and it is deliberately *not* carried across `clone()` —
/// a clone may be mutated before use (tests do this to model tampering), and
/// a stale cached id would silently mask the mutation.
///
/// Treat a transaction as immutable once its id or canonical bytes have been
/// observed: mutating fields afterwards yields stale cached values.
#[derive(Debug, Default)]
pub struct TxIdentityCache {
    bytes: OnceLock<Vec<u8>>,
    id: OnceLock<TxId>,
}

impl Clone for TxIdentityCache {
    fn clone(&self) -> Self {
        TxIdentityCache::default()
    }
}

impl PartialEq for TxIdentityCache {
    fn eq(&self, _other: &Self) -> bool {
        true // derived data participates in no comparison
    }
}

impl Eq for TxIdentityCache {}

/// A signed transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Who authored (and signed) the transaction; `None` only for coinbase.
    pub sender: Option<Address>,
    /// The state transition.
    pub kind: TxKind,
    /// The fee paid to the miner. The paper's cost analysis (Section 6.2)
    /// distinguishes deployment fees `fd` from function-call fees `ffc`.
    pub fee: Amount,
    /// A nonce so that otherwise-identical transactions get distinct ids.
    pub nonce: u64,
    /// The sender's signature over the canonical encoding; `None` only for
    /// coinbase transactions.
    pub signature: Option<Signature>,
    /// Memoized canonical bytes and id (see [`TxIdentityCache`]).
    #[serde(skip)]
    pub cache: TxIdentityCache,
}

impl Transaction {
    /// Canonical encoding of everything except the signature — the message
    /// that gets signed.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(b"ac3wn/tx/v1");
        match &self.sender {
            Some(addr) => {
                out.push(1);
                out.extend_from_slice(&addr.to_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.fee.to_be_bytes());
        out.extend_from_slice(&self.nonce.to_be_bytes());
        match &self.kind {
            TxKind::Transfer { inputs, outputs } => {
                out.push(0x01);
                out.extend_from_slice(&(inputs.len() as u32).to_be_bytes());
                for i in inputs {
                    out.extend_from_slice(&i.to_bytes());
                }
                out.extend_from_slice(&(outputs.len() as u32).to_be_bytes());
                for o in outputs {
                    o.encode(&mut out);
                }
            }
            TxKind::Deploy { inputs, locked_value, change, payload } => {
                out.push(0x02);
                out.extend_from_slice(&(inputs.len() as u32).to_be_bytes());
                for i in inputs {
                    out.extend_from_slice(&i.to_bytes());
                }
                out.extend_from_slice(&locked_value.to_be_bytes());
                out.extend_from_slice(&(change.len() as u32).to_be_bytes());
                for o in change {
                    o.encode(&mut out);
                }
                out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
                out.extend_from_slice(payload);
            }
            TxKind::Call { contract, payload } => {
                out.push(0x03);
                out.extend_from_slice(contract.0.as_bytes());
                out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
                out.extend_from_slice(payload);
            }
            TxKind::Coinbase { outputs } => {
                out.push(0x04);
                out.extend_from_slice(&(outputs.len() as u32).to_be_bytes());
                for o in outputs {
                    o.encode(&mut out);
                }
            }
        }
        out
    }

    /// Full canonical encoding including the signature; hashed to obtain the
    /// transaction id and used as the Merkle leaf.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.canonical_bytes_cached().to_vec()
    }

    /// Borrowed canonical encoding, computed once per transaction instance.
    /// Merkle-root construction and id hashing go through this so a block of
    /// `n` transactions encodes each transaction once, not once per use.
    pub fn canonical_bytes_cached(&self) -> &[u8] {
        self.cache.bytes.get_or_init(|| {
            let mut out = self.signing_bytes();
            match &self.signature {
                Some(sig) => {
                    out.push(1);
                    out.extend_from_slice(&sig.to_bytes());
                }
                None => out.push(0),
            }
            out
        })
    }

    /// The transaction id, computed once per transaction instance. UTXO
    /// validation, mempool admission, Merkle-root construction and inclusion
    /// proofs all ask for the id repeatedly; re-serializing and re-hashing on
    /// every call was a measurable hot spot.
    pub fn id(&self) -> TxId {
        *self.cache.id.get_or_init(|| {
            let mut h = Sha256::new();
            h.update(self.canonical_bytes_cached());
            TxId(Hash256::from(h.finalize()))
        })
    }

    /// Whether the embedded signature is valid for the sender over the
    /// signing bytes. Coinbase transactions are vacuously authorised.
    pub fn signature_valid(&self) -> bool {
        match (&self.sender, &self.signature) {
            (None, None) => matches!(self.kind, TxKind::Coinbase { .. }),
            (Some(sender), Some(sig)) => sender.public_key().verifies(&self.signing_bytes(), sig),
            _ => false,
        }
    }

    /// The outputs this transaction creates directly (excluding contract
    /// payouts, which are materialised by the executing chain).
    pub fn created_outputs(&self) -> &[TxOutput] {
        match &self.kind {
            TxKind::Transfer { outputs, .. } => outputs,
            TxKind::Deploy { change, .. } => change,
            TxKind::Coinbase { outputs } => outputs,
            TxKind::Call { .. } => &[],
        }
    }

    /// The outpoints this transaction consumes.
    pub fn consumed_inputs(&self) -> &[OutPoint] {
        match &self.kind {
            TxKind::Transfer { inputs, .. } => inputs,
            TxKind::Deploy { inputs, .. } => inputs,
            TxKind::Call { .. } | TxKind::Coinbase { .. } => &[],
        }
    }

    /// Is this a coinbase transaction?
    pub fn is_coinbase(&self) -> bool {
        matches!(self.kind, TxKind::Coinbase { .. })
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.kind {
            TxKind::Transfer { .. } => "transfer",
            TxKind::Deploy { .. } => "deploy",
            TxKind::Call { .. } => "call",
            TxKind::Coinbase { .. } => "coinbase",
        };
        write!(f, "{} {}", kind, self.id())
    }
}

/// Builder for signed transactions; keeps the signing step in one place so
/// simulation actors cannot forget to sign.
#[derive(Debug, Clone)]
pub struct TxBuilder {
    keypair: KeyPair,
    nonce: u64,
}

impl TxBuilder {
    /// Create a builder for the given signer. `nonce_seed` lets callers make
    /// ids unique across otherwise identical transactions.
    pub fn new(keypair: KeyPair, nonce_seed: u64) -> Self {
        TxBuilder { keypair, nonce: nonce_seed }
    }

    /// The signer's chain address.
    pub fn address(&self) -> Address {
        Address::from(self.keypair.public())
    }

    fn next_nonce(&mut self) -> u64 {
        let n = self.nonce;
        self.nonce = self.nonce.wrapping_add(1);
        n
    }

    fn finish(&mut self, kind: TxKind, fee: Amount) -> Transaction {
        let mut tx = Transaction {
            sender: Some(self.address()),
            kind,
            fee,
            nonce: self.next_nonce(),
            signature: None,
            cache: TxIdentityCache::default(),
        };
        let sig = self.keypair.sign(&tx.signing_bytes());
        tx.signature = Some(sig);
        tx
    }

    /// Build a transfer (merge/split) transaction.
    pub fn transfer(
        &mut self,
        inputs: Vec<OutPoint>,
        outputs: Vec<TxOutput>,
        fee: Amount,
    ) -> Transaction {
        self.finish(TxKind::Transfer { inputs, outputs }, fee)
    }

    /// Build a contract deployment locking `locked_value` in the contract.
    pub fn deploy(
        &mut self,
        inputs: Vec<OutPoint>,
        locked_value: Amount,
        change: Vec<TxOutput>,
        payload: Vec<u8>,
        fee: Amount,
    ) -> Transaction {
        self.finish(TxKind::Deploy { inputs, locked_value, change, payload }, fee)
    }

    /// Build a contract function call.
    pub fn call(
        &mut self,
        contract: crate::types::ContractId,
        payload: Vec<u8>,
        fee: Amount,
    ) -> Transaction {
        self.finish(TxKind::Call { contract, payload }, fee)
    }
}

/// Construct the (unsigned) coinbase transaction for a block.
pub fn coinbase(recipient: Address, reward: Amount, height: u64) -> Transaction {
    Transaction {
        sender: None,
        kind: TxKind::Coinbase { outputs: vec![TxOutput::new(recipient, reward)] },
        fee: 0,
        // Use the height as the nonce so every block's coinbase id is unique.
        nonce: height,
        signature: None,
        cache: TxIdentityCache::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ContractId;
    use ac3_crypto::KeyPair;

    fn builder(seed: &[u8]) -> TxBuilder {
        TxBuilder::new(KeyPair::from_seed(seed), 0)
    }

    fn dummy_outpoint(tag: u8) -> OutPoint {
        OutPoint::new(TxId(Hash256::digest(&[tag])), 0)
    }

    #[test]
    fn signed_transfer_verifies() {
        let mut alice = builder(b"alice");
        let bob = builder(b"bob").address();
        let tx = alice.transfer(vec![dummy_outpoint(1)], vec![TxOutput::new(bob, 50)], 1);
        assert!(tx.signature_valid());
        assert_eq!(tx.consumed_inputs().len(), 1);
        assert_eq!(tx.created_outputs().len(), 1);
    }

    #[test]
    fn tampering_with_outputs_invalidates_signature() {
        let mut alice = builder(b"alice");
        let bob = builder(b"bob").address();
        let eve = builder(b"eve").address();
        let mut tx = alice.transfer(vec![dummy_outpoint(1)], vec![TxOutput::new(bob, 50)], 1);
        if let TxKind::Transfer { outputs, .. } = &mut tx.kind {
            outputs[0] = TxOutput::new(eve, 50);
        }
        assert!(!tx.signature_valid());
    }

    #[test]
    fn unsigned_non_coinbase_is_invalid() {
        let mut alice = builder(b"alice");
        let mut tx = alice.transfer(vec![dummy_outpoint(1)], vec![], 0);
        tx.signature = None;
        assert!(!tx.signature_valid());
    }

    #[test]
    fn coinbase_is_valid_without_signature() {
        let miner = builder(b"miner").address();
        let cb = coinbase(miner, 100, 7);
        assert!(cb.signature_valid());
        assert!(cb.is_coinbase());
        assert!(cb.consumed_inputs().is_empty());
    }

    #[test]
    fn coinbase_ids_differ_by_height() {
        let miner = builder(b"miner").address();
        assert_ne!(coinbase(miner, 100, 1).id(), coinbase(miner, 100, 2).id());
    }

    #[test]
    fn nonce_makes_identical_payments_distinct() {
        let mut alice = builder(b"alice");
        let bob = builder(b"bob").address();
        let t1 = alice.transfer(vec![dummy_outpoint(1)], vec![TxOutput::new(bob, 5)], 1);
        let t2 = alice.transfer(vec![dummy_outpoint(1)], vec![TxOutput::new(bob, 5)], 1);
        assert_ne!(t1.id(), t2.id());
    }

    #[test]
    fn deploy_and_call_round_trip() {
        let mut alice = builder(b"alice");
        let deploy = alice.deploy(vec![dummy_outpoint(2)], 75, vec![], b"ctor".to_vec(), 2);
        assert!(deploy.signature_valid());
        match &deploy.kind {
            TxKind::Deploy { locked_value, payload, .. } => {
                assert_eq!(*locked_value, 75);
                assert_eq!(payload, b"ctor");
            }
            _ => panic!("expected deploy"),
        }

        let call = alice.call(ContractId(Hash256::digest(b"sc")), b"redeem".to_vec(), 1);
        assert!(call.signature_valid());
        assert!(call.consumed_inputs().is_empty());
    }

    #[test]
    fn canonical_bytes_include_signature() {
        let mut alice = builder(b"alice");
        let tx = alice.transfer(vec![dummy_outpoint(1)], vec![], 0);
        let mut unsigned = tx.clone();
        unsigned.signature = None;
        assert_ne!(tx.canonical_bytes(), unsigned.canonical_bytes());
        assert_ne!(tx.id(), unsigned.id());
    }

    #[test]
    fn display_names_kind() {
        let mut alice = builder(b"alice");
        let tx = alice.transfer(vec![], vec![], 0);
        assert!(tx.to_string().starts_with("transfer"));
    }

    #[test]
    fn id_is_memoized_and_stable() {
        let mut alice = builder(b"alice");
        let tx = alice.transfer(vec![dummy_outpoint(1)], vec![], 1);
        let first = tx.id();
        // Repeated calls return the cached id and the cached bytes pointer.
        assert_eq!(tx.id(), first);
        let p1 = tx.canonical_bytes_cached().as_ptr();
        let p2 = tx.canonical_bytes_cached().as_ptr();
        assert_eq!(p1, p2, "canonical bytes recomputed instead of cached");
    }

    #[test]
    fn clone_does_not_inherit_stale_cache() {
        let mut alice = builder(b"alice");
        let tx = alice.transfer(vec![dummy_outpoint(1)], vec![], 1);
        let _ = tx.id(); // warm the cache
        let mut tampered = tx.clone();
        tampered.fee = 99;
        // The clone must recompute from its own (mutated) fields.
        assert_ne!(tampered.id(), tx.id());
        assert_ne!(tampered.canonical_bytes(), tx.canonical_bytes());
    }

    #[test]
    fn cache_is_invisible_to_equality() {
        let mut alice = builder(b"alice");
        let tx = alice.transfer(vec![dummy_outpoint(1)], vec![], 1);
        let fresh = tx.clone(); // clone has a cold cache
        let _ = tx.id(); // warm only the original
        assert_eq!(tx, fresh);
    }
}
