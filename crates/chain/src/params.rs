//! Per-chain configuration parameters.
//!
//! The paper's evaluation (Section 6) characterises each permissionless
//! blockchain by a handful of numbers: its throughput in transactions per
//! second (Table 1), its block interval (`dh` blocks per hour in Section
//! 6.3), its fee schedule (`fd`, `ffc` in Section 6.2) and the confirmation
//! depth `d` after which forks are considered negligible. [`ChainParams`]
//! bundles exactly those knobs, with presets mirroring the paper's Table 1
//! cryptocurrencies.

use crate::types::Amount;
use ac3_crypto::Hash256;
use serde::{Deserialize, Serialize};

/// How blocks are sealed by the simulated miners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SealPolicy {
    /// Perform a bounded nonce search against the difficulty target, like a
    /// real proof-of-work miner (used by PoW-focused tests and benches).
    ProofOfWork {
        /// Number of leading zero bits the block hash must have.
        difficulty_bits: u32,
    },
    /// Seal instantly without searching. Block production timing is governed
    /// entirely by the simulated block interval; used for protocol-level
    /// simulations where PoW cycles are irrelevant.
    Instant,
}

impl SealPolicy {
    /// The proof-of-work target corresponding to this policy.
    pub fn target(&self) -> Hash256 {
        match self {
            SealPolicy::Instant => Hash256::MAX,
            SealPolicy::ProofOfWork { difficulty_bits } => {
                let mut bytes = [0xffu8; 32];
                let full_bytes = (*difficulty_bits / 8) as usize;
                let rem_bits = *difficulty_bits % 8;
                for b in bytes.iter_mut().take(full_bytes.min(32)) {
                    *b = 0;
                }
                if full_bytes < 32 && rem_bits > 0 {
                    bytes[full_bytes] = 0xff >> rem_bits;
                }
                Hash256::from_bytes(bytes)
            }
        }
    }
}

/// The dynamic per-block base-fee schedule (EIP-1559-style): the minimum
/// fee the mempool admits, updated on every accepted canonical block from
/// the *parent* block's fullness. Sustained demand above the target
/// utilisation raises the price of block space even while the mempool has
/// room; when demand stops the base fee decays back to the floor.
///
/// The update rule is pure integer arithmetic over
/// `(current, used, budget)` — see [`BaseFeeSchedule::next`] — so the base
/// fee is a deterministic function of the canonical chain and is replayed
/// identically across reorgs (it lives in
/// [`crate::chain::ChainState`], covered by the incremental-state
/// differential oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaseFeeSchedule {
    /// The base fee never drops below this floor (and starts there).
    pub floor: Amount,
    /// Target block utilisation in percent of the per-block transaction
    /// budget. Blocks fuller than the target raise the base fee, emptier
    /// blocks lower it. Clamped so the target is at least one transaction —
    /// a budget-1 chain has no headroom above target, so its base fee can
    /// only decay (dynamic pricing needs a budget of at least 2).
    pub target_utilisation_pct: u32,
    /// Maximum per-block adjustment in percent of the current base fee
    /// (both directions). `0` disables the dynamics entirely: the base fee
    /// is pinned (at the floor) and never moves. Off-target blocks always
    /// move the fee by at least 1 unit, so small fees still adjust.
    pub max_change_pct: u32,
}

impl BaseFeeSchedule {
    /// A static schedule: base fee pinned at 0, never moving — the paper's
    /// fixed fd/ffc fee world. The default for every preset.
    pub const fn disabled() -> Self {
        BaseFeeSchedule { floor: 0, target_utilisation_pct: 50, max_change_pct: 0 }
    }

    /// An EIP-1559-like schedule: floor 1, 50% target utilisation, at most
    /// ~1/8 (13%) adjustment per block.
    pub const fn eip1559_like() -> Self {
        BaseFeeSchedule { floor: 1, target_utilisation_pct: 50, max_change_pct: 13 }
    }

    /// Whether the schedule ever moves the base fee.
    pub fn is_dynamic(&self) -> bool {
        self.max_change_pct > 0
    }

    /// The target transaction count for a block with `budget` slots.
    pub fn target_txs(&self, budget: usize) -> usize {
        let budget = budget.max(1);
        (budget * self.target_utilisation_pct as usize / 100).clamp(1, budget)
    }

    /// The largest single-block movement allowed from `current`:
    /// `max_change_pct` percent of it, but at least 1 so small fees can
    /// still adjust.
    pub fn max_step(&self, current: Amount) -> Amount {
        Self::narrow(current as u128 * self.max_change_pct as u128 / 100).max(1)
    }

    /// Saturating u128 → [`Amount`] narrowing: schedules with a
    /// `max_change_pct` above 100 on astronomically large fees must
    /// saturate, not wrap.
    fn narrow(value: u128) -> Amount {
        Amount::try_from(value).unwrap_or(Amount::MAX)
    }

    /// The base fee of the block after one whose `used` non-coinbase
    /// transaction slots are measured against a `budget`-slot block.
    ///
    /// Movement is proportional to the distance from the target (like
    /// EIP-1559's `base * excess / target / 8`), clamped to
    /// [`BaseFeeSchedule::max_step`] and floored at
    /// [`BaseFeeSchedule::floor`].
    pub fn next(&self, current: Amount, used: usize, budget: usize) -> Amount {
        let current = current.max(self.floor);
        if self.max_change_pct == 0 {
            return current;
        }
        let budget = budget.max(1);
        let target = self.target_txs(budget);
        let max_step = self.max_step(current);
        if used > target {
            let excess = (used - target) as u128;
            let span = (budget - target).max(1) as u128;
            let delta =
                Self::narrow(current as u128 * self.max_change_pct as u128 * excess / (span * 100));
            current.saturating_add(delta.clamp(1, max_step))
        } else if used < target {
            let shortfall = (target - used) as u128;
            let delta = Self::narrow(
                current as u128 * self.max_change_pct as u128 * shortfall / (target as u128 * 100),
            );
            current.saturating_sub(delta.clamp(1, max_step).min(current)).max(self.floor)
        } else {
            current
        }
    }
}

impl Default for BaseFeeSchedule {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Configuration of one simulated blockchain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainParams {
    /// Human-readable name ("Bitcoin", "Ethereum", "Witness", ...).
    pub name: String,
    /// Average block interval in simulated milliseconds.
    pub block_interval_ms: u64,
    /// Maximum sustained throughput in transactions per second (Table 1).
    /// Together with the block interval this caps the number of
    /// transactions per block.
    pub tps: u64,
    /// Smart-contract deployment fee `fd` (Section 6.2), in asset units.
    pub deploy_fee: Amount,
    /// Smart-contract function-call fee `ffc` (Section 6.2), in asset units.
    pub call_fee: Amount,
    /// Plain transfer fee.
    pub transfer_fee: Amount,
    /// Block reward paid to the miner via the coinbase transaction.
    pub block_reward: Amount,
    /// The number of confirmations after which a block is considered stable
    /// (`d`; e.g. 6 for Bitcoin, Section 4.2/6.3).
    pub stable_depth: u64,
    /// Maximum number of transactions the mempool holds. Submissions to a
    /// full pool must outbid the cheapest evictable pending transaction
    /// (fee-based eviction) or they are rejected — the supply side of the
    /// fee market.
    pub mempool_capacity: usize,
    /// The dynamic per-block base-fee schedule: the miner-side half of the
    /// fee market. [`BaseFeeSchedule::disabled`] (the preset default)
    /// reproduces the paper's static fee world exactly.
    pub base_fee_schedule: BaseFeeSchedule,
    /// How blocks are sealed.
    pub seal: SealPolicy,
}

impl ChainParams {
    /// Maximum number of non-coinbase transactions allowed per block,
    /// derived from the tps cap and the block interval.
    pub fn max_txs_per_block(&self) -> usize {
        let per_block = (self.tps as u128 * self.block_interval_ms as u128) / 1000;
        (per_block.max(1)) as usize
    }

    /// Expected blocks per hour (`dh` in the Section 6.3 inequality).
    pub fn blocks_per_hour(&self) -> f64 {
        3_600_000.0 / self.block_interval_ms as f64
    }

    /// The PoW target for this chain.
    pub fn target(&self) -> Hash256 {
        self.seal.target()
    }

    /// A generic test chain: instant sealing, generous throughput.
    pub fn test(name: &str) -> Self {
        ChainParams {
            name: name.to_string(),
            block_interval_ms: 1_000,
            tps: 1_000,
            deploy_fee: 4,
            call_fee: 2,
            transfer_fee: 1,
            block_reward: 50,
            stable_depth: 6,
            mempool_capacity: 100_000,
            base_fee_schedule: BaseFeeSchedule::disabled(),
            seal: SealPolicy::Instant,
        }
    }

    /// A fast test chain for concurrent-scheduler workloads: 1-second
    /// blocks, stability after 3 confirmations (Δ = 4 s), with an explicit
    /// tps cap so one chain can be made the contention bottleneck. The
    /// scheduler tests and the Section 5.2 / 6.4 bench binaries share this
    /// shape; change it here, not in per-binary copies.
    pub fn fast(name: &str, tps: u64) -> Self {
        let mut p = ChainParams::test(name);
        p.block_interval_ms = 1_000;
        p.stable_depth = 3;
        p.tps = tps;
        p
    }

    /// The same parameters with a dynamic base-fee schedule — the opt-in
    /// for the miner-side fee market (presets default to
    /// [`BaseFeeSchedule::disabled`], the paper's static fee world).
    pub fn with_base_fee(mut self, schedule: BaseFeeSchedule) -> Self {
        self.base_fee_schedule = schedule;
        self
    }

    /// Bitcoin-like parameters (Table 1: 7 tps; 6 blocks/hour; d = 6).
    pub fn bitcoin_like() -> Self {
        ChainParams {
            name: "Bitcoin".to_string(),
            block_interval_ms: 600_000,
            tps: 7,
            deploy_fee: 4,
            call_fee: 2,
            transfer_fee: 1,
            block_reward: 625,
            stable_depth: 6,
            mempool_capacity: 100_000,
            base_fee_schedule: BaseFeeSchedule::disabled(),
            seal: SealPolicy::Instant,
        }
    }

    /// Ethereum-like parameters (Table 1: 25 tps).
    pub fn ethereum_like() -> Self {
        ChainParams {
            name: "Ethereum".to_string(),
            block_interval_ms: 15_000,
            tps: 25,
            deploy_fee: 4,
            call_fee: 2,
            transfer_fee: 1,
            block_reward: 2,
            stable_depth: 12,
            mempool_capacity: 100_000,
            base_fee_schedule: BaseFeeSchedule::disabled(),
            seal: SealPolicy::Instant,
        }
    }

    /// Litecoin-like parameters (Table 1: 56 tps).
    pub fn litecoin_like() -> Self {
        ChainParams {
            name: "Litecoin".to_string(),
            block_interval_ms: 150_000,
            tps: 56,
            deploy_fee: 4,
            call_fee: 2,
            transfer_fee: 1,
            block_reward: 12,
            stable_depth: 6,
            mempool_capacity: 100_000,
            base_fee_schedule: BaseFeeSchedule::disabled(),
            seal: SealPolicy::Instant,
        }
    }

    /// Bitcoin-Cash-like parameters (Table 1: 61 tps).
    pub fn bitcoin_cash_like() -> Self {
        ChainParams {
            name: "BitcoinCash".to_string(),
            block_interval_ms: 600_000,
            tps: 61,
            deploy_fee: 4,
            call_fee: 2,
            transfer_fee: 1,
            block_reward: 625,
            stable_depth: 6,
            mempool_capacity: 100_000,
            base_fee_schedule: BaseFeeSchedule::disabled(),
            seal: SealPolicy::Instant,
        }
    }

    /// The paper's Table 1, in market-cap order.
    pub fn table1() -> Vec<ChainParams> {
        vec![
            Self::bitcoin_like(),
            Self::ethereum_like(),
            Self::litecoin_like(),
            Self::bitcoin_cash_like(),
        ]
    }
}

impl Default for ChainParams {
    fn default() -> Self {
        Self::test("test-chain")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_txs_per_block_respects_tps() {
        let btc = ChainParams::bitcoin_like();
        // 7 tps * 600 s = 4200 txs per block.
        assert_eq!(btc.max_txs_per_block(), 4200);
        let eth = ChainParams::ethereum_like();
        // 25 tps * 15 s = 375 txs per block.
        assert_eq!(eth.max_txs_per_block(), 375);
    }

    #[test]
    fn max_txs_never_zero() {
        let mut p = ChainParams::test("tiny");
        p.tps = 1;
        p.block_interval_ms = 1;
        assert!(p.max_txs_per_block() >= 1);
    }

    #[test]
    fn blocks_per_hour_matches_paper_bitcoin() {
        let btc = ChainParams::bitcoin_like();
        assert!((btc.blocks_per_hour() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn table1_matches_paper_throughputs() {
        let tps: Vec<u64> = ChainParams::table1().iter().map(|c| c.tps).collect();
        assert_eq!(tps, vec![7, 25, 56, 61]);
    }

    #[test]
    fn pow_target_has_requested_leading_zeros() {
        let t = SealPolicy::ProofOfWork { difficulty_bits: 12 }.target();
        assert_eq!(t.leading_zero_bits(), 12);
        let instant = SealPolicy::Instant.target();
        assert_eq!(instant, Hash256::MAX);
    }

    #[test]
    fn pow_target_handles_byte_aligned_difficulty() {
        let t = SealPolicy::ProofOfWork { difficulty_bits: 16 }.target();
        assert_eq!(t.leading_zero_bits(), 16);
    }

    #[test]
    fn disabled_schedule_never_moves() {
        let s = BaseFeeSchedule::disabled();
        assert!(!s.is_dynamic());
        for used in 0..10 {
            assert_eq!(s.next(0, used, 4), 0);
            assert_eq!(s.next(7, used, 4), 7, "a pinned base fee never moves");
        }
    }

    #[test]
    fn full_blocks_raise_and_empty_blocks_lower_the_base_fee() {
        let s = BaseFeeSchedule::eip1559_like();
        let budget = 8; // target 4
        assert_eq!(s.target_txs(budget), 4);
        // At target: unchanged. Above: rises. Below: falls, never under the
        // floor.
        assert_eq!(s.next(100, 4, budget), 100);
        assert!(s.next(100, 8, budget) > 100);
        assert!(s.next(100, 0, budget) < 100);
        assert_eq!(s.next(1, 0, budget), 1, "floor holds");
        // Small fees still move by at least one unit in both directions.
        assert_eq!(s.next(1, 8, budget), 2);
        assert_eq!(s.next(3, 0, budget), 2);
    }

    #[test]
    fn base_fee_movement_is_bounded_by_max_step() {
        let s = BaseFeeSchedule { floor: 1, target_utilisation_pct: 50, max_change_pct: 13 };
        for current in [1u64, 7, 100, 10_000, u64::MAX / 2] {
            let bound = s.max_step(current);
            for used in 0..=12usize {
                let next = s.next(current, used, 12);
                assert!(next >= s.floor);
                assert!(
                    next.abs_diff(current) <= bound,
                    "base fee moved {current} -> {next}, beyond max step {bound}"
                );
            }
        }
    }

    #[test]
    fn budget_one_chains_cannot_rise_above_target() {
        // target_txs clamps to at least 1, so a 1-slot block is never
        // *above* target: the base fee can only decay on such chains.
        let s = BaseFeeSchedule::eip1559_like();
        assert_eq!(s.target_txs(1), 1);
        assert_eq!(s.next(10, 1, 1), 10);
        assert_eq!(s.next(10, 0, 1), 9);
    }

    #[test]
    fn uninitialised_base_fee_snaps_to_the_floor() {
        let s = BaseFeeSchedule { floor: 5, target_utilisation_pct: 50, max_change_pct: 13 };
        assert_eq!(s.next(0, 0, 4), 5, "pre-genesis 0 is clamped to the floor");
    }

    #[test]
    fn oversized_adjustments_saturate_instead_of_wrapping() {
        // max_change_pct > 100 on an astronomically large fee must not
        // truncate the u128 intermediate back into u64 (which would turn a
        // doubling schedule into a ±1 crawl).
        let s = BaseFeeSchedule { floor: 1, target_utilisation_pct: 50, max_change_pct: 200 };
        let huge = 1u64 << 63;
        assert_eq!(s.max_step(huge), Amount::MAX, "2^63 × 200% saturates");
        let next = s.next(huge, 4, 4);
        assert!(next >= huge, "a full block still raises the fee");
        assert!(s.next(huge, 0, 4) < huge, "an empty block still lowers it");
    }
}
