//! Per-chain configuration parameters.
//!
//! The paper's evaluation (Section 6) characterises each permissionless
//! blockchain by a handful of numbers: its throughput in transactions per
//! second (Table 1), its block interval (`dh` blocks per hour in Section
//! 6.3), its fee schedule (`fd`, `ffc` in Section 6.2) and the confirmation
//! depth `d` after which forks are considered negligible. [`ChainParams`]
//! bundles exactly those knobs, with presets mirroring the paper's Table 1
//! cryptocurrencies.

use crate::types::Amount;
use ac3_crypto::Hash256;
use serde::{Deserialize, Serialize};

/// How blocks are sealed by the simulated miners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SealPolicy {
    /// Perform a bounded nonce search against the difficulty target, like a
    /// real proof-of-work miner (used by PoW-focused tests and benches).
    ProofOfWork {
        /// Number of leading zero bits the block hash must have.
        difficulty_bits: u32,
    },
    /// Seal instantly without searching. Block production timing is governed
    /// entirely by the simulated block interval; used for protocol-level
    /// simulations where PoW cycles are irrelevant.
    Instant,
}

impl SealPolicy {
    /// The proof-of-work target corresponding to this policy.
    pub fn target(&self) -> Hash256 {
        match self {
            SealPolicy::Instant => Hash256::MAX,
            SealPolicy::ProofOfWork { difficulty_bits } => {
                let mut bytes = [0xffu8; 32];
                let full_bytes = (*difficulty_bits / 8) as usize;
                let rem_bits = *difficulty_bits % 8;
                for b in bytes.iter_mut().take(full_bytes.min(32)) {
                    *b = 0;
                }
                if full_bytes < 32 && rem_bits > 0 {
                    bytes[full_bytes] = 0xff >> rem_bits;
                }
                Hash256::from_bytes(bytes)
            }
        }
    }
}

/// Configuration of one simulated blockchain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainParams {
    /// Human-readable name ("Bitcoin", "Ethereum", "Witness", ...).
    pub name: String,
    /// Average block interval in simulated milliseconds.
    pub block_interval_ms: u64,
    /// Maximum sustained throughput in transactions per second (Table 1).
    /// Together with the block interval this caps the number of
    /// transactions per block.
    pub tps: u64,
    /// Smart-contract deployment fee `fd` (Section 6.2), in asset units.
    pub deploy_fee: Amount,
    /// Smart-contract function-call fee `ffc` (Section 6.2), in asset units.
    pub call_fee: Amount,
    /// Plain transfer fee.
    pub transfer_fee: Amount,
    /// Block reward paid to the miner via the coinbase transaction.
    pub block_reward: Amount,
    /// The number of confirmations after which a block is considered stable
    /// (`d`; e.g. 6 for Bitcoin, Section 4.2/6.3).
    pub stable_depth: u64,
    /// Maximum number of transactions the mempool holds. Submissions to a
    /// full pool must outbid the cheapest evictable pending transaction
    /// (fee-based eviction) or they are rejected — the supply side of the
    /// fee market.
    pub mempool_capacity: usize,
    /// How blocks are sealed.
    pub seal: SealPolicy,
}

impl ChainParams {
    /// Maximum number of non-coinbase transactions allowed per block,
    /// derived from the tps cap and the block interval.
    pub fn max_txs_per_block(&self) -> usize {
        let per_block = (self.tps as u128 * self.block_interval_ms as u128) / 1000;
        (per_block.max(1)) as usize
    }

    /// Expected blocks per hour (`dh` in the Section 6.3 inequality).
    pub fn blocks_per_hour(&self) -> f64 {
        3_600_000.0 / self.block_interval_ms as f64
    }

    /// The PoW target for this chain.
    pub fn target(&self) -> Hash256 {
        self.seal.target()
    }

    /// A generic test chain: instant sealing, generous throughput.
    pub fn test(name: &str) -> Self {
        ChainParams {
            name: name.to_string(),
            block_interval_ms: 1_000,
            tps: 1_000,
            deploy_fee: 4,
            call_fee: 2,
            transfer_fee: 1,
            block_reward: 50,
            stable_depth: 6,
            mempool_capacity: 100_000,
            seal: SealPolicy::Instant,
        }
    }

    /// A fast test chain for concurrent-scheduler workloads: 1-second
    /// blocks, stability after 3 confirmations (Δ = 4 s), with an explicit
    /// tps cap so one chain can be made the contention bottleneck. The
    /// scheduler tests and the Section 5.2 / 6.4 bench binaries share this
    /// shape; change it here, not in per-binary copies.
    pub fn fast(name: &str, tps: u64) -> Self {
        let mut p = ChainParams::test(name);
        p.block_interval_ms = 1_000;
        p.stable_depth = 3;
        p.tps = tps;
        p
    }

    /// Bitcoin-like parameters (Table 1: 7 tps; 6 blocks/hour; d = 6).
    pub fn bitcoin_like() -> Self {
        ChainParams {
            name: "Bitcoin".to_string(),
            block_interval_ms: 600_000,
            tps: 7,
            deploy_fee: 4,
            call_fee: 2,
            transfer_fee: 1,
            block_reward: 625,
            stable_depth: 6,
            mempool_capacity: 100_000,
            seal: SealPolicy::Instant,
        }
    }

    /// Ethereum-like parameters (Table 1: 25 tps).
    pub fn ethereum_like() -> Self {
        ChainParams {
            name: "Ethereum".to_string(),
            block_interval_ms: 15_000,
            tps: 25,
            deploy_fee: 4,
            call_fee: 2,
            transfer_fee: 1,
            block_reward: 2,
            stable_depth: 12,
            mempool_capacity: 100_000,
            seal: SealPolicy::Instant,
        }
    }

    /// Litecoin-like parameters (Table 1: 56 tps).
    pub fn litecoin_like() -> Self {
        ChainParams {
            name: "Litecoin".to_string(),
            block_interval_ms: 150_000,
            tps: 56,
            deploy_fee: 4,
            call_fee: 2,
            transfer_fee: 1,
            block_reward: 12,
            stable_depth: 6,
            mempool_capacity: 100_000,
            seal: SealPolicy::Instant,
        }
    }

    /// Bitcoin-Cash-like parameters (Table 1: 61 tps).
    pub fn bitcoin_cash_like() -> Self {
        ChainParams {
            name: "BitcoinCash".to_string(),
            block_interval_ms: 600_000,
            tps: 61,
            deploy_fee: 4,
            call_fee: 2,
            transfer_fee: 1,
            block_reward: 625,
            stable_depth: 6,
            mempool_capacity: 100_000,
            seal: SealPolicy::Instant,
        }
    }

    /// The paper's Table 1, in market-cap order.
    pub fn table1() -> Vec<ChainParams> {
        vec![
            Self::bitcoin_like(),
            Self::ethereum_like(),
            Self::litecoin_like(),
            Self::bitcoin_cash_like(),
        ]
    }
}

impl Default for ChainParams {
    fn default() -> Self {
        Self::test("test-chain")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_txs_per_block_respects_tps() {
        let btc = ChainParams::bitcoin_like();
        // 7 tps * 600 s = 4200 txs per block.
        assert_eq!(btc.max_txs_per_block(), 4200);
        let eth = ChainParams::ethereum_like();
        // 25 tps * 15 s = 375 txs per block.
        assert_eq!(eth.max_txs_per_block(), 375);
    }

    #[test]
    fn max_txs_never_zero() {
        let mut p = ChainParams::test("tiny");
        p.tps = 1;
        p.block_interval_ms = 1;
        assert!(p.max_txs_per_block() >= 1);
    }

    #[test]
    fn blocks_per_hour_matches_paper_bitcoin() {
        let btc = ChainParams::bitcoin_like();
        assert!((btc.blocks_per_hour() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn table1_matches_paper_throughputs() {
        let tps: Vec<u64> = ChainParams::table1().iter().map(|c| c.tps).collect();
        assert_eq!(tps, vec![7, 25, 56, 61]);
    }

    #[test]
    fn pow_target_has_requested_leading_zeros() {
        let t = SealPolicy::ProofOfWork { difficulty_bits: 12 }.target();
        assert_eq!(t.leading_zero_bits(), 12);
        let instant = SealPolicy::Instant.target();
        assert_eq!(instant, Hash256::MAX);
    }

    #[test]
    fn pow_target_handles_byte_aligned_difficulty() {
        let t = SealPolicy::ProofOfWork { difficulty_bits: 16 }.target();
        assert_eq!(t.leading_zero_bits(), 16);
    }
}
