//! The mempool: pending transactions waiting to be mined.
//!
//! End users "multicast their transaction messages to mining nodes" (Section
//! 2.1); the mempool is where those messages wait. Miners drain it in fee
//! order (highest first, FIFO within equal fees) up to the per-block
//! transaction budget derived from the chain's tps cap.
//!
//! The pool is a bounded fee market, not an infinite queue:
//!
//! * **Capacity** is finite ([`Mempool::with_capacity`]). A submission to a
//!   full pool must outbid the cheapest *evictable* pending transaction or
//!   it is rejected with [`MempoolError::FeeTooLow`].
//! * **Base fee** ([`Mempool::base_fee`]): the chain's dynamic per-block
//!   base fee (pushed in by the owning `Blockchain` on every canonical
//!   block) is the first gate of the admission price — bids below it are
//!   rejected even while the pool has room, and
//!   [`Mempool::fee_floor`] reports `max(base fee, eviction floor)`.
//! * **Eviction** never drops a transaction that another pending
//!   transaction depends on — one whose output is spent by a pending input,
//!   or whose deployed contract is the target of a pending call (a swap
//!   redemption must not be orphaned by its own contract's deployment being
//!   priced out). Such parents are *protected*.
//! * **Replace-by-fee** ([`Mempool::replace`]) lets a submitter re-bid a
//!   stuck transaction. The replacement must pay a strictly higher fee and
//!   the replaced transaction must not have pending dependents.
//! * **Observability** ([`Mempool::min_fee`], [`Mempool::fee_floor`],
//!   [`Mempool::position`]) exposes queue depth and the going price of
//!   block space, so rational submitters can decide when to outbid.

use crate::transaction::Transaction;
use crate::types::{Amount, OutPoint, TxId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Reasons a transaction is refused admission to the mempool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MempoolError {
    /// The transaction's signature is missing or invalid.
    InvalidSignature(TxId),
    /// The same transaction is already pending.
    AlreadyPending(TxId),
    /// Another pending transaction already spends one of the same inputs.
    ConflictingInput(OutPoint),
    /// Coinbase transactions cannot be submitted by users.
    CoinbaseNotAllowed,
    /// The fee is below the admission price: under the chain's dynamic base
    /// fee, or — in a full pool — not beating the cheapest evictable
    /// pending transaction.
    FeeTooLow {
        /// The fee the rejected transaction offered.
        offered: Amount,
        /// The smallest fee that would currently buy a slot.
        floor: Amount,
    },
    /// The pool is full and every pending transaction is protected from
    /// eviction.
    Full,
    /// Replace-by-fee: the referenced original is not pending.
    NotPending(TxId),
    /// Replace-by-fee: the replacement's fee is not strictly higher than
    /// the original's.
    ReplacementFeeTooLow {
        /// The fee the replacement offered.
        offered: Amount,
        /// The fee of the transaction it tried to replace.
        current: Amount,
    },
    /// The transaction cannot be replaced or evicted because other pending
    /// transactions depend on it.
    ProtectedParent(TxId),
    /// Replace-by-fee: the replacement was not signed by the original's
    /// submitter (only the owner of a pending transaction may out-bid it).
    ReplacementSubmitterMismatch(TxId),
}

impl std::fmt::Display for MempoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MempoolError::InvalidSignature(id) => write!(f, "invalid signature on {id}"),
            MempoolError::AlreadyPending(id) => write!(f, "{id} already pending"),
            MempoolError::ConflictingInput(op) => {
                write!(f, "input {op} already spent by a pending tx")
            }
            MempoolError::CoinbaseNotAllowed => {
                write!(f, "coinbase transactions cannot be submitted")
            }
            MempoolError::FeeTooLow { offered, floor } => {
                write!(f, "fee {offered} below the admission floor {floor}")
            }
            MempoolError::Full => write!(f, "pool full and every pending tx is protected"),
            MempoolError::NotPending(id) => write!(f, "{id} is not pending"),
            MempoolError::ReplacementFeeTooLow { offered, current } => {
                write!(f, "replacement fee {offered} not strictly above the current {current}")
            }
            MempoolError::ProtectedParent(id) => {
                write!(f, "{id} has pending dependents and cannot be displaced")
            }
            MempoolError::ReplacementSubmitterMismatch(id) => {
                write!(f, "only {id}'s own submitter may replace it")
            }
        }
    }
}

impl std::error::Error for MempoolError {}

/// Priority key: higher fee first, then submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PriorityKey {
    /// Negative fee so that the natural ascending order of the BTreeSet
    /// yields the highest fee first.
    neg_fee: i128,
    seq: u64,
}

/// A pool of pending transactions.
#[derive(Debug)]
pub struct Mempool {
    txs: HashMap<TxId, Transaction>,
    order: BTreeSet<(PriorityKey, TxId)>,
    keys: HashMap<TxId, PriorityKey>,
    /// Inputs claimed by pending transactions, to reject obvious
    /// double-spends before they reach a block.
    claimed_inputs: HashSet<OutPoint>,
    /// Parent transaction id → number of pending transactions referencing
    /// it (spending one of its outputs, or calling the contract its
    /// deployment creates). Counted for every reference — whether or not
    /// the parent is itself pending — so the refcounts survive any
    /// admission order. A positive count protects a *pending* parent from
    /// eviction and replacement.
    dependents: HashMap<TxId, u32>,
    capacity: usize,
    /// The chain's current dynamic base fee (see
    /// [`crate::params::BaseFeeSchedule`]): the minimum fee admitted even
    /// while the pool has room. Pushed in by the owning `Blockchain` on
    /// every canonical state change; 0 under a disabled schedule.
    base_fee: Amount,
    next_seq: u64,
    /// Monotonic mutation counter: bumped on every insert, removal, and
    /// base-fee change. Lets observers (the sim layer's congestion cache)
    /// memoise derived views and invalidate them precisely when the pool
    /// actually changed, instead of re-walking the priority order on every
    /// probe.
    revision: u64,
}

impl Default for Mempool {
    fn default() -> Self {
        Self::with_capacity(usize::MAX)
    }
}

impl Mempool {
    /// An unbounded mempool (capacity `usize::MAX`).
    pub fn new() -> Self {
        Self::default()
    }

    /// A mempool holding at most `capacity` pending transactions.
    pub fn with_capacity(capacity: usize) -> Self {
        Mempool {
            txs: HashMap::new(),
            order: BTreeSet::new(),
            keys: HashMap::new(),
            claimed_inputs: HashSet::new(),
            dependents: HashMap::new(),
            capacity,
            base_fee: 0,
            next_seq: 0,
            revision: 0,
        }
    }

    /// Monotonic counter of pool mutations (admissions, removals,
    /// base-fee updates). Two equal revisions on the same pool bracket a
    /// window in which every derived view (depth, floor, ranks) was
    /// unchanged.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The current dynamic base fee gating admission.
    pub fn base_fee(&self) -> Amount {
        self.base_fee
    }

    /// Update the dynamic base fee (called by the owning chain whenever an
    /// accepted canonical block moves it). Already-pending transactions are
    /// not retroactively dropped: a bid below a risen base fee simply cannot
    /// be mined until the fee decays, and stays exposed to eviction.
    pub fn set_base_fee(&mut self, base_fee: Amount) {
        if self.base_fee != base_fee {
            self.revision += 1;
        }
        self.base_fee = base_fee;
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Maximum number of pending transactions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Whether `txid` is pending.
    pub fn contains(&self, txid: &TxId) -> bool {
        self.txs.contains_key(txid)
    }

    /// The fee of a pending transaction.
    pub fn fee_of(&self, txid: &TxId) -> Option<Amount> {
        self.txs.get(txid).map(|tx| tx.fee)
    }

    /// The smallest fee among pending transactions.
    pub fn min_fee(&self) -> Option<Amount> {
        self.order.iter().next_back().map(|(key, _)| (-key.neg_fee) as Amount)
    }

    /// The smallest fee that would currently buy a slot: the dynamic base
    /// fee while the pool has room, the larger of the base fee and one
    /// above the cheapest evictable transaction when it is full, and
    /// `Amount::MAX` when full of protected transactions. A submission
    /// bidding exactly this floor is always admitted (unless the floor is
    /// `Amount::MAX`) — under-reporting it would make rational bidders
    /// open with a bid the pool immediately rejects.
    ///
    /// One caller-specific caveat the aggregate quote cannot see: a
    /// submission never evicts its *own* pending parents, so when the
    /// pool-wide eviction candidate happens to be the submitter's parent,
    /// that submission's true floor is one above the next-cheapest victim
    /// (the rejection's [`MempoolError::FeeTooLow::floor`] reports the
    /// caller-specific price).
    pub fn fee_floor(&self) -> Amount {
        if self.txs.len() < self.capacity {
            return self.base_fee;
        }
        match self.eviction_candidate() {
            Some((_, fee)) => fee.saturating_add(1).max(self.base_fee),
            None => Amount::MAX,
        }
    }

    /// The fee of the pending transaction at `rank` in miner priority order
    /// (0 = mined first), or `None` when the queue is shallower. O(rank).
    pub fn fee_at_rank(&self, rank: usize) -> Option<Amount> {
        self.order.iter().nth(rank).map(|(key, _)| (-key.neg_fee) as Amount)
    }

    /// Rank of a pending transaction in miner priority order (0 = mined
    /// first). `None` if not pending.
    pub fn position(&self, txid: &TxId) -> Option<usize> {
        let key = self.keys.get(txid)?;
        Some(self.order.range(..(*key, *txid)).count())
    }

    /// Whether a pending transaction ranks within the first `limit` slots
    /// of miner priority order — the "will it make the next block?" probe,
    /// early-exiting at O(limit) instead of O(queue depth). `None` if not
    /// pending.
    pub fn position_within(&self, txid: &TxId, limit: usize) -> Option<bool> {
        let key = self.keys.get(txid)?;
        Some(self.order.range(..(*key, *txid)).take(limit).count() < limit)
    }

    /// Whether other pending transactions reference `txid` as a parent
    /// (making it — while pending — ineligible for eviction and
    /// replacement).
    pub fn is_protected(&self, txid: &TxId) -> bool {
        self.dependents.get(txid).copied().unwrap_or(0) > 0
    }

    /// The lowest-priority unprotected pending transaction and its fee.
    fn eviction_candidate(&self) -> Option<(TxId, Amount)> {
        self.eviction_candidate_excluding(&[])
    }

    /// Like [`Mempool::eviction_candidate`], but never picks a transaction
    /// in `exclude` — used to keep a submission from evicting its *own*
    /// pending parents (which would orphan it on arrival).
    fn eviction_candidate_excluding(&self, exclude: &[TxId]) -> Option<(TxId, Amount)> {
        self.order
            .iter()
            .rev()
            .map(|(key, txid)| (*txid, (-key.neg_fee) as Amount))
            .find(|(txid, _)| !self.is_protected(txid) && !exclude.contains(txid))
    }

    /// Stateless admission checks shared by `submit` and `replace`.
    /// `exempt` names inputs whose claims are being released by the same
    /// operation (the replaced transaction's own inputs).
    fn check_admissible(
        &self,
        tx: &Transaction,
        exempt_inputs: &[OutPoint],
    ) -> Result<TxId, MempoolError> {
        if tx.is_coinbase() {
            return Err(MempoolError::CoinbaseNotAllowed);
        }
        let txid = tx.id();
        if !tx.signature_valid() {
            return Err(MempoolError::InvalidSignature(txid));
        }
        if tx.fee < self.base_fee {
            // The dynamic base fee is the first gate of the admission
            // price; miners skip sub-base bids, so admitting one would
            // strand it.
            return Err(MempoolError::FeeTooLow { offered: tx.fee, floor: self.fee_floor() });
        }
        if self.txs.contains_key(&txid) {
            return Err(MempoolError::AlreadyPending(txid));
        }
        for input in tx.consumed_inputs() {
            if self.claimed_inputs.contains(input) && !exempt_inputs.contains(input) {
                return Err(MempoolError::ConflictingInput(*input));
            }
        }
        Ok(txid)
    }

    /// Transaction ids the transaction references as parents: the sources
    /// of its inputs, plus — for a contract call — the deployment of the
    /// called contract (deployments derive the contract id from their own
    /// transaction id). Deliberately *not* filtered by pending status: the
    /// refcounts stay symmetric across insert/remove regardless of the
    /// order parents and children enter the pool, so a parent is protected
    /// even when its dependent was admitted first.
    fn parent_refs(tx: &Transaction) -> Vec<TxId> {
        let mut parents: Vec<TxId> = tx.consumed_inputs().iter().map(|op| op.txid).collect();
        if let crate::transaction::TxKind::Call { contract, .. } = &tx.kind {
            parents.push(TxId(contract.0));
        }
        parents.sort();
        parents.dedup();
        parents
    }

    /// Insert a pre-checked transaction, wiring up claims and dependency
    /// protection.
    fn insert(&mut self, txid: TxId, tx: Transaction) {
        for parent in Self::parent_refs(&tx) {
            *self.dependents.entry(parent).or_default() += 1;
        }
        for input in tx.consumed_inputs() {
            self.claimed_inputs.insert(*input);
        }
        let key = PriorityKey { neg_fee: -(tx.fee as i128), seq: self.next_seq };
        self.next_seq += 1;
        self.revision += 1;
        self.order.insert((key, txid));
        self.keys.insert(txid, key);
        self.txs.insert(txid, tx);
    }

    /// Submit a transaction to the pool. When the pool is full the
    /// submission must outbid (strictly) the cheapest unprotected pending
    /// transaction, which is evicted to make room.
    pub fn submit(&mut self, tx: Transaction) -> Result<TxId, MempoolError> {
        self.submit_with_evictions(tx).map(|(txid, _)| txid)
    }

    /// Like [`Mempool::submit`], also returning the transactions evicted to
    /// make room (so callers can undo side effects of their admission,
    /// e.g. fee accounting).
    pub fn submit_with_evictions(
        &mut self,
        tx: Transaction,
    ) -> Result<(TxId, Vec<Transaction>), MempoolError> {
        let txid = self.check_admissible(&tx, &[])?;
        let mut evicted = Vec::new();
        if self.txs.len() >= self.capacity {
            // The incoming transaction's own pending parents are off
            // limits: evicting one to admit its child would orphan the
            // child on arrival.
            let parents = Self::parent_refs(&tx);
            let (victim, victim_fee) =
                self.eviction_candidate_excluding(&parents).ok_or(MempoolError::Full)?;
            if tx.fee <= victim_fee {
                return Err(MempoolError::FeeTooLow {
                    offered: tx.fee,
                    floor: victim_fee.saturating_add(1).max(self.base_fee),
                });
            }
            evicted.push(self.remove(&victim).expect("candidate is pending"));
        }
        self.insert(txid, tx);
        Ok((txid, evicted))
    }

    /// Replace-by-fee: atomically swap a pending transaction for a
    /// higher-fee replacement from the same submitter. Returns the new id
    /// and the replaced transaction.
    ///
    /// Rejected when the original is not pending, when the replacement's
    /// fee is not *strictly* higher, or when pending transactions depend on
    /// the original (replacing a deployment would orphan the calls bound to
    /// its contract id).
    pub fn replace(
        &mut self,
        old: &TxId,
        tx: Transaction,
    ) -> Result<(TxId, Transaction), MempoolError> {
        let Some(old_tx) = self.txs.get(old) else {
            return Err(MempoolError::NotPending(*old));
        };
        if tx.fee <= old_tx.fee {
            return Err(MempoolError::ReplacementFeeTooLow {
                offered: tx.fee,
                current: old_tx.fee,
            });
        }
        if tx.sender != old_tx.sender {
            return Err(MempoolError::ReplacementSubmitterMismatch(*old));
        }
        if self.is_protected(old) {
            return Err(MempoolError::ProtectedParent(*old));
        }
        let exempt: Vec<OutPoint> = old_tx.consumed_inputs().to_vec();
        let txid = self.check_admissible(&tx, &exempt)?;
        let replaced = self.remove(old).expect("checked pending above");
        self.insert(txid, tx);
        Ok((txid, replaced))
    }

    /// Remove a transaction (because it was mined or became invalid).
    pub fn remove(&mut self, txid: &TxId) -> Option<Transaction> {
        let tx = self.txs.remove(txid)?;
        self.revision += 1;
        if let Some(key) = self.keys.remove(txid) {
            self.order.remove(&(key, *txid));
        }
        for input in tx.consumed_inputs() {
            self.claimed_inputs.remove(input);
        }
        for parent in Self::parent_refs(&tx) {
            if let Some(count) = self.dependents.get_mut(&parent) {
                *count -= 1;
                if *count == 0 {
                    self.dependents.remove(&parent);
                }
            }
        }
        Some(tx)
    }

    /// Remove every transaction whose id appears in `mined` (the single
    /// bulk-removal path; block acceptance already holds the ids, so there
    /// is no by-transaction variant to keep consistent with this one).
    pub fn remove_ids<'a, I: IntoIterator<Item = &'a TxId>>(&mut self, mined: I) {
        for txid in mined {
            self.remove(txid);
        }
    }

    /// The highest-priority `limit` transactions, without removing them.
    pub fn select(&self, limit: usize) -> Vec<Transaction> {
        self.order.iter().take(limit).map(|(_, txid)| self.txs[txid].clone()).collect()
    }

    /// Iterate all pending transactions in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.order.iter().map(move |(_, txid)| &self.txs[txid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{coinbase, TxBuilder, TxOutput};
    use crate::types::{Address, ContractId, OutPoint, TxId};
    use ac3_crypto::{Hash256, KeyPair};

    fn builder(seed: &[u8]) -> TxBuilder {
        TxBuilder::new(KeyPair::from_seed(seed), 0)
    }

    fn outpoint(tag: u8) -> OutPoint {
        OutPoint::new(TxId(Hash256::digest(&[tag])), 0)
    }

    #[test]
    fn submit_and_select_by_fee() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let bob = builder(b"bob").address();
        let low = alice.transfer(vec![outpoint(1)], vec![TxOutput::new(bob, 1)], 1);
        let high = alice.transfer(vec![outpoint(2)], vec![TxOutput::new(bob, 1)], 10);
        let mid = alice.transfer(vec![outpoint(3)], vec![TxOutput::new(bob, 1)], 5);
        pool.submit(low.clone()).unwrap();
        pool.submit(high.clone()).unwrap();
        pool.submit(mid.clone()).unwrap();

        let selected = pool.select(2);
        assert_eq!(selected[0].id(), high.id());
        assert_eq!(selected[1].id(), mid.id());
        assert_eq!(pool.len(), 3, "select does not remove");
    }

    #[test]
    fn equal_fee_is_fifo() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let first = alice.transfer(vec![outpoint(1)], vec![], 2);
        let second = alice.transfer(vec![outpoint(2)], vec![], 2);
        pool.submit(first.clone()).unwrap();
        pool.submit(second.clone()).unwrap();
        let selected = pool.select(10);
        assert_eq!(selected[0].id(), first.id());
        assert_eq!(selected[1].id(), second.id());
    }

    #[test]
    fn duplicate_submission_rejected() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let tx = alice.transfer(vec![outpoint(1)], vec![], 1);
        pool.submit(tx.clone()).unwrap();
        assert_eq!(pool.submit(tx.clone()).unwrap_err(), MempoolError::AlreadyPending(tx.id()));
    }

    #[test]
    fn conflicting_input_rejected() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let tx1 = alice.transfer(vec![outpoint(1)], vec![], 1);
        let tx2 = alice.transfer(vec![outpoint(1)], vec![], 9);
        pool.submit(tx1).unwrap();
        assert_eq!(pool.submit(tx2).unwrap_err(), MempoolError::ConflictingInput(outpoint(1)));
    }

    #[test]
    fn invalid_signature_rejected() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let mut tx = alice.transfer(vec![outpoint(1)], vec![], 1);
        tx.fee = 99; // breaks the signature
        assert!(matches!(pool.submit(tx).unwrap_err(), MempoolError::InvalidSignature(_)));
    }

    #[test]
    fn coinbase_rejected() {
        let mut pool = Mempool::new();
        let miner = Address::from(KeyPair::from_seed(b"miner").public());
        assert_eq!(
            pool.submit(coinbase(miner, 50, 0)).unwrap_err(),
            MempoolError::CoinbaseNotAllowed
        );
    }

    #[test]
    fn remove_frees_claimed_inputs() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let tx1 = alice.transfer(vec![outpoint(1)], vec![], 1);
        let id1 = pool.submit(tx1.clone()).unwrap();
        pool.remove(&id1).unwrap();
        assert!(pool.is_empty());
        // The input is free again.
        let tx2 = alice.transfer(vec![outpoint(1)], vec![], 1);
        assert!(pool.submit(tx2).is_ok());
    }

    #[test]
    fn remove_ids_clears_mined_transactions() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let tx1 = alice.transfer(vec![outpoint(1)], vec![], 1);
        let tx2 = alice.transfer(vec![outpoint(2)], vec![], 1);
        pool.submit(tx1.clone()).unwrap();
        pool.submit(tx2.clone()).unwrap();
        pool.remove_ids([&tx1.id()]);
        assert_eq!(pool.len(), 1);
        assert!(pool.contains(&tx2.id()));
    }

    // ------------------------------------------------------------------
    // Bounded capacity and fee-based eviction
    // ------------------------------------------------------------------

    #[test]
    fn full_pool_evicts_the_cheapest_pending_tx() {
        let mut pool = Mempool::with_capacity(2);
        let mut alice = builder(b"alice");
        let cheap = alice.transfer(vec![outpoint(1)], vec![], 1);
        let mid = alice.transfer(vec![outpoint(2)], vec![], 5);
        pool.submit(cheap.clone()).unwrap();
        pool.submit(mid.clone()).unwrap();

        let rich = alice.transfer(vec![outpoint(3)], vec![], 9);
        let (txid, evicted) = pool.submit_with_evictions(rich.clone()).unwrap();
        assert_eq!(txid, rich.id());
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].id(), cheap.id());
        assert!(!pool.contains(&cheap.id()));
        assert_eq!(pool.len(), 2);
        // The evicted transaction's input claim is released.
        let again = alice.transfer(vec![outpoint(1)], vec![], 9);
        pool.submit(again).unwrap();
    }

    #[test]
    fn full_pool_rejects_fees_at_or_below_the_floor() {
        let mut pool = Mempool::with_capacity(1);
        let mut alice = builder(b"alice");
        pool.submit(alice.transfer(vec![outpoint(1)], vec![], 5)).unwrap();
        assert_eq!(pool.fee_floor(), 6);

        // Equal fee does not displace (no churn among equal bids).
        let equal = alice.transfer(vec![outpoint(2)], vec![], 5);
        assert_eq!(
            pool.submit(equal).unwrap_err(),
            MempoolError::FeeTooLow { offered: 5, floor: 6 }
        );
        let low = alice.transfer(vec![outpoint(3)], vec![], 1);
        assert!(matches!(pool.submit(low).unwrap_err(), MempoolError::FeeTooLow { .. }));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn eviction_never_drops_a_deploy_with_a_pending_redemption() {
        // Regression: a pending contract call must protect the pending
        // deployment it targets — evicting the deployment would orphan the
        // swap redemption bound to its contract id.
        let mut pool = Mempool::with_capacity(2);
        let mut alice = builder(b"alice");
        let deploy = alice.deploy(vec![outpoint(1)], 10, vec![], b"ctor".to_vec(), 1);
        let redeem = alice.call(ContractId(deploy.id().0), b"redeem".to_vec(), 2);
        pool.submit(deploy.clone()).unwrap();
        pool.submit(redeem.clone()).unwrap();
        assert!(pool.is_protected(&deploy.id()));

        // The deploy is the cheapest tx, but the call depending on it makes
        // it untouchable — the call itself is the eviction candidate.
        let rich = alice.transfer(vec![outpoint(2)], vec![], 50);
        let (_, evicted) = pool.submit_with_evictions(rich).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].id(), redeem.id(), "the dependent call is evictable");
        assert!(pool.contains(&deploy.id()), "the protected deploy survives");
        // With the call gone the deploy loses its protection.
        assert!(!pool.is_protected(&deploy.id()));
    }

    #[test]
    fn eviction_never_drops_a_parent_of_a_pending_spend() {
        // UTXO flavour of the same invariant: a pending transaction spending
        // another pending transaction's output protects the parent.
        let mut pool = Mempool::with_capacity(2);
        let mut alice = builder(b"alice");
        let parent = alice.transfer(vec![outpoint(1)], vec![TxOutput::new(alice.address(), 5)], 1);
        let child = alice.transfer(vec![OutPoint::new(parent.id(), 0)], vec![], 3);
        pool.submit(parent.clone()).unwrap();
        pool.submit(child.clone()).unwrap();

        let rich = alice.transfer(vec![outpoint(2)], vec![], 50);
        let (_, evicted) = pool.submit_with_evictions(rich).unwrap();
        assert_eq!(evicted[0].id(), child.id());
        assert!(pool.contains(&parent.id()));
    }

    #[test]
    fn dependency_chain_evicts_only_its_unprotected_tail() {
        // parent ← child ← deploy: the inner links of a dependency chain
        // are protected; eviction can only take the tail.
        let mut alice = builder(b"alice");
        let parent = alice.transfer(vec![outpoint(1)], vec![TxOutput::new(alice.address(), 5)], 4);
        let child = alice.transfer(
            vec![OutPoint::new(parent.id(), 0)],
            vec![TxOutput::new(alice.address(), 5)],
            4,
        );
        let deploy = alice.deploy(vec![OutPoint::new(child.id(), 0)], 1, vec![], b"c".to_vec(), 4);
        let mut pool = Mempool::with_capacity(3);
        pool.submit(parent.clone()).unwrap();
        pool.submit(child.clone()).unwrap();
        pool.submit(deploy.clone()).unwrap();
        assert!(pool.is_protected(&parent.id()));
        assert!(pool.is_protected(&child.id()));
        assert!(!pool.is_protected(&deploy.id()));

        let rich = alice.transfer(vec![outpoint(9)], vec![], 50);
        let (_, evicted) = pool.submit_with_evictions(rich).unwrap();
        assert_eq!(evicted[0].id(), deploy.id(), "only the chain's tail is evictable");
        assert!(pool.contains(&parent.id()));
        assert!(pool.contains(&child.id()));
    }

    #[test]
    fn submission_never_evicts_its_own_pending_parent() {
        // Regression: the eviction victim used to be chosen before the
        // incoming transaction's parent references were counted, so a
        // high-fee child could evict the very parent it spends — orphaning
        // itself on arrival.
        let mut pool = Mempool::with_capacity(2);
        let mut alice = builder(b"alice");
        let parent = alice.transfer(vec![outpoint(1)], vec![TxOutput::new(alice.address(), 5)], 1);
        let unrelated = alice.transfer(vec![outpoint(2)], vec![], 2);
        pool.submit(parent.clone()).unwrap();
        pool.submit(unrelated.clone()).unwrap();

        // The parent (fee 1) is the cheapest tx, but the child spends it:
        // the unrelated tx (fee 2) must be the victim instead.
        let child = alice.transfer(vec![OutPoint::new(parent.id(), 0)], vec![], 10);
        let (_, evicted) = pool.submit_with_evictions(child.clone()).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].id(), unrelated.id());
        assert!(pool.contains(&parent.id()), "the child's parent survives");
        assert!(pool.contains(&child.id()));
        assert!(pool.is_protected(&parent.id()));
    }

    #[test]
    fn protection_survives_any_parent_child_admission_order() {
        // Regression: refcounts used to be computed against the parents
        // *pending at insert time* but decremented against the parents
        // pending at removal time — a call admitted before its deployment
        // could strip the deployment's protection when a sibling call was
        // later removed.
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let deploy = alice.deploy(vec![outpoint(1)], 10, vec![], b"ctor".to_vec(), 1);
        let call_a = alice.call(ContractId(deploy.id().0), b"redeem-a".to_vec(), 2);
        let call_b = alice.call(ContractId(deploy.id().0), b"redeem-b".to_vec(), 2);

        // Child first, then the parent, then a second child.
        pool.submit(call_a.clone()).unwrap();
        pool.submit(deploy.clone()).unwrap();
        pool.submit(call_b.clone()).unwrap();
        assert!(pool.is_protected(&deploy.id()), "parent admitted after its dependent");

        // Removing one call must not strip the protection the other still
        // provides.
        pool.remove(&call_a.id()).unwrap();
        assert!(pool.is_protected(&deploy.id()));
        pool.remove(&call_b.id()).unwrap();
        assert!(!pool.is_protected(&deploy.id()), "last dependent gone");
    }

    // ------------------------------------------------------------------
    // Replace-by-fee
    // ------------------------------------------------------------------

    #[test]
    fn replace_by_fee_swaps_in_the_higher_bid() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let original = alice.transfer(vec![outpoint(1)], vec![], 2);
        pool.submit(original.clone()).unwrap();

        // The replacement reuses the same input at a higher fee: allowed.
        let rebid = alice.transfer(vec![outpoint(1)], vec![], 5);
        let (new_id, replaced) = pool.replace(&original.id(), rebid.clone()).unwrap();
        assert_eq!(new_id, rebid.id());
        assert_eq!(replaced.id(), original.id());
        assert_eq!(pool.len(), 1);
        assert!(pool.contains(&rebid.id()));
        assert!(!pool.contains(&original.id()));
        assert_eq!(pool.fee_of(&new_id), Some(5));
    }

    #[test]
    fn replace_by_fee_rejects_non_increasing_fees() {
        // Regression: a replacement must pay *strictly* more — equal fees
        // would allow free queue-position churn.
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let original = alice.transfer(vec![outpoint(1)], vec![], 3);
        pool.submit(original.clone()).unwrap();

        let equal = alice.transfer(vec![outpoint(1)], vec![], 3);
        assert_eq!(
            pool.replace(&original.id(), equal).unwrap_err(),
            MempoolError::ReplacementFeeTooLow { offered: 3, current: 3 }
        );
        // A different submitter cannot out-bid someone else's transaction.
        let mut eve = builder(b"eve");
        let hijack = eve.transfer(vec![outpoint(9)], vec![], 9);
        assert_eq!(
            pool.replace(&original.id(), hijack).unwrap_err(),
            MempoolError::ReplacementSubmitterMismatch(original.id())
        );
        let lower = alice.transfer(vec![outpoint(1)], vec![], 1);
        assert_eq!(
            pool.replace(&original.id(), lower).unwrap_err(),
            MempoolError::ReplacementFeeTooLow { offered: 1, current: 3 }
        );
        // The original is untouched by the failed replacements.
        assert!(pool.contains(&original.id()));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn replace_rejects_missing_original_and_protected_parent() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let ghost = TxId(Hash256::digest(b"ghost"));
        let some_tx = alice.transfer(vec![outpoint(1)], vec![], 9);
        assert_eq!(pool.replace(&ghost, some_tx).unwrap_err(), MempoolError::NotPending(ghost));

        // A deployment with a pending call cannot be replaced out from
        // under its redemption.
        let deploy = alice.deploy(vec![outpoint(2)], 10, vec![], b"ctor".to_vec(), 1);
        let redeem = alice.call(ContractId(deploy.id().0), b"redeem".to_vec(), 2);
        pool.submit(deploy.clone()).unwrap();
        pool.submit(redeem).unwrap();
        let rebid = alice.deploy(vec![outpoint(2)], 10, vec![], b"ctor".to_vec(), 7);
        assert_eq!(
            pool.replace(&deploy.id(), rebid).unwrap_err(),
            MempoolError::ProtectedParent(deploy.id())
        );
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    #[test]
    fn queue_depth_and_fee_observability() {
        let mut pool = Mempool::with_capacity(3);
        assert_eq!(pool.fee_floor(), 0, "room left: anything gets in");
        assert_eq!(pool.min_fee(), None);

        let mut alice = builder(b"alice");
        let t1 = alice.transfer(vec![outpoint(1)], vec![], 2);
        let t2 = alice.transfer(vec![outpoint(2)], vec![], 8);
        let t3 = alice.transfer(vec![outpoint(3)], vec![], 5);
        pool.submit(t1.clone()).unwrap();
        pool.submit(t2.clone()).unwrap();
        pool.submit(t3.clone()).unwrap();

        assert_eq!(pool.len(), 3);
        assert_eq!(pool.capacity(), 3);
        assert_eq!(pool.min_fee(), Some(2));
        assert_eq!(pool.fee_floor(), 3, "must beat the cheapest pending tx");
        assert_eq!(pool.position(&t2.id()), Some(0));
        assert_eq!(pool.position(&t3.id()), Some(1));
        assert_eq!(pool.position(&t1.id()), Some(2));
        assert_eq!(pool.position(&TxId(Hash256::digest(b"ghost"))), None);
    }

    #[test]
    fn fee_at_rank_walks_priority_order() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        pool.submit(alice.transfer(vec![outpoint(1)], vec![], 2)).unwrap();
        pool.submit(alice.transfer(vec![outpoint(2)], vec![], 8)).unwrap();
        pool.submit(alice.transfer(vec![outpoint(3)], vec![], 5)).unwrap();
        assert_eq!(pool.fee_at_rank(0), Some(8));
        assert_eq!(pool.fee_at_rank(1), Some(5));
        assert_eq!(pool.fee_at_rank(2), Some(2));
        assert_eq!(pool.fee_at_rank(3), None, "queue is only three deep");
    }

    // ------------------------------------------------------------------
    // Dynamic base fee
    // ------------------------------------------------------------------

    #[test]
    fn base_fee_gates_admission_even_with_room() {
        let mut pool = Mempool::with_capacity(10);
        pool.set_base_fee(5);
        assert_eq!(pool.base_fee(), 5);
        assert_eq!(pool.fee_floor(), 5, "room left: the floor is the base fee");

        let mut alice = builder(b"alice");
        let cheap = alice.transfer(vec![outpoint(1)], vec![], 4);
        assert_eq!(
            pool.submit(cheap).unwrap_err(),
            MempoolError::FeeTooLow { offered: 4, floor: 5 }
        );
        assert!(pool.is_empty());
        // A bid at exactly the floor is admitted.
        pool.submit(alice.transfer(vec![outpoint(2)], vec![], 5)).unwrap();
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn fee_floor_is_max_of_base_fee_and_eviction_floor() {
        // Regression: `fee_floor` used to return 0 whenever the pool had
        // room, under-reporting the admission price once a base fee exists —
        // an adaptive bidder opening at the reported floor would be
        // immediately rejected.
        let mut pool = Mempool::with_capacity(2);
        let mut alice = builder(b"alice");
        pool.set_base_fee(3);
        pool.submit(alice.transfer(vec![outpoint(1)], vec![], 4)).unwrap();
        pool.submit(alice.transfer(vec![outpoint(2)], vec![], 6)).unwrap();
        // Full pool, eviction floor 5 > base fee 3.
        assert_eq!(pool.fee_floor(), 5);
        // Base fee above the eviction floor dominates.
        pool.set_base_fee(9);
        assert_eq!(pool.fee_floor(), 9);
        assert_eq!(
            pool.submit(alice.transfer(vec![outpoint(3)], vec![], 8)).unwrap_err(),
            MempoolError::FeeTooLow { offered: 8, floor: 9 }
        );
    }

    #[test]
    fn a_bid_at_the_reported_floor_is_always_admitted() {
        // The floor is an honest quote across every regime: room +
        // base fee, full + eviction floor, full + dominating base fee.
        for base_fee in [0u64, 2, 7, 11] {
            let mut pool = Mempool::with_capacity(2);
            pool.set_base_fee(base_fee);
            let mut alice = builder(b"alice");
            for round in 0..4u8 {
                let floor = pool.fee_floor();
                let tx = alice.transfer(vec![outpoint(round * 4 + 1)], vec![], floor);
                pool.submit(tx).unwrap_or_else(|e| {
                    panic!("base={base_fee} round={round}: floor bid rejected: {e}")
                });
            }
        }
    }

    #[test]
    fn replacement_must_also_clear_the_base_fee() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let original = alice.transfer(vec![outpoint(1)], vec![], 5);
        pool.submit(original.clone()).unwrap();
        // The base fee rises past the original's fee; a re-bid that beats
        // the original but not the base fee is still unmineable.
        pool.set_base_fee(8);
        let weak = alice.transfer(vec![outpoint(1)], vec![], 6);
        assert_eq!(
            pool.replace(&original.id(), weak).unwrap_err(),
            MempoolError::FeeTooLow { offered: 6, floor: 8 }
        );
        let strong = alice.transfer(vec![outpoint(1)], vec![], 8);
        pool.replace(&original.id(), strong.clone()).unwrap();
        assert!(pool.contains(&strong.id()));
    }
}
