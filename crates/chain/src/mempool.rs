//! The mempool: pending transactions waiting to be mined.
//!
//! End users "multicast their transaction messages to mining nodes" (Section
//! 2.1); the mempool is where those messages wait. Miners drain it in fee
//! order (highest first, FIFO within equal fees) up to the per-block
//! transaction budget derived from the chain's tps cap.

use crate::transaction::Transaction;
use crate::types::{OutPoint, TxId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Reasons a transaction is refused admission to the mempool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MempoolError {
    /// The transaction's signature is missing or invalid.
    InvalidSignature(TxId),
    /// The same transaction is already pending.
    AlreadyPending(TxId),
    /// Another pending transaction already spends one of the same inputs.
    ConflictingInput(OutPoint),
    /// Coinbase transactions cannot be submitted by users.
    CoinbaseNotAllowed,
}

impl std::fmt::Display for MempoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MempoolError::InvalidSignature(id) => write!(f, "invalid signature on {id}"),
            MempoolError::AlreadyPending(id) => write!(f, "{id} already pending"),
            MempoolError::ConflictingInput(op) => {
                write!(f, "input {op} already spent by a pending tx")
            }
            MempoolError::CoinbaseNotAllowed => {
                write!(f, "coinbase transactions cannot be submitted")
            }
        }
    }
}

impl std::error::Error for MempoolError {}

/// Priority key: higher fee first, then submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PriorityKey {
    /// Negative fee so that the natural ascending order of the BTreeSet
    /// yields the highest fee first.
    neg_fee: i128,
    seq: u64,
}

/// A pool of pending transactions.
#[derive(Debug, Default)]
pub struct Mempool {
    txs: HashMap<TxId, Transaction>,
    order: BTreeSet<(PriorityKey, TxId)>,
    keys: HashMap<TxId, PriorityKey>,
    /// Inputs claimed by pending transactions, to reject obvious
    /// double-spends before they reach a block.
    claimed_inputs: HashSet<OutPoint>,
    next_seq: u64,
}

impl Mempool {
    /// An empty mempool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Whether `txid` is pending.
    pub fn contains(&self, txid: &TxId) -> bool {
        self.txs.contains_key(txid)
    }

    /// Submit a transaction to the pool.
    pub fn submit(&mut self, tx: Transaction) -> Result<TxId, MempoolError> {
        if tx.is_coinbase() {
            return Err(MempoolError::CoinbaseNotAllowed);
        }
        let txid = tx.id();
        if !tx.signature_valid() {
            return Err(MempoolError::InvalidSignature(txid));
        }
        if self.txs.contains_key(&txid) {
            return Err(MempoolError::AlreadyPending(txid));
        }
        for input in tx.consumed_inputs() {
            if self.claimed_inputs.contains(input) {
                return Err(MempoolError::ConflictingInput(*input));
            }
        }
        for input in tx.consumed_inputs() {
            self.claimed_inputs.insert(*input);
        }
        let key = PriorityKey { neg_fee: -(tx.fee as i128), seq: self.next_seq };
        self.next_seq += 1;
        self.order.insert((key, txid));
        self.keys.insert(txid, key);
        self.txs.insert(txid, tx);
        Ok(txid)
    }

    /// The highest-priority `limit` transactions, without removing them.
    pub fn select(&self, limit: usize) -> Vec<Transaction> {
        self.order.iter().take(limit).map(|(_, txid)| self.txs[txid].clone()).collect()
    }

    /// Remove a transaction (because it was mined or became invalid).
    pub fn remove(&mut self, txid: &TxId) -> Option<Transaction> {
        let tx = self.txs.remove(txid)?;
        if let Some(key) = self.keys.remove(txid) {
            self.order.remove(&(key, *txid));
        }
        for input in tx.consumed_inputs() {
            self.claimed_inputs.remove(input);
        }
        Some(tx)
    }

    /// Remove every transaction whose id appears in `mined` (the single
    /// bulk-removal path; block acceptance already holds the ids, so there
    /// is no by-transaction variant to keep consistent with this one).
    pub fn remove_ids<'a, I: IntoIterator<Item = &'a TxId>>(&mut self, mined: I) {
        for txid in mined {
            self.remove(txid);
        }
    }

    /// Iterate all pending transactions in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.order.iter().map(move |(_, txid)| &self.txs[txid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{coinbase, TxBuilder, TxOutput};
    use crate::types::{Address, OutPoint, TxId};
    use ac3_crypto::{Hash256, KeyPair};

    fn builder(seed: &[u8]) -> TxBuilder {
        TxBuilder::new(KeyPair::from_seed(seed), 0)
    }

    fn outpoint(tag: u8) -> OutPoint {
        OutPoint::new(TxId(Hash256::digest(&[tag])), 0)
    }

    #[test]
    fn submit_and_select_by_fee() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let bob = builder(b"bob").address();
        let low = alice.transfer(vec![outpoint(1)], vec![TxOutput::new(bob, 1)], 1);
        let high = alice.transfer(vec![outpoint(2)], vec![TxOutput::new(bob, 1)], 10);
        let mid = alice.transfer(vec![outpoint(3)], vec![TxOutput::new(bob, 1)], 5);
        pool.submit(low.clone()).unwrap();
        pool.submit(high.clone()).unwrap();
        pool.submit(mid.clone()).unwrap();

        let selected = pool.select(2);
        assert_eq!(selected[0].id(), high.id());
        assert_eq!(selected[1].id(), mid.id());
        assert_eq!(pool.len(), 3, "select does not remove");
    }

    #[test]
    fn equal_fee_is_fifo() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let first = alice.transfer(vec![outpoint(1)], vec![], 2);
        let second = alice.transfer(vec![outpoint(2)], vec![], 2);
        pool.submit(first.clone()).unwrap();
        pool.submit(second.clone()).unwrap();
        let selected = pool.select(10);
        assert_eq!(selected[0].id(), first.id());
        assert_eq!(selected[1].id(), second.id());
    }

    #[test]
    fn duplicate_submission_rejected() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let tx = alice.transfer(vec![outpoint(1)], vec![], 1);
        pool.submit(tx.clone()).unwrap();
        assert_eq!(pool.submit(tx.clone()).unwrap_err(), MempoolError::AlreadyPending(tx.id()));
    }

    #[test]
    fn conflicting_input_rejected() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let tx1 = alice.transfer(vec![outpoint(1)], vec![], 1);
        let tx2 = alice.transfer(vec![outpoint(1)], vec![], 9);
        pool.submit(tx1).unwrap();
        assert_eq!(pool.submit(tx2).unwrap_err(), MempoolError::ConflictingInput(outpoint(1)));
    }

    #[test]
    fn invalid_signature_rejected() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let mut tx = alice.transfer(vec![outpoint(1)], vec![], 1);
        tx.fee = 99; // breaks the signature
        assert!(matches!(pool.submit(tx).unwrap_err(), MempoolError::InvalidSignature(_)));
    }

    #[test]
    fn coinbase_rejected() {
        let mut pool = Mempool::new();
        let miner = Address::from(KeyPair::from_seed(b"miner").public());
        assert_eq!(
            pool.submit(coinbase(miner, 50, 0)).unwrap_err(),
            MempoolError::CoinbaseNotAllowed
        );
    }

    #[test]
    fn remove_frees_claimed_inputs() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let tx1 = alice.transfer(vec![outpoint(1)], vec![], 1);
        let id1 = pool.submit(tx1.clone()).unwrap();
        pool.remove(&id1).unwrap();
        assert!(pool.is_empty());
        // The input is free again.
        let tx2 = alice.transfer(vec![outpoint(1)], vec![], 1);
        assert!(pool.submit(tx2).is_ok());
    }

    #[test]
    fn remove_ids_clears_mined_transactions() {
        let mut pool = Mempool::new();
        let mut alice = builder(b"alice");
        let tx1 = alice.transfer(vec![outpoint(1)], vec![], 1);
        let tx2 = alice.transfer(vec![outpoint(2)], vec![], 1);
        pool.submit(tx1.clone()).unwrap();
        pool.submit(tx2.clone()).unwrap();
        pool.remove_ids([&tx1.id()]);
        assert_eq!(pool.len(), 1);
        assert!(pool.contains(&tx2.id()));
    }
}
