//! Light clients and cross-chain header evidence (Section 4.3).
//!
//! The paper discusses three ways for the miners of a *validator* chain to
//! check what happened on a *validated* chain:
//!
//! 1. full replication (every miner keeps a copy of every chain),
//! 2. light nodes (every miner keeps the header chain of every other chain),
//! 3. the paper's proposal — push the validation logic into a smart contract
//!    of the validator chain that stores one *stable* header of the
//!    validated chain and later verifies a submitted *header-chain evidence*
//!    payload: all headers following the stable one, each linking to its
//!    parent and satisfying its proof-of-work, plus a Merkle inclusion proof
//!    of the transaction of interest in a block that is itself buried under
//!    `d` blocks.
//!
//! This module implements the header-chain machinery shared by options 2 and
//! 3: [`LightClient`] (an incrementally-updated header chain) and
//! [`HeaderEvidence`] (the self-contained evidence payload plus its stateless
//! verification routine). Option 1 needs no machinery — the validator simply
//! reads the other [`crate::chain::Blockchain`] — and the three strategies
//! are compared head-to-head in `ac3-core::evidence`.

use crate::block::BlockHeader;
use crate::types::{BlockHash, ChainId, TxId};
use ac3_crypto::MerkleProof;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced while verifying headers or evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LightClientError {
    /// A header does not link to the previous one.
    BrokenLink {
        /// Height at which the break occurred.
        height: u64,
    },
    /// A header's hash does not satisfy its proof-of-work target.
    InvalidWork(BlockHash),
    /// A header belongs to a different chain than expected.
    WrongChain {
        /// Expected chain id.
        expected: ChainId,
        /// Chain id found in the header.
        got: ChainId,
    },
    /// Header heights are not consecutive.
    NonConsecutiveHeight {
        /// Expected height.
        expected: u64,
        /// Height found.
        got: u64,
    },
    /// The evidence's Merkle proof does not check out.
    InvalidInclusionProof,
    /// The block containing the transaction is not buried deep enough.
    InsufficientDepth {
        /// Required burial depth.
        required: u64,
        /// Actual burial depth provided by the evidence.
        got: u64,
    },
    /// The evidence does not start at the expected stable header.
    WrongAnchor {
        /// The stable block hash the verifier stored.
        expected: BlockHash,
        /// The parent of the first evidence header.
        got: BlockHash,
    },
    /// The evidence contains no headers.
    EmptyEvidence,
}

impl fmt::Display for LightClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LightClientError::BrokenLink { height } => {
                write!(f, "broken header link at height {height}")
            }
            LightClientError::InvalidWork(h) => write!(f, "invalid proof of work in {h}"),
            LightClientError::WrongChain { expected, got } => {
                write!(f, "header from {got}, expected {expected}")
            }
            LightClientError::NonConsecutiveHeight { expected, got } => {
                write!(f, "non-consecutive height: expected {expected}, got {got}")
            }
            LightClientError::InvalidInclusionProof => write!(f, "invalid inclusion proof"),
            LightClientError::InsufficientDepth { required, got } => {
                write!(f, "insufficient burial depth: required {required}, got {got}")
            }
            LightClientError::WrongAnchor { expected, got } => {
                write!(f, "evidence anchored at {got}, expected {expected}")
            }
            LightClientError::EmptyEvidence => write!(f, "empty evidence"),
        }
    }
}

impl std::error::Error for LightClientError {}

/// Check the internal consistency of a run of headers: same chain, heights
/// consecutive, each links to the previous, and each satisfies its own
/// proof-of-work target. The first header is checked against
/// `(anchor_hash, anchor_height)`.
pub fn verify_header_chain(
    chain: ChainId,
    anchor_hash: BlockHash,
    anchor_height: u64,
    headers: &[BlockHeader],
) -> Result<(), LightClientError> {
    let mut prev_hash = anchor_hash;
    let mut prev_height = anchor_height;
    for header in headers {
        if header.chain != chain {
            return Err(LightClientError::WrongChain { expected: chain, got: header.chain });
        }
        if header.parent != prev_hash {
            return Err(LightClientError::BrokenLink { height: header.height });
        }
        if header.height != prev_height + 1 {
            return Err(LightClientError::NonConsecutiveHeight {
                expected: prev_height + 1,
                got: header.height,
            });
        }
        // Hash once per header: the same digest answers the proof-of-work
        // check and becomes the next link target (evidence verification is
        // the dominant cost of the in-contract validation strategy, so the
        // former hash-twice-per-header was measurable).
        let hash = header.hash();
        if !hash.0.meets_target(&header.target) {
            return Err(LightClientError::InvalidWork(hash));
        }
        prev_hash = hash;
        prev_height = header.height;
    }
    Ok(())
}

/// A light node (the "download only the block headers" node of Section 4.3,
/// option 2): it tracks the header chain of a remote blockchain and answers
/// depth/stability queries without ever seeing full blocks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LightClient {
    chain: ChainId,
    headers: Vec<BlockHeader>,
}

impl LightClient {
    /// Initialise from a trusted genesis header (light clients bootstrap
    /// from a checkpoint).
    pub fn new(genesis: BlockHeader) -> Result<Self, LightClientError> {
        if !genesis.meets_target() {
            return Err(LightClientError::InvalidWork(genesis.hash()));
        }
        Ok(LightClient { chain: genesis.chain, headers: vec![genesis] })
    }

    /// The chain this client follows.
    pub fn chain(&self) -> ChainId {
        self.chain
    }

    /// The current best header.
    pub fn tip(&self) -> &BlockHeader {
        self.headers.last().expect("light client always has a tip")
    }

    /// Current height.
    pub fn height(&self) -> u64 {
        self.tip().height
    }

    /// Number of headers tracked.
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// Whether no headers beyond genesis are tracked.
    pub fn is_empty(&self) -> bool {
        self.headers.len() <= 1
    }

    /// Append a run of headers extending the current tip.
    pub fn extend(&mut self, headers: &[BlockHeader]) -> Result<(), LightClientError> {
        verify_header_chain(self.chain, self.tip().hash(), self.height(), headers)?;
        self.headers.extend_from_slice(headers);
        Ok(())
    }

    /// The header at `height`, if tracked.
    pub fn header_at(&self, height: u64) -> Option<&BlockHeader> {
        let base = self.headers.first()?.height;
        self.headers.get(height.checked_sub(base)? as usize)
    }

    /// Burial depth of the block at `height` (0 = tip).
    pub fn depth_of_height(&self, height: u64) -> Option<u64> {
        (height <= self.height()).then(|| self.height() - height)
    }

    /// Verify that `tx_bytes` (a transaction's canonical bytes) is included
    /// in the tracked block at `height` via `proof`, and that this block is
    /// buried under at least `min_depth` blocks.
    pub fn verify_inclusion(
        &self,
        height: u64,
        proof: &MerkleProof,
        tx_bytes: &[u8],
        min_depth: u64,
    ) -> Result<(), LightClientError> {
        let header = self
            .header_at(height)
            .ok_or(LightClientError::InsufficientDepth { required: min_depth, got: 0 })?;
        if !proof.verify(&header.tx_root, tx_bytes) {
            return Err(LightClientError::InvalidInclusionProof);
        }
        let depth = self.depth_of_height(height).unwrap_or(0);
        if depth < min_depth {
            return Err(LightClientError::InsufficientDepth { required: min_depth, got: depth });
        }
        Ok(())
    }
}

/// Self-contained cross-chain evidence (Section 4.3, option 3): everything a
/// validator smart contract needs to convince itself that a transaction
/// happened on the validated chain, relative to a stable anchor header the
/// contract already stores.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderEvidence {
    /// The chain the evidence is about.
    pub chain: ChainId,
    /// Headers following the anchor, oldest first, up to the current tip of
    /// the validated chain.
    pub headers: Vec<BlockHeader>,
    /// Height (within `headers`) of the block containing the transaction.
    pub tx_height: u64,
    /// The transaction's id (for bookkeeping / duplicate detection).
    pub txid: TxId,
    /// The transaction's canonical bytes (the Merkle leaf).
    pub tx_bytes: Vec<u8>,
    /// Merkle inclusion proof of `tx_bytes` in the block at `tx_height`.
    pub proof: MerkleProof,
}

impl HeaderEvidence {
    /// Verify the evidence against a stored stable anchor.
    ///
    /// Checks, in the order the paper lists them: (1) the submitted headers
    /// extend the anchor with valid links and proof-of-work, (2) the
    /// transaction of interest is included in one of those blocks, and
    /// (3) that block is itself buried under at least `min_depth` of the
    /// submitted headers.
    pub fn verify(
        &self,
        anchor_hash: BlockHash,
        anchor_height: u64,
        min_depth: u64,
    ) -> Result<(), LightClientError> {
        if self.headers.is_empty() {
            return Err(LightClientError::EmptyEvidence);
        }
        if self.headers[0].parent != anchor_hash {
            return Err(LightClientError::WrongAnchor {
                expected: anchor_hash,
                got: self.headers[0].parent,
            });
        }
        verify_header_chain(self.chain, anchor_hash, anchor_height, &self.headers)?;

        let first_height = self.headers[0].height;
        let idx = self
            .tx_height
            .checked_sub(first_height)
            .ok_or(LightClientError::InvalidInclusionProof)? as usize;
        let header = self.headers.get(idx).ok_or(LightClientError::InvalidInclusionProof)?;
        if !self.proof.verify(&header.tx_root, &self.tx_bytes) {
            return Err(LightClientError::InvalidInclusionProof);
        }
        let tip_height = self.headers.last().expect("non-empty").height;
        let depth = tip_height - self.tx_height;
        if depth < min_depth {
            return Err(LightClientError::InsufficientDepth { required: min_depth, got: depth });
        }
        Ok(())
    }

    /// Size of the evidence in headers — the quantity the paper's
    /// light-client cost discussion is about.
    pub fn header_count(&self) -> usize {
        self.headers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Blockchain;
    use crate::contracts::EchoVm;
    use crate::params::ChainParams;
    use crate::transaction::TxBuilder;
    use crate::types::{Address, Amount};
    use ac3_crypto::KeyPair;
    use std::sync::Arc;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    /// A chain with a funded Alice, a payment to Bob mined at height 1 and
    /// `extra` empty blocks on top.
    fn chain_with_payment(extra: u64) -> (Blockchain, TxId, Vec<u8>) {
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let miner = addr(b"miner");
        let mut chain = Blockchain::new(
            ChainId(0),
            ChainParams::test("validated"),
            Arc::new(EchoVm),
            &[(alice, 100 as Amount)],
        );
        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) = chain.plan_payment(&alice, &bob, 10, 1).unwrap();
        let tx = builder.transfer(inputs, outputs, 1);
        let txid = tx.id();
        let tx_bytes = tx.canonical_bytes();
        chain.submit(tx).unwrap();
        chain.mine_block(miner, 1_000).unwrap();
        for i in 0..extra {
            chain.mine_block(miner, 2_000 + i).unwrap();
        }
        (chain, txid, tx_bytes)
    }

    fn evidence_for(
        chain: &Blockchain,
        txid: TxId,
        tx_bytes: Vec<u8>,
        anchor: BlockHash,
    ) -> HeaderEvidence {
        let headers = chain.headers_since(&anchor).unwrap();
        let inclusion = chain.tx_inclusion(&txid).unwrap();
        HeaderEvidence {
            chain: chain.id(),
            headers,
            tx_height: inclusion.header.height,
            txid,
            tx_bytes,
            proof: inclusion.proof,
        }
    }

    #[test]
    fn light_client_follows_headers() {
        let (chain, _txid, _bytes) = chain_with_payment(5);
        let genesis = chain.store().canonical_block_at_height(0).unwrap();
        let genesis_header = chain.store().header(&genesis).unwrap();
        let mut lc = LightClient::new(genesis_header).unwrap();
        let headers = chain.headers_since(&genesis).unwrap();
        lc.extend(&headers).unwrap();
        assert_eq!(lc.height(), chain.height());
        assert_eq!(lc.header_at(3).unwrap().height, 3);
        assert_eq!(lc.depth_of_height(1), Some(chain.height() - 1));
    }

    #[test]
    fn light_client_rejects_broken_links() {
        let (chain, _txid, _bytes) = chain_with_payment(3);
        let genesis = chain.store().canonical_block_at_height(0).unwrap();
        let genesis_header = chain.store().header(&genesis).unwrap();
        let mut lc = LightClient::new(genesis_header).unwrap();
        let mut headers = chain.headers_since(&genesis).unwrap();
        headers.remove(1); // gap
        assert!(matches!(lc.extend(&headers).unwrap_err(), LightClientError::BrokenLink { .. }));
    }

    #[test]
    fn light_client_spv_inclusion() {
        let (chain, txid, bytes) = chain_with_payment(6);
        let genesis = chain.store().canonical_block_at_height(0).unwrap();
        let genesis_header = chain.store().header(&genesis).unwrap();
        let mut lc = LightClient::new(genesis_header).unwrap();
        lc.extend(&chain.headers_since(&genesis).unwrap()).unwrap();
        let inclusion = chain.tx_inclusion(&txid).unwrap();
        lc.verify_inclusion(inclusion.header.height, &inclusion.proof, &bytes, 6).unwrap();
        // Demanding more depth than available fails.
        assert!(matches!(
            lc.verify_inclusion(inclusion.header.height, &inclusion.proof, &bytes, 7),
            Err(LightClientError::InsufficientDepth { .. })
        ));
    }

    #[test]
    fn header_evidence_verifies_end_to_end() {
        let (chain, txid, bytes) = chain_with_payment(6);
        let genesis = chain.store().canonical_block_at_height(0).unwrap();
        let ev = evidence_for(&chain, txid, bytes, genesis);
        ev.verify(genesis, 0, 6).unwrap();
        assert_eq!(ev.header_count(), 7);
    }

    #[test]
    fn header_evidence_rejects_wrong_anchor() {
        let (chain, txid, bytes) = chain_with_payment(6);
        let genesis = chain.store().canonical_block_at_height(0).unwrap();
        let ev = evidence_for(&chain, txid, bytes, genesis);
        let bogus_anchor = BlockHash(ac3_crypto::Hash256::digest(b"other"));
        assert!(matches!(
            ev.verify(bogus_anchor, 0, 6).unwrap_err(),
            LightClientError::WrongAnchor { .. }
        ));
    }

    #[test]
    fn header_evidence_rejects_shallow_burial() {
        let (chain, txid, bytes) = chain_with_payment(2);
        let genesis = chain.store().canonical_block_at_height(0).unwrap();
        let ev = evidence_for(&chain, txid, bytes, genesis);
        assert!(matches!(
            ev.verify(genesis, 0, 6).unwrap_err(),
            LightClientError::InsufficientDepth { required: 6, got: 2 }
        ));
    }

    #[test]
    fn header_evidence_rejects_tampered_tx() {
        let (chain, txid, mut bytes) = chain_with_payment(6);
        let genesis = chain.store().canonical_block_at_height(0).unwrap();
        bytes.push(0xff);
        let ev = evidence_for(&chain, txid, bytes, genesis);
        assert_eq!(ev.verify(genesis, 0, 6).unwrap_err(), LightClientError::InvalidInclusionProof);
    }

    #[test]
    fn header_evidence_rejects_foreign_chain_headers() {
        let (chain, txid, bytes) = chain_with_payment(6);
        let genesis = chain.store().canonical_block_at_height(0).unwrap();
        let mut ev = evidence_for(&chain, txid, bytes, genesis);
        ev.chain = ChainId(42);
        assert!(matches!(
            ev.verify(genesis, 0, 6).unwrap_err(),
            LightClientError::WrongChain { .. }
        ));
    }

    #[test]
    fn empty_evidence_rejected() {
        let (chain, txid, bytes) = chain_with_payment(1);
        let genesis = chain.store().canonical_block_at_height(0).unwrap();
        let mut ev = evidence_for(&chain, txid, bytes, genesis);
        ev.headers.clear();
        assert_eq!(ev.verify(genesis, 0, 0).unwrap_err(), LightClientError::EmptyEvidence);
    }
}
