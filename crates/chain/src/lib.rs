//! # ac3-chain
//!
//! A permissionless blockchain simulator: the substrate the AC3WN
//! reproduction runs its protocols on (see DESIGN.md §1 for the substitution
//! rationale — this stands in for Bitcoin, Ethereum, Litecoin, Bitcoin Cash
//! and the witness network of the paper).
//!
//! The simulator follows the paper's own system model (Section 2):
//!
//! * a **storage layer** of miners maintaining a tamper-proof chain of
//!   blocks ([`block`], [`store`]), reaching agreement via (simulated)
//!   proof-of-work mining and the longest-chain rule, and validating that
//!   end users only spend assets they own and never twice ([`utxo`]);
//! * an **application layer** of end users who submit digitally signed
//!   transactions ([`transaction`]) and smart-contract deploy/call messages
//!   ([`contracts`]) through a client library (the [`chain::Blockchain`]
//!   API);
//! * **light clients and cross-chain evidence** ([`light`]) implementing the
//!   Section 4.3 header-relay validation used by AC3WN.
//!
//! Each chain is configured by [`params::ChainParams`] — block interval,
//! throughput cap (Table 1), fee schedule (Section 6.2) and stable depth
//! `d` — so the evaluation harness can instantiate the exact mixes of chains
//! the paper analyses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod chain;
pub mod contracts;
pub mod light;
pub mod mempool;
pub mod params;
pub mod storage;
pub mod store;
pub mod transaction;
pub mod types;
pub mod utxo;

pub use block::{Block, BlockHeader};
pub use chain::{Blockchain, ChainError, ChainState, TxInclusion};
pub use contracts::{
    CallContext, CallOutcome, ContractRecord, ContractVm, DeployContext, EchoVm, NullVm, Payout,
    VmError, VmHandle,
};
pub use light::{HeaderEvidence, LightClient, LightClientError};
pub use mempool::{Mempool, MempoolError};
pub use params::{BaseFeeSchedule, ChainParams, SealPolicy};
pub use storage::{
    BufferPool, MemoryStore, PagedStore, PolicyKind, ReplacementPolicy, Store, StoreConfig,
    StoreStats,
};
pub use store::{BlockStore, StoreError};
pub use transaction::{coinbase, Transaction, TxBuilder, TxKind, TxOutput};
pub use types::{
    Address, Amount, BlockHash, BlockHeight, ChainId, ContractId, OutPoint, Timestamp, TxId,
};
pub use utxo::{UtxoError, UtxoSet};
