//! A buffer pool of fixed-size pages over a scratch file.
//!
//! The pool owns the backing [`File`] and a bounded set of in-memory
//! frames. Callers address *pages* (fixed-size byte ranges of the file,
//! page `p` at byte offset `p × page_size`) and interact through classic
//! pin/unpin semantics:
//!
//! 1. [`BufferPool::pin`] makes the page resident (a hit if it already
//!    is; otherwise a miss that may evict an unpinned victim, writing it
//!    back first if dirty) and protects it from eviction;
//! 2. the caller reads or writes the frame bytes via
//!    [`BufferPool::frame`] / [`BufferPool::frame_mut`];
//! 3. [`BufferPool::unpin`] releases the frame, marking it dirty if it
//!    was written. Dirty frames reach the file on eviction or
//!    [`BufferPool::flush`], never synchronously on write.
//!
//! Which victim an eviction picks is delegated to the configured
//! [`ReplacementPolicy`](super::replacement::ReplacementPolicy). Hit, miss,
//! eviction and write-back counts are tracked for
//! [`crate::storage::StoreStats`].
//!
//! The file is a spill area, not a database: it is created in the
//! system temp directory and deleted eagerly (unlinked at creation on
//! Unix, removed on drop elsewhere), so a crashed process leaks nothing.

use super::replacement::{PolicyKind, ReplacementPolicy};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes scratch files of concurrent stores within one process.
static SCRATCH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Raw hit/miss/eviction counters of one buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pins satisfied from a resident frame.
    pub hits: u64,
    /// Pins that had to read the page from the file (or zero-fill a fresh
    /// page).
    pub misses: u64,
    /// Resident pages pushed out to make room.
    pub evictions: u64,
    /// Dirty pages written back to the file (on eviction or flush).
    pub write_backs: u64,
}

/// One resident page.
#[derive(Debug)]
struct Frame {
    page: u64,
    data: Vec<u8>,
    dirty: bool,
    pins: u32,
}

/// A bounded cache of file pages with pluggable replacement. See the
/// module docs for the pin/unpin protocol.
#[derive(Debug)]
pub struct BufferPool {
    file: File,
    /// Path of the scratch file, kept only where eager unlinking is
    /// unavailable so `Drop` can remove it.
    scratch_path: Option<PathBuf>,
    page_size: usize,
    capacity: usize,
    frames: Vec<Frame>,
    /// page id → frame index, for resident pages.
    resident: std::collections::HashMap<u64, usize>,
    policy: Box<dyn ReplacementPolicy>,
    /// Number of pages allocated so far (file-logical, not resident).
    allocated: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool of `capacity` frames of `page_size` bytes over a fresh
    /// scratch file, using `policy` for eviction.
    pub fn new(capacity: usize, page_size: usize, policy: PolicyKind) -> io::Result<Self> {
        assert!(capacity >= 2, "a buffer pool needs at least 2 frames");
        assert!(page_size >= 64, "pages below 64 bytes are degenerate");
        let path = std::env::temp_dir().join(format!(
            "ac3-block-store-{}-{}.pages",
            std::process::id(),
            SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let file = OpenOptions::new().read(true).write(true).create_new(true).open(&path)?;
        // On Unix an open file survives unlinking, so the scratch space
        // cannot leak even if the process is killed. Elsewhere, Drop
        // removes it.
        let scratch_path = if cfg!(unix) {
            let _ = std::fs::remove_file(&path);
            None
        } else {
            Some(path)
        };
        Ok(BufferPool {
            file,
            scratch_path,
            page_size,
            capacity,
            frames: Vec::with_capacity(capacity),
            resident: std::collections::HashMap::new(),
            policy: policy.build(capacity),
            allocated: 0,
            stats: PoolStats::default(),
        })
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages allocated so far (resident or spilled).
    pub fn allocated_pages(&self) -> u64 {
        self.allocated
    }

    /// The replacement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Counters snapshot.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Allocate a fresh page id. The page materializes in the file only
    /// when its frame is first written back.
    pub fn allocate(&mut self) -> u64 {
        let page = self.allocated;
        self.allocated += 1;
        page
    }

    /// Make `page` resident and pin it, returning its frame index.
    ///
    /// Errors only on real file IO failures (or when every frame is
    /// pinned, which the store's access discipline — at most one page
    /// pinned at a time — rules out for any pool of ≥ 2 frames).
    pub fn pin(&mut self, page: u64) -> io::Result<usize> {
        assert!(page < self.allocated, "pin of unallocated page {page}");
        if let Some(&idx) = self.resident.get(&page) {
            self.stats.hits += 1;
            self.frames[idx].pins += 1;
            self.policy.on_access(idx);
            return Ok(idx);
        }
        self.stats.misses += 1;
        let idx = if self.frames.len() < self.capacity {
            // Free frame available: no eviction needed.
            self.frames.push(Frame { page, data: vec![0; self.page_size], dirty: false, pins: 0 });
            self.frames.len() - 1
        } else {
            let pinned: Vec<bool> = self.frames.iter().map(|f| f.pins > 0).collect();
            let victim = self
                .policy
                .evict(&pinned)
                .ok_or_else(|| io::Error::other("buffer pool exhausted: all frames pinned"))?;
            self.evict_frame(victim)?;
            victim
        };
        self.read_page(page, idx)?;
        self.frames[idx].page = page;
        self.frames[idx].dirty = false;
        self.frames[idx].pins = 1;
        self.resident.insert(page, idx);
        self.policy.on_admit(idx);
        Ok(idx)
    }

    /// Release one pin on `frame`; `dirty` records whether the caller
    /// wrote to it.
    pub fn unpin(&mut self, frame: usize, dirty: bool) {
        let f = &mut self.frames[frame];
        assert!(f.pins > 0, "unpin of unpinned frame {frame}");
        f.pins -= 1;
        f.dirty |= dirty;
    }

    /// The bytes of a pinned frame.
    pub fn frame(&self, frame: usize) -> &[u8] {
        debug_assert!(self.frames[frame].pins > 0, "frame access without pin");
        &self.frames[frame].data
    }

    /// The bytes of a pinned frame, writable. The caller must pass
    /// `dirty = true` to the matching [`BufferPool::unpin`].
    pub fn frame_mut(&mut self, frame: usize) -> &mut [u8] {
        debug_assert!(self.frames[frame].pins > 0, "frame access without pin");
        &mut self.frames[frame].data
    }

    /// Write every dirty frame back to the file.
    pub fn flush(&mut self) -> io::Result<()> {
        for idx in 0..self.frames.len() {
            if self.frames[idx].dirty {
                self.write_back(idx)?;
            }
        }
        Ok(())
    }

    /// Push the (unpinned) occupant of `frame` out, writing it back first
    /// if dirty.
    fn evict_frame(&mut self, frame: usize) -> io::Result<()> {
        debug_assert_eq!(self.frames[frame].pins, 0, "evicting a pinned frame");
        if self.frames[frame].dirty {
            self.write_back(frame)?;
        }
        self.resident.remove(&self.frames[frame].page);
        self.stats.evictions += 1;
        Ok(())
    }

    fn write_back(&mut self, frame: usize) -> io::Result<()> {
        let offset = self.frames[frame].page * self.page_size as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(&self.frames[frame].data)?;
        self.frames[frame].dirty = false;
        self.stats.write_backs += 1;
        Ok(())
    }

    /// Fill `frame` with the file contents of `page`. Short reads
    /// zero-fill: a page allocated but never written back has no bytes in
    /// the file yet, and its content is by definition all-zero scratch.
    fn read_page(&mut self, page: u64, frame: usize) -> io::Result<()> {
        let offset = page * self.page_size as u64;
        self.file.seek(SeekFrom::Start(offset))?;
        let data = &mut self.frames[frame].data;
        data.fill(0);
        let mut filled = 0;
        while filled < data.len() {
            match self.file.read(&mut data[filled..]) {
                Ok(0) => break, // EOF: rest stays zero
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        if let Some(path) = self.scratch_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(frames, 128, PolicyKind::Lru).expect("scratch file")
    }

    fn write_page(pool: &mut BufferPool, page: u64, byte: u8) {
        let idx = pool.pin(page).unwrap();
        pool.frame_mut(idx).fill(byte);
        pool.unpin(idx, true);
    }

    fn read_first_byte(pool: &mut BufferPool, page: u64) -> u8 {
        let idx = pool.pin(page).unwrap();
        let b = pool.frame(idx)[0];
        pool.unpin(idx, false);
        b
    }

    #[test]
    fn pages_survive_eviction_round_trips() {
        let mut pool = pool(2);
        for p in 0..6 {
            let page = pool.allocate();
            write_page(&mut pool, page, p as u8 + 1);
        }
        // Only 2 of 6 pages are resident; the rest were written back.
        assert!(pool.stats().evictions >= 4);
        assert!(pool.stats().write_backs >= 4);
        for p in 0..6u64 {
            assert_eq!(read_first_byte(&mut pool, p), p as u8 + 1, "page {p}");
        }
    }

    #[test]
    fn hits_do_not_touch_the_file() {
        let mut pool = pool(4);
        let page = pool.allocate();
        write_page(&mut pool, page, 7);
        let before = pool.stats();
        for _ in 0..10 {
            assert_eq!(read_first_byte(&mut pool, page), 7);
        }
        let after = pool.stats();
        assert_eq!(after.hits, before.hits + 10);
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.write_backs, before.write_backs);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let mut pool = pool(2);
        let hot = pool.allocate();
        let idx = pool.pin(hot).unwrap();
        pool.frame_mut(idx).fill(9);
        // Churn through other pages; the pinned frame must survive.
        for _ in 0..5 {
            let p = pool.allocate();
            write_page(&mut pool, p, 1);
        }
        assert_eq!(pool.frame(idx)[0], 9);
        pool.unpin(idx, true);
        assert_eq!(read_first_byte(&mut pool, hot), 9);
    }

    #[test]
    fn all_frames_pinned_errors() {
        let mut pool = pool(2);
        let a = pool.allocate();
        let b = pool.allocate();
        let c = pool.allocate();
        let _ia = pool.pin(a).unwrap();
        let _ib = pool.pin(b).unwrap();
        assert!(pool.pin(c).is_err());
    }

    #[test]
    fn flush_writes_all_dirty_frames() {
        let mut pool = pool(4);
        for p in 0..3 {
            let page = pool.allocate();
            write_page(&mut pool, page, p as u8 + 1);
        }
        assert_eq!(pool.stats().write_backs, 0, "write-back is lazy");
        pool.flush().unwrap();
        assert_eq!(pool.stats().write_backs, 3);
        pool.flush().unwrap();
        assert_eq!(pool.stats().write_backs, 3, "clean frames are not rewritten");
    }
}
