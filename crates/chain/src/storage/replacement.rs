//! Pluggable buffer-pool replacement policies.
//!
//! A [`ReplacementPolicy`] decides which resident frame a
//! [`crate::storage::BufferPool`] evicts when it needs room for a page that
//! is not resident. Three classic policies are provided:
//!
//! * [`LruPolicy`] — evict the least-recently-used frame (exact, via a
//!   monotonic access stamp per frame);
//! * [`ClockPolicy`] — the second-chance approximation of LRU: a hand
//!   sweeps the frames, clearing reference bits, and evicts the first frame
//!   found with its bit already clear;
//! * [`SievePolicy`] — SIEVE (NSDI '24): a FIFO queue with lazy promotion.
//!   Hits only set a visited bit; the eviction hand walks from the queue
//!   tail towards the head, clearing visited bits, and evicts the first
//!   unvisited frame. The hand does **not** reset after an eviction, which
//!   is what makes SIEVE scan-resistant at FIFO cost.
//!
//! All three are deterministic: given the same sequence of
//! `on_admit`/`on_access` calls and the same pin states they evict the same
//! frames. This matters for the committed hit-rate baselines
//! (`BENCH_buffer_pool.json`) — but note that *simulation results* never
//! depend on the policy at all: eviction only changes which page reads hit
//! the file, never the bytes a read returns.

use std::fmt;

/// Chooses eviction victims for a buffer pool of a fixed number of frames.
///
/// The pool calls [`ReplacementPolicy::on_admit`] when a page is loaded
/// into a frame, [`ReplacementPolicy::on_access`] on every hit, and
/// [`ReplacementPolicy::evict`] when it needs a victim. Pinned frames
/// (`pinned[frame] == true`) must never be chosen.
pub trait ReplacementPolicy: fmt::Debug + Send + Sync {
    /// A page was loaded into `frame` (after any previous occupant was
    /// evicted, i.e. the frame is "new" to the policy).
    fn on_admit(&mut self, frame: usize);
    /// The page in `frame` was accessed while resident (a hit).
    fn on_access(&mut self, frame: usize);
    /// Choose an unpinned victim frame and forget it, or `None` if every
    /// frame is pinned.
    fn evict(&mut self, pinned: &[bool]) -> Option<usize>;
    /// Short lowercase policy name ("lru", "clock", "sieve").
    fn name(&self) -> &'static str;
}

/// Which replacement policy a paged store's buffer pool uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Exact least-recently-used.
    #[default]
    Lru,
    /// Clock (second chance).
    Clock,
    /// SIEVE (FIFO with lazy promotion).
    Sieve,
}

impl PolicyKind {
    /// Instantiate the policy for a pool of `frames` frames.
    pub fn build(self, frames: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new(frames)),
            PolicyKind::Clock => Box::new(ClockPolicy::new(frames)),
            PolicyKind::Sieve => Box::new(SievePolicy::new(frames)),
        }
    }

    /// The policy's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Clock => "clock",
            PolicyKind::Sieve => "sieve",
        }
    }

    /// Parse a lowercase policy name (as accepted by `AC3_STORE_POLICY`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lru" => Some(PolicyKind::Lru),
            "clock" => Some(PolicyKind::Clock),
            "sieve" => Some(PolicyKind::Sieve),
            _ => None,
        }
    }

    /// All policies, for benchmark sweeps.
    pub fn all() -> [PolicyKind; 3] {
        [PolicyKind::Lru, PolicyKind::Clock, PolicyKind::Sieve]
    }
}

/// Exact LRU: each frame carries the monotonic stamp of its last access;
/// the eviction victim is the unpinned frame with the smallest stamp.
/// Eviction is O(frames) — pools are small (tens to hundreds of frames),
/// so an ordered structure would cost more than it saves.
#[derive(Debug)]
pub struct LruPolicy {
    clock: u64,
    last_used: Vec<u64>,
}

impl LruPolicy {
    /// A policy for `frames` frames.
    pub fn new(frames: usize) -> Self {
        LruPolicy { clock: 0, last_used: vec![0; frames] }
    }

    fn touch(&mut self, frame: usize) {
        self.clock += 1;
        self.last_used[frame] = self.clock;
    }
}

impl ReplacementPolicy for LruPolicy {
    fn on_admit(&mut self, frame: usize) {
        self.touch(frame);
    }

    fn on_access(&mut self, frame: usize) {
        self.touch(frame);
    }

    fn evict(&mut self, pinned: &[bool]) -> Option<usize> {
        self.last_used
            .iter()
            .enumerate()
            .filter(|(f, _)| !pinned[*f])
            .min_by_key(|(_, stamp)| **stamp)
            .map(|(f, _)| f)
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// Clock (second chance): a reference bit per frame and a sweeping hand.
/// A hit sets the bit; the hand clears set bits as it passes and evicts
/// the first unpinned frame whose bit is already clear.
#[derive(Debug)]
pub struct ClockPolicy {
    referenced: Vec<bool>,
    hand: usize,
}

impl ClockPolicy {
    /// A policy for `frames` frames.
    pub fn new(frames: usize) -> Self {
        ClockPolicy { referenced: vec![false; frames], hand: 0 }
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn on_admit(&mut self, frame: usize) {
        self.referenced[frame] = true;
    }

    fn on_access(&mut self, frame: usize) {
        self.referenced[frame] = true;
    }

    fn evict(&mut self, pinned: &[bool]) -> Option<usize> {
        let n = self.referenced.len();
        if (0..n).all(|f| pinned[f]) {
            return None;
        }
        // At most two sweeps: the first clears reference bits, the second
        // must then find a clear unpinned frame (one exists).
        for _ in 0..2 * n {
            let f = self.hand;
            self.hand = (self.hand + 1) % n;
            if pinned[f] {
                continue;
            }
            if self.referenced[f] {
                self.referenced[f] = false;
            } else {
                return Some(f);
            }
        }
        unreachable!("an unpinned frame exists, so two sweeps find a victim")
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

/// SIEVE: frames live in a FIFO queue (newest at the head). A hit sets a
/// visited bit without moving the frame. The eviction hand starts at the
/// tail and walks towards the head, clearing visited bits; the first
/// unvisited, unpinned frame is evicted and the hand stays where it was —
/// it does not reset — so one-shot scans are drained from the tail while
/// repeatedly-hit frames survive near the head.
#[derive(Debug)]
pub struct SievePolicy {
    /// Queue of frames, index 0 = head (newest admission).
    queue: Vec<usize>,
    visited: Vec<bool>,
    /// Queue *position* the hand examines next, or `None` for "tail".
    hand: Option<usize>,
}

impl SievePolicy {
    /// A policy for `frames` frames.
    pub fn new(frames: usize) -> Self {
        SievePolicy { queue: Vec::with_capacity(frames), visited: vec![false; frames], hand: None }
    }
}

impl ReplacementPolicy for SievePolicy {
    fn on_admit(&mut self, frame: usize) {
        // The pool only re-admits a frame after evicting it, so it is not
        // in the queue. New objects enter at the head, unvisited.
        debug_assert!(!self.queue.contains(&frame));
        self.queue.insert(0, frame);
        self.visited[frame] = false;
        // Head insertion shifts every queue position up by one.
        if let Some(pos) = self.hand.as_mut() {
            *pos += 1;
        }
    }

    fn on_access(&mut self, frame: usize) {
        self.visited[frame] = true;
    }

    fn evict(&mut self, pinned: &[bool]) -> Option<usize> {
        if self.queue.iter().all(|f| pinned[*f]) {
            return None;
        }
        let mut pos = match self.hand {
            Some(p) if p < self.queue.len() => p,
            _ => self.queue.len() - 1,
        };
        // Two passes over the queue suffice: the first clears visited
        // bits, the second must find an unvisited unpinned frame.
        for _ in 0..2 * self.queue.len() {
            let frame = self.queue[pos];
            if pinned[frame] {
                // Skip without clearing: a pinned page keeps its history.
            } else if self.visited[frame] {
                self.visited[frame] = false;
            } else {
                self.queue.remove(pos);
                self.hand = if pos == 0 { None } else { Some(pos - 1) };
                return Some(frame);
            }
            pos = if pos == 0 { self.queue.len() - 1 } else { pos - 1 };
        }
        unreachable!("an unpinned frame exists, so two passes find a victim")
    }

    fn name(&self) -> &'static str {
        "sieve"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_pins(n: usize) -> Vec<bool> {
        vec![false; n]
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = LruPolicy::new(3);
        for f in 0..3 {
            lru.on_admit(f);
        }
        lru.on_access(0); // order now 1 < 2 < 0
        assert_eq!(lru.evict(&no_pins(3)), Some(1));
        lru.on_admit(1);
        lru.on_access(2);
        assert_eq!(lru.evict(&no_pins(3)), Some(0));
    }

    #[test]
    fn lru_skips_pinned_frames() {
        let mut lru = LruPolicy::new(2);
        lru.on_admit(0);
        lru.on_admit(1);
        assert_eq!(lru.evict(&[true, false]), Some(1));
        assert_eq!(lru.evict(&[true, true]), None);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut clock = ClockPolicy::new(3);
        for f in 0..3 {
            clock.on_admit(f);
        }
        // All referenced: the first sweep clears 0,1,2 then evicts 0.
        assert_eq!(clock.evict(&no_pins(3)), Some(0));
        clock.on_admit(0);
        clock.on_access(1); // re-reference 1
                            // Hand is at 1: clears 1, evicts 2.
        assert_eq!(clock.evict(&no_pins(3)), Some(2));
    }

    #[test]
    fn clock_all_pinned_returns_none() {
        let mut clock = ClockPolicy::new(2);
        clock.on_admit(0);
        clock.on_admit(1);
        assert_eq!(clock.evict(&[true, true]), None);
    }

    #[test]
    fn sieve_evicts_unvisited_from_the_tail() {
        let mut sieve = SievePolicy::new(3);
        for f in 0..3 {
            sieve.on_admit(f); // queue head→tail: 2, 1, 0
        }
        sieve.on_access(0); // tail is visited
                            // Hand starts at the tail: clears 0's bit, then evicts 1.
        assert_eq!(sieve.evict(&no_pins(3)), Some(1));
        // The hand does not reset: it continues towards the head and takes
        // the unvisited 2; the once-visited 0 outlives it.
        assert_eq!(sieve.evict(&no_pins(3)), Some(2));
        assert_eq!(sieve.evict(&no_pins(3)), Some(0));
    }

    #[test]
    fn sieve_hand_survives_admissions() {
        let mut sieve = SievePolicy::new(4);
        for f in 0..4 {
            sieve.on_admit(f);
        }
        sieve.on_access(0);
        assert_eq!(sieve.evict(&no_pins(4)), Some(1));
        sieve.on_admit(1); // new head; the hand position must shift with it
                           // The hand still points between the old frames — it picks up at
                           // frame 2, not at the re-admitted head and not back at the tail
                           // (where the cleared 0 now sits unvisited).
        assert_eq!(sieve.evict(&no_pins(4)), Some(2));
        assert_eq!(sieve.evict(&no_pins(4)), Some(3));
    }

    #[test]
    fn sieve_all_pinned_returns_none() {
        let mut sieve = SievePolicy::new(2);
        sieve.on_admit(0);
        sieve.on_admit(1);
        assert_eq!(sieve.evict(&[true, true]), None);
    }

    #[test]
    fn policy_kind_parses_names() {
        for kind in PolicyKind::all() {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build(4).name(), kind.name());
        }
        assert_eq!(PolicyKind::parse("mru"), None);
    }
}
