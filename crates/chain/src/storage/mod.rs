//! Pluggable block-body storage: the `Store` trait and its backends.
//!
//! [`crate::store::BlockStore`] keeps the fork tree *metadata* — headers,
//! chain lengths, children, tips, the canonical height index and the
//! canonical transaction index — in memory, always; those structures are
//! what fork choice and the hot accept path touch on every block, and they
//! are small. Block *bodies* (the transaction lists) are the bulk, and they
//! go through the [`Store`] trait:
//!
//! * [`MemoryStore`] — the original in-memory map. Zero behavior change,
//!   zero IO; the default backend.
//! * [`PagedStore`] — serialized bodies in fixed-size pages of a scratch
//!   file behind a [`BufferPool`] with a pluggable
//!   [`ReplacementPolicy`] (LRU, Clock, SIEVE), pin/unpin semantics and
//!   lazy dirty-page write-back. Simulated history is no longer capped by
//!   RAM, and the storage hot path becomes measurable and optimizable
//!   (`buffer_pool` criterion bench).
//!
//! Both backends return identical bytes for every lookup, so *every*
//! simulation result — fork choice, state derivation, fingerprint suites —
//! is bitwise identical across backends, pool sizes and policies. The
//! cross-backend differential suite (`crates/chain/tests/store_backends.rs`)
//! and the parallel-determinism CI matrix pin this down.
//!
//! Backend selection: explicit via [`StoreConfig`]
//! ([`crate::chain::Blockchain::with_store_config`]), or process-wide via
//! environment variables read by [`StoreConfig::from_env`]:
//! `AC3_STORE_BACKEND=memory|paged`, `AC3_STORE_POOL_PAGES=<frames>`,
//! `AC3_STORE_POLICY=lru|clock|sieve`.

mod paged;
mod pool;
mod replacement;

pub use paged::PagedStore;
pub use pool::{BufferPool, PoolStats};
pub use replacement::{ClockPolicy, LruPolicy, PolicyKind, ReplacementPolicy, SievePolicy};

use crate::block::Block;
use crate::types::BlockHash;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Arc;

/// Default page size of the paged backend, in bytes.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Default buffer-pool size of the paged backend, in pages.
pub const DEFAULT_POOL_PAGES: usize = 64;

/// Block-body storage: where the transaction payload of each block lives.
///
/// Implementations must behave as an immutable hash → body map: after
/// `insert_body(h, b)`, `body(&h)` returns a block equal to `b`, forever.
/// How (and where) the bytes are kept is the backend's business.
pub trait Store: fmt::Debug + Send + Sync {
    /// Store the body of block `hash`. Idempotent: re-inserting a stored
    /// hash is a no-op. Errors surface real IO failures of file-backed
    /// backends.
    fn insert_body(&mut self, hash: BlockHash, block: Block) -> io::Result<()>;
    /// Fetch the body of block `hash`, or `None` if it was never stored.
    fn body(&self, hash: &BlockHash) -> Option<Arc<Block>>;
    /// Whether a body is stored for `hash`.
    fn contains_body(&self, hash: &BlockHash) -> bool;
    /// Number of stored bodies.
    fn body_count(&self) -> usize;
    /// Push any buffered dirty state to the backing file (no-op for
    /// memory backends).
    fn flush(&mut self) -> io::Result<()>;
    /// A snapshot of the backend's counters.
    fn stats(&self) -> StoreStats;
}

/// Counters and shape of a block-body store, for observability, tests and
/// the `buffer_pool` bench. Memory backends report only `backend`,
/// `blocks` and `bytes_stored`; the paged backend fills everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Backend name: `"memory"` or `"paged"`.
    pub backend: &'static str,
    /// Stored block bodies.
    pub blocks: u64,
    /// Total serialized body bytes (memory backends estimate with the
    /// in-memory footprint proxy of 0 — they never serialize).
    pub bytes_stored: u64,
    /// Pages allocated in the backing file.
    pub pages: u64,
    /// Buffer-pool capacity in pages (0 for memory).
    pub pool_pages: usize,
    /// Page size in bytes (0 for memory).
    pub page_size: usize,
    /// Buffer-pool hits.
    pub hits: u64,
    /// Buffer-pool misses (file reads).
    pub misses: u64,
    /// Buffer-pool evictions.
    pub evictions: u64,
    /// Dirty pages written back to the file.
    pub write_backs: u64,
}

impl StoreStats {
    /// Hit fraction of all pins, in [0, 1]; 1.0 when nothing was pinned.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Default for StoreStats {
    fn default() -> Self {
        StoreStats {
            backend: "memory",
            blocks: 0,
            bytes_stored: 0,
            pages: 0,
            pool_pages: 0,
            page_size: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            write_backs: 0,
        }
    }
}

/// Which [`Store`] backend a chain's block store uses, and how the paged
/// backend is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreConfig {
    /// The in-memory map (default).
    #[default]
    Memory,
    /// Fixed-size pages in a scratch file behind a buffer pool.
    Paged {
        /// Buffer-pool capacity in pages (min 2).
        pool_pages: usize,
        /// Page size in bytes.
        page_size: usize,
        /// Replacement policy.
        policy: PolicyKind,
    },
}

impl StoreConfig {
    /// The paged backend with default page size and pool.
    pub fn paged() -> Self {
        StoreConfig::Paged {
            pool_pages: DEFAULT_POOL_PAGES,
            page_size: DEFAULT_PAGE_SIZE,
            policy: PolicyKind::Lru,
        }
    }

    /// Read the process-wide backend selection from the environment:
    /// `AC3_STORE_BACKEND` (`memory`, the default, or `paged`),
    /// `AC3_STORE_POOL_PAGES`, `AC3_STORE_POLICY`. Unknown or malformed
    /// values fall back to the defaults — a simulation must not change
    /// behavior because of a typo, and results are backend-independent
    /// anyway.
    pub fn from_env() -> Self {
        match std::env::var("AC3_STORE_BACKEND").as_deref() {
            Ok("paged") => {
                let pool_pages = std::env::var("AC3_STORE_POOL_PAGES")
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(DEFAULT_POOL_PAGES)
                    .max(2);
                let policy = std::env::var("AC3_STORE_POLICY")
                    .ok()
                    .and_then(|v| PolicyKind::parse(&v))
                    .unwrap_or_default();
                StoreConfig::Paged { pool_pages, page_size: DEFAULT_PAGE_SIZE, policy }
            }
            _ => StoreConfig::Memory,
        }
    }

    /// Instantiate the backend.
    pub fn build(self) -> Box<dyn Store> {
        match self {
            StoreConfig::Memory => Box::new(MemoryStore::default()),
            StoreConfig::Paged { pool_pages, page_size, policy } => {
                Box::new(PagedStore::new(pool_pages, page_size, policy))
            }
        }
    }
}

/// The original in-memory body map: every block lives on the heap behind
/// an [`Arc`], so lookups are a map probe and an `Arc` clone. No IO, no
/// eviction, no counters.
#[derive(Debug, Default)]
pub struct MemoryStore {
    bodies: HashMap<BlockHash, Arc<Block>>,
}

impl Store for MemoryStore {
    fn insert_body(&mut self, hash: BlockHash, block: Block) -> io::Result<()> {
        self.bodies.entry(hash).or_insert_with(|| Arc::new(block));
        Ok(())
    }

    fn body(&self, hash: &BlockHash) -> Option<Arc<Block>> {
        self.bodies.get(hash).cloned()
    }

    fn contains_body(&self, hash: &BlockHash) -> bool {
        self.bodies.contains_key(hash)
    }

    fn body_count(&self) -> usize {
        self.bodies.len()
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        StoreStats { blocks: self.bodies.len() as u64, ..StoreStats::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_from_env_defaults_to_memory() {
        // The test environment does not set AC3_STORE_BACKEND globally for
        // unit tests; both unset and garbage must yield Memory.
        if std::env::var("AC3_STORE_BACKEND").is_err() {
            assert_eq!(StoreConfig::from_env(), StoreConfig::Memory);
        }
    }

    #[test]
    fn memory_store_is_an_arc_map() {
        let mut store = MemoryStore::default();
        let block = Block {
            header: crate::block::BlockHeader {
                chain: crate::types::ChainId(0),
                parent: BlockHash::GENESIS_PARENT,
                tx_root: Block::compute_tx_root(&[]),
                height: 0,
                timestamp: 0,
                target: ac3_crypto::Hash256::MAX,
                nonce: 0,
            },
            transactions: vec![],
        };
        let hash = block.hash();
        store.insert_body(hash, block.clone()).unwrap();
        let a = store.body(&hash).unwrap();
        let b = store.body(&hash).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "lookups share one allocation");
        assert_eq!(*a, block);
        assert_eq!(store.stats().backend, "memory");
        assert_eq!(store.stats().blocks, 1);
    }
}
