//! The paged, file-backed block-body store.
//!
//! Block bodies are serialized (canonical JSON via the workspace serde) and
//! appended into fixed-size pages managed by a [`BufferPool`]; an in-memory
//! directory maps each block hash to its `(first page, offset, length)`
//! slot. Small blocks pack into the shared append tail page; a body larger
//! than one page spans a dedicated run of consecutive pages ("jumbo"),
//! read back chunk by chunk with only one page pinned at a time — so any
//! pool of ≥ 2 frames can serve any block.
//!
//! Reads deserialize the stored bytes on every call: the pool caches
//! *pages*, not decoded blocks, exactly like a database buffer manager.
//! A hit therefore costs a deserialization; a miss additionally costs the
//! file read (and possibly a dirty write-back). Both are visible in
//! [`StoreStats`] and swept by the `buffer_pool` criterion bench.
//!
//! Determinism: serialization round-trips bit-exactly (asserted in tests
//! and by the cross-backend differential suite), and eviction only decides
//! *where* bytes are read from, never what they contain — so every
//! simulation result is identical to the in-memory backend at any pool
//! size and replacement policy.

use super::pool::BufferPool;
use super::replacement::PolicyKind;
use super::{Store, StoreStats};
use crate::block::Block;
use crate::types::BlockHash;
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

/// Where a serialized block body lives in the page file.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// First (or only) page of the body.
    first_page: u64,
    /// Byte offset within the first page (0 for jumbo bodies).
    offset: u32,
    /// Serialized length in bytes.
    len: u32,
}

#[derive(Debug)]
struct Inner {
    pool: BufferPool,
    directory: HashMap<BlockHash, Slot>,
    /// The shared append target for bodies that fit in one page:
    /// `(page, bytes used)`. `None` until the first small body arrives.
    tail: Option<(u64, usize)>,
    /// Total serialized bytes stored (the "chain size" the pool is
    /// measured against).
    bytes_stored: u64,
}

/// A block-body store spilling serialized blocks to fixed-size pages in a
/// scratch file behind a [`BufferPool`]. See the module docs.
#[derive(Debug)]
pub struct PagedStore {
    inner: Mutex<Inner>,
}

impl PagedStore {
    /// A paged store with `pool_pages` buffer frames of `page_size` bytes
    /// and the given replacement policy.
    ///
    /// # Panics
    /// If the scratch file cannot be created — storage is load-bearing;
    /// there is nothing sensible to degrade to.
    pub fn new(pool_pages: usize, page_size: usize, policy: PolicyKind) -> Self {
        let pool = BufferPool::new(pool_pages, page_size, policy)
            .expect("paged block store: cannot create scratch file");
        PagedStore {
            inner: Mutex::new(Inner {
                pool,
                directory: HashMap::new(),
                tail: None,
                bytes_stored: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("paged store lock poisoned")
    }
}

impl Inner {
    /// Copy `bytes` into pages, returning the slot. Single-page bodies
    /// append to the shared tail; larger ones get a dedicated page run.
    fn write_body(&mut self, bytes: &[u8]) -> io::Result<Slot> {
        let page_size = self.pool.page_size();
        if bytes.len() <= page_size {
            let (page, offset) = match self.tail {
                Some((page, used)) if used + bytes.len() <= page_size => (page, used),
                _ => (self.pool.allocate(), 0),
            };
            let frame = self.pool.pin(page)?;
            self.pool.frame_mut(frame)[offset..offset + bytes.len()].copy_from_slice(bytes);
            self.pool.unpin(frame, true);
            self.tail = Some((page, offset + bytes.len()));
            return Ok(Slot { first_page: page, offset: offset as u32, len: bytes.len() as u32 });
        }
        // Jumbo body: a dedicated run of consecutive pages, one pinned at
        // a time. The shared tail is left as-is for the next small body.
        let first_page = self.pool.allocate();
        for (i, chunk) in bytes.chunks(page_size).enumerate() {
            let page = if i == 0 { first_page } else { self.pool.allocate() };
            debug_assert_eq!(page, first_page + i as u64, "jumbo pages are consecutive");
            let frame = self.pool.pin(page)?;
            self.pool.frame_mut(frame)[..chunk.len()].copy_from_slice(chunk);
            self.pool.unpin(frame, true);
        }
        Ok(Slot { first_page, offset: 0, len: bytes.len() as u32 })
    }

    /// Read a slot's bytes back out of the pool.
    fn read_body(&mut self, slot: Slot) -> io::Result<Vec<u8>> {
        let page_size = self.pool.page_size();
        let len = slot.len as usize;
        let mut bytes = Vec::with_capacity(len);
        if slot.offset as usize + len <= page_size {
            let frame = self.pool.pin(slot.first_page)?;
            bytes.extend_from_slice(
                &self.pool.frame(frame)[slot.offset as usize..slot.offset as usize + len],
            );
            self.pool.unpin(frame, false);
        } else {
            let pages = len.div_ceil(page_size) as u64;
            for i in 0..pages {
                let take = (len - bytes.len()).min(page_size);
                let frame = self.pool.pin(slot.first_page + i)?;
                bytes.extend_from_slice(&self.pool.frame(frame)[..take]);
                self.pool.unpin(frame, false);
            }
        }
        Ok(bytes)
    }
}

impl Store for PagedStore {
    fn insert_body(&mut self, hash: BlockHash, block: Block) -> io::Result<()> {
        let bytes = serde_json::to_vec(&block)
            .map_err(|e| io::Error::other(format!("block serialization failed: {e}")))?;
        let mut inner = self.lock();
        if inner.directory.contains_key(&hash) {
            return Ok(()); // idempotent: bodies are immutable
        }
        let slot = inner.write_body(&bytes)?;
        inner.bytes_stored += bytes.len() as u64;
        inner.directory.insert(hash, slot);
        Ok(())
    }

    fn body(&self, hash: &BlockHash) -> Option<Arc<Block>> {
        let mut inner = self.lock();
        let slot = *inner.directory.get(hash)?;
        // IO failures here are unrecoverable scratch-file corruption;
        // returning None would silently report a stored block as missing
        // and corrupt the simulation, so fail loudly instead.
        let bytes = inner.read_body(slot).expect("paged block store: page read failed");
        drop(inner); // deserialization needs no pool state
        let block: Block =
            serde_json::from_slice(&bytes).expect("paged block store: stored body undecodable");
        debug_assert_eq!(block.hash(), *hash, "stored body hashes to its directory key");
        Some(Arc::new(block))
    }

    fn contains_body(&self, hash: &BlockHash) -> bool {
        self.lock().directory.contains_key(hash)
    }

    fn body_count(&self) -> usize {
        self.lock().directory.len()
    }

    fn flush(&mut self) -> io::Result<()> {
        self.lock().pool.flush()
    }

    fn stats(&self) -> StoreStats {
        let inner = self.lock();
        let pool = inner.pool.stats();
        StoreStats {
            backend: "paged",
            blocks: inner.directory.len() as u64,
            bytes_stored: inner.bytes_stored,
            pages: inner.pool.allocated_pages(),
            pool_pages: inner.pool.capacity(),
            page_size: inner.pool.page_size(),
            hits: pool.hits,
            misses: pool.misses,
            evictions: pool.evictions,
            write_backs: pool.write_backs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockHeader;
    use crate::transaction::coinbase;
    use crate::types::{Address, ChainId};
    use ac3_crypto::{Hash256, KeyPair};

    fn block_with_txs(height: u64, txs: usize) -> Block {
        let miner = Address::from(KeyPair::from_seed(b"paged-miner").public());
        let transactions: Vec<_> =
            (0..txs as u64).map(|i| coinbase(miner, 50 + i, height * 1_000 + i)).collect();
        let header = BlockHeader {
            chain: ChainId(0),
            parent: BlockHash(Hash256::digest(&height.to_be_bytes())),
            tx_root: Block::compute_tx_root(&transactions),
            height,
            timestamp: height,
            target: Hash256::MAX,
            nonce: height,
        };
        Block { header, transactions }
    }

    #[test]
    fn bodies_round_trip_bit_exactly() {
        let mut store = PagedStore::new(4, 4096, PolicyKind::Lru);
        let block = block_with_txs(1, 3);
        let hash = block.hash();
        store.insert_body(hash, block.clone()).unwrap();
        let back = store.body(&hash).expect("stored");
        assert_eq!(*back, block);
        assert_eq!(back.hash(), hash);
    }

    #[test]
    fn eviction_pressure_loses_no_blocks() {
        // 4 frames × 512 bytes ≈ 2 KiB of pool; store far more than that.
        let mut store = PagedStore::new(4, 512, PolicyKind::Clock);
        let blocks: Vec<Block> = (0..64).map(|h| block_with_txs(h, 2)).collect();
        for b in &blocks {
            store.insert_body(b.hash(), b.clone()).unwrap();
        }
        let stats = store.stats();
        assert!(stats.evictions > 0, "pool must have spilled: {stats:?}");
        assert!(stats.bytes_stored > 4 * 512, "chain larger than the pool");
        for b in &blocks {
            assert_eq!(*store.body(&b.hash()).expect("resident or spilled"), *b);
        }
    }

    #[test]
    fn jumbo_bodies_span_pages() {
        // A block whose serialization dwarfs the 512-byte page.
        let mut store = PagedStore::new(4, 512, PolicyKind::Sieve);
        let jumbo = block_with_txs(7, 40);
        let small = block_with_txs(8, 1);
        store.insert_body(jumbo.hash(), jumbo.clone()).unwrap();
        store.insert_body(small.hash(), small.clone()).unwrap();
        let stats = store.stats();
        assert!(stats.pages > 3, "jumbo body must occupy a page run: {stats:?}");
        assert_eq!(*store.body(&jumbo.hash()).unwrap(), jumbo);
        assert_eq!(*store.body(&small.hash()).unwrap(), small);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut store = PagedStore::new(4, 4096, PolicyKind::Lru);
        let block = block_with_txs(3, 2);
        store.insert_body(block.hash(), block.clone()).unwrap();
        let bytes = store.stats().bytes_stored;
        store.insert_body(block.hash(), block.clone()).unwrap();
        assert_eq!(store.stats().bytes_stored, bytes, "no duplicate slot");
        assert_eq!(store.body_count(), 1);
    }

    #[test]
    fn hit_and_miss_counters_move() {
        // One body fits one page, and 8 bodies overflow the 2-frame pool.
        let mut store = PagedStore::new(2, 1024, PolicyKind::Lru);
        let blocks: Vec<Block> = (0..8).map(|h| block_with_txs(h, 1)).collect();
        for b in &blocks {
            store.insert_body(b.hash(), b.clone()).unwrap();
        }
        let before = store.stats();
        // Re-reading the oldest block must miss (its pages were evicted).
        store.body(&blocks[0].hash()).unwrap();
        let after = store.stats();
        assert!(after.misses > before.misses, "evicted read must miss: {after:?}");
        // Reading it again immediately must hit without further misses.
        store.body(&blocks[0].hash()).unwrap();
        let again = store.stats();
        assert!(again.hits > after.hits, "resident read must hit: {again:?}");
        assert_eq!(again.misses, after.misses);
    }
}
