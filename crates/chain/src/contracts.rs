//! The smart-contract execution abstraction.
//!
//! The paper treats a smart contract as "an object in programming languages"
//! with a state, a constructor and functions that may alter the state
//! (Section 2.3). The chain itself is agnostic to what the contracts do: it
//! only needs to (a) execute deployment and call messages when mining a
//! block, (b) persist the resulting state along the canonical chain, (c)
//! release locked assets when a contract orders a payout and (d) expose the
//! state (and the depth of its last change) to evidence queries.
//!
//! The concrete contract semantics — the paper's Algorithms 1 through 4 —
//! live in the `ac3-contracts` crate, which implements [`ContractVm`].

use crate::types::{Address, Amount, BlockHeight, ChainId, ContractId, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by a contract VM. The chain turns a VM error into a
/// rejected transaction (the contract state is left untouched), mirroring
/// how a failed `requires(...)` leaves a Solidity contract unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The deploy/call payload could not be decoded.
    MalformedPayload(String),
    /// The target contract does not exist.
    UnknownContract(ContractId),
    /// A `requires(...)` precondition failed (e.g. wrong state, bad secret).
    RequirementFailed(String),
    /// The caller is not authorised for this function.
    Unauthorized(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::MalformedPayload(m) => write!(f, "malformed contract payload: {m}"),
            VmError::UnknownContract(id) => write!(f, "unknown contract {id}"),
            VmError::RequirementFailed(m) => write!(f, "requirement failed: {m}"),
            VmError::Unauthorized(m) => write!(f, "unauthorized: {m}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Context available to a contract constructor (the implicit deployment
/// message parameters of Section 2.3: `msg.sender`, `msg.value`, plus where
/// and when the deployment is happening).
#[derive(Debug, Clone, Copy)]
pub struct DeployContext {
    /// The chain executing the deployment.
    pub chain: ChainId,
    /// `msg.sender`: the deploying end-user.
    pub sender: Address,
    /// `msg.value`: the asset value locked in the contract.
    pub value: Amount,
    /// The id assigned to the new contract.
    pub contract: ContractId,
    /// Height of the block containing the deployment.
    pub height: BlockHeight,
    /// Simulated time of the block.
    pub now: Timestamp,
}

/// Context available to a contract function call.
#[derive(Debug, Clone, Copy)]
pub struct CallContext {
    /// The chain executing the call.
    pub chain: ChainId,
    /// `msg.sender`: the calling end-user.
    pub sender: Address,
    /// The contract being called.
    pub contract: ContractId,
    /// Height of the block containing the call.
    pub height: BlockHeight,
    /// Simulated time of the block.
    pub now: Timestamp,
}

/// A transfer of locked assets out of a contract, ordered by a contract
/// function (e.g. `transfer a to r` in Algorithm 1's redeem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Payout {
    /// The recipient.
    pub to: Address,
    /// The amount released from the contract's locked value.
    pub amount: Amount,
}

/// The result of a successful contract call.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CallOutcome {
    /// The new serialized contract state.
    pub new_state: Vec<u8>,
    /// Payouts to materialise as new unspent outputs.
    pub payouts: Vec<Payout>,
    /// Human-readable events, recorded for metrics and debugging.
    pub events: Vec<String>,
}

/// A contract virtual machine: decodes payloads and executes the contract
/// logic. Implementations must be deterministic — every simulated miner
/// replays the same messages and must reach the same state.
pub trait ContractVm: Send + Sync {
    /// Execute a deployment, returning the initial serialized state.
    fn deploy(&self, ctx: &DeployContext, payload: &[u8]) -> Result<Vec<u8>, VmError>;

    /// Execute a function call against the current serialized state.
    fn call(&self, ctx: &CallContext, state: &[u8], payload: &[u8])
        -> Result<CallOutcome, VmError>;

    /// A short, human-readable tag describing the state (e.g. "P",
    /// "RDauth", "RFauth", "RD", "RF"). Used by cross-chain state queries
    /// and by the metrics layer. Returns `None` if the state bytes are not
    /// recognised.
    fn state_tag(&self, state: &[u8]) -> Option<String>;
}

/// A shared, dynamically-dispatched VM handle as stored by [`crate::chain::Blockchain`].
pub type VmHandle = Arc<dyn ContractVm>;

/// The record a chain keeps for every deployed contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractRecord {
    /// The contract id (deployment transaction id).
    pub id: ContractId,
    /// The deploying end-user.
    pub owner: Address,
    /// Serialized current state.
    pub state: Vec<u8>,
    /// Asset value still locked in the contract.
    pub locked_value: Amount,
    /// Height of the block that deployed the contract.
    pub deployed_at: BlockHeight,
    /// Height of the block that last changed the contract state.
    pub last_update: BlockHeight,
}

/// A trivial VM that rejects every message; the default for chains that do
/// not host contracts (useful in UTXO-only tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullVm;

impl ContractVm for NullVm {
    fn deploy(&self, _ctx: &DeployContext, _payload: &[u8]) -> Result<Vec<u8>, VmError> {
        Err(VmError::MalformedPayload("this chain does not support contracts".to_string()))
    }

    fn call(
        &self,
        _ctx: &CallContext,
        _state: &[u8],
        _payload: &[u8],
    ) -> Result<CallOutcome, VmError> {
        Err(VmError::MalformedPayload("this chain does not support contracts".to_string()))
    }

    fn state_tag(&self, _state: &[u8]) -> Option<String> {
        None
    }
}

/// A minimal key/value VM used by chain-level unit tests: the deploy payload
/// is the initial value, a call payload replaces the value, and a call
/// payload beginning with `b"payout:"` releases the full locked amount to
/// the caller. Kept here (rather than in test code) so other crates'
/// tests can reuse it.
#[derive(Debug, Clone, Copy, Default)]
pub struct EchoVm;

impl ContractVm for EchoVm {
    fn deploy(&self, _ctx: &DeployContext, payload: &[u8]) -> Result<Vec<u8>, VmError> {
        Ok(payload.to_vec())
    }

    fn call(
        &self,
        ctx: &CallContext,
        state: &[u8],
        payload: &[u8],
    ) -> Result<CallOutcome, VmError> {
        if state == b"spent" {
            return Err(VmError::RequirementFailed("contract already spent".to_string()));
        }
        if let Some(rest) = payload.strip_prefix(b"payout:") {
            let amount: Amount = String::from_utf8_lossy(rest)
                .parse()
                .map_err(|_| VmError::MalformedPayload("bad payout amount".to_string()))?;
            return Ok(CallOutcome {
                new_state: b"spent".to_vec(),
                payouts: vec![Payout { to: ctx.sender, amount }],
                events: vec![format!("payout {amount} to {}", ctx.sender)],
            });
        }
        Ok(CallOutcome { new_state: payload.to_vec(), payouts: vec![], events: vec![] })
    }

    fn state_tag(&self, state: &[u8]) -> Option<String> {
        Some(String::from_utf8_lossy(state).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_crypto::{Hash256, KeyPair};

    fn ctx_pair() -> (DeployContext, CallContext) {
        let sender = Address::from(KeyPair::from_seed(b"alice").public());
        let contract = ContractId(Hash256::digest(b"sc"));
        (
            DeployContext { chain: ChainId(0), sender, value: 10, contract, height: 1, now: 0 },
            CallContext { chain: ChainId(0), sender, contract, height: 2, now: 1000 },
        )
    }

    #[test]
    fn null_vm_rejects_everything() {
        let (d, c) = ctx_pair();
        let vm = NullVm;
        assert!(vm.deploy(&d, b"x").is_err());
        assert!(vm.call(&c, b"x", b"y").is_err());
        assert_eq!(vm.state_tag(b"x"), None);
    }

    #[test]
    fn echo_vm_round_trips_state() {
        let (d, c) = ctx_pair();
        let vm = EchoVm;
        let state = vm.deploy(&d, b"initial").unwrap();
        assert_eq!(vm.state_tag(&state).unwrap(), "initial");
        let outcome = vm.call(&c, &state, b"updated").unwrap();
        assert_eq!(outcome.new_state, b"updated");
        assert!(outcome.payouts.is_empty());
    }

    #[test]
    fn echo_vm_payout_releases_to_caller() {
        let (d, c) = ctx_pair();
        let vm = EchoVm;
        let state = vm.deploy(&d, b"locked").unwrap();
        let outcome = vm.call(&c, &state, b"payout:10").unwrap();
        assert_eq!(outcome.payouts, vec![Payout { to: c.sender, amount: 10 }]);
        // Second spend fails.
        assert!(vm.call(&c, &outcome.new_state, b"payout:10").is_err());
    }

    #[test]
    fn echo_vm_rejects_malformed_payout() {
        let (_, c) = ctx_pair();
        let vm = EchoVm;
        assert!(matches!(
            vm.call(&c, b"s", b"payout:not-a-number").unwrap_err(),
            VmError::MalformedPayload(_)
        ));
    }

    #[test]
    fn vm_error_display() {
        let e = VmError::RequirementFailed("state != P".to_string());
        assert!(e.to_string().contains("state != P"));
    }
}
