//! The `Blockchain` façade: one simulated permissionless blockchain.
//!
//! Ties together the block store (fork tree + longest-chain rule), the
//! mempool, the UTXO set, the contract VM and the chain parameters. Mining a
//! block drains the mempool (up to the tps-derived budget), executes the
//! transactions, seals the block and appends it; receiving a block from the
//! network validates and inserts it, updating the canonical state if the
//! fork choice changed.
//!
//! State derivation is **incremental** (see `DESIGN.md` for the full
//! design):
//!
//! * The canonical [`ChainState`] is kept materialized at the tip. A block
//!   that extends the tip reuses the scratch state its own validation just
//!   produced — accepting block `N` never re-executes blocks `0..N-1`, so a
//!   simulation run is O(n) in chain length instead of the former O(n²)
//!   replay-from-genesis-per-block design.
//! * A bounded cache of [`ChainState`] snapshots keyed by block hash serves
//!   `state_at(parent)` for fork mining and fork validation in O(new
//!   blocks).
//! * On a reorg, the state is rebuilt from the nearest cached snapshot on
//!   the winning branch (worst case: genesis), and a `debug_assert`
//!   differential check compares the result against a full from-genesis
//!   replay. The replay path survives as [`Blockchain::replay_state_from_genesis`],
//!   the test/debug oracle.

use crate::block::{Block, BlockHeader};
use crate::contracts::{CallContext, ContractRecord, DeployContext, VmError, VmHandle};
use crate::mempool::{Mempool, MempoolError};
use crate::params::{ChainParams, SealPolicy};
use crate::storage::{StoreConfig, StoreStats};
use crate::store::{BlockStore, StoreError};
use crate::transaction::{coinbase, Transaction, TxKind, TxOutput};
use crate::types::{
    Address, Amount, BlockHash, BlockHeight, ChainId, ContractId, OutPoint, Timestamp, TxId,
};
use crate::utxo::{UtxoError, UtxoSet};
use ac3_crypto::MerkleProof;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Errors produced by chain operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// UTXO-level validation failed.
    Utxo(UtxoError),
    /// Contract execution failed.
    Vm(VmError),
    /// Structural block validation failed.
    Store(StoreError),
    /// Mempool admission failed.
    Mempool(MempoolError),
    /// A contract call tried to pay out more than the contract holds.
    OverdrawnContract {
        /// The offending contract.
        contract: ContractId,
        /// Value still locked.
        locked: Amount,
        /// Value the call attempted to release.
        requested: Amount,
    },
    /// The referenced parent block is unknown (for fork mining).
    UnknownBlock(BlockHash),
    /// Proof-of-work sealing gave up before finding a valid nonce.
    SealFailed,
    /// The block references the wrong chain id.
    WrongChain {
        /// Expected chain id.
        expected: ChainId,
        /// Chain id found in the block.
        got: ChainId,
    },
    /// A block carried a transaction paying less than the base fee in
    /// force for that block (derived from the parent block's fullness).
    FeeBelowBase {
        /// The offending transaction.
        txid: TxId,
        /// The fee it offered.
        offered: Amount,
        /// The base fee the block was priced at.
        base_fee: Amount,
    },
    /// A block carried more non-coinbase transactions than the chain's
    /// tps-derived per-block budget allows. Block fullness drives the base
    /// fee, so the budget is consensus-enforced, not merely mining policy.
    BlockOverBudget {
        /// Non-coinbase transactions in the block.
        txs: usize,
        /// The per-block budget.
        budget: usize,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Utxo(e) => write!(f, "utxo error: {e}"),
            ChainError::Vm(e) => write!(f, "vm error: {e}"),
            ChainError::Store(e) => write!(f, "store error: {e}"),
            ChainError::Mempool(e) => write!(f, "mempool error: {e}"),
            ChainError::OverdrawnContract { contract, locked, requested } => {
                write!(f, "contract {contract} overdrawn: locked {locked}, requested {requested}")
            }
            ChainError::UnknownBlock(h) => write!(f, "unknown block {h}"),
            ChainError::SealFailed => write!(f, "failed to seal block"),
            ChainError::WrongChain { expected, got } => {
                write!(f, "block for {got} submitted to {expected}")
            }
            ChainError::FeeBelowBase { txid, offered, base_fee } => {
                write!(f, "{txid} pays {offered}, below the block's base fee {base_fee}")
            }
            ChainError::BlockOverBudget { txs, budget } => {
                write!(f, "block carries {txs} transactions, over the per-block budget {budget}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

impl From<UtxoError> for ChainError {
    fn from(e: UtxoError) -> Self {
        ChainError::Utxo(e)
    }
}
impl From<VmError> for ChainError {
    fn from(e: VmError) -> Self {
        ChainError::Vm(e)
    }
}
impl From<StoreError> for ChainError {
    fn from(e: StoreError) -> Self {
        ChainError::Store(e)
    }
}
impl From<MempoolError> for ChainError {
    fn from(e: MempoolError) -> Self {
        ChainError::Mempool(e)
    }
}

/// The state derived from executing the canonical chain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainState {
    /// The unspent output set.
    pub utxos: UtxoSet,
    /// All deployed contracts.
    pub contracts: BTreeMap<ContractId, ContractRecord>,
    /// Total fees collected by miners so far.
    pub fees_collected: Amount,
    /// The dynamic base fee of the *next* block, derived from this chain's
    /// block fullness history under
    /// [`crate::params::BaseFeeSchedule`]. Living in the derived state
    /// means it is maintained incrementally, snapshot-cached, and replayed
    /// correctly from the fork point across reorgs — exactly like the UTXO
    /// set. 0 under a disabled schedule.
    pub base_fee: Amount,
}

/// Maximum number of post-block state snapshots retained for fork
/// validation. Bounds memory; forks deeper than the cache fall back to the
/// from-genesis replay oracle. Chains keep forks shallow relative to their
/// stable depth (6-ish), so a few dozen snapshots cover every realistic
/// reorg including the Section 6.3 attack experiments.
const SNAPSHOT_CAPACITY: usize = 48;

/// On plain tip extensions, only every `SNAPSHOT_STRIDE`-th outgoing tip
/// state is kept. Retained memory drops by the same factor; the cost is at
/// most `SNAPSHOT_STRIDE - 1` extra block replays when a fork roots between
/// snapshots.
const SNAPSHOT_STRIDE: u64 = 4;

/// A bounded FIFO cache of `ChainState` snapshots keyed by the hash of the
/// block whose execution produced them ("state as of and including block
/// `h`").
#[derive(Debug, Default)]
struct SnapshotCache {
    states: HashMap<BlockHash, ChainState>,
    order: VecDeque<BlockHash>,
}

impl SnapshotCache {
    fn get(&self, hash: &BlockHash) -> Option<&ChainState> {
        self.states.get(hash)
    }

    fn insert(&mut self, hash: BlockHash, state: ChainState) {
        if self.states.insert(hash, state).is_none() {
            self.order.push_back(hash);
            while self.order.len() > SNAPSHOT_CAPACITY {
                if let Some(evicted) = self.order.pop_front() {
                    self.states.remove(&evicted);
                }
            }
        }
    }
}

/// Evidence that a transaction is included in a specific block: the header
/// plus a Merkle inclusion proof — the raw material of the Section 4.3
/// light-client evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxInclusion {
    /// Header of the block containing the transaction.
    pub header: BlockHeader,
    /// Merkle proof of the transaction's canonical bytes under
    /// `header.tx_root`.
    pub proof: MerkleProof,
    /// How deep the block is buried under the current canonical tip.
    pub depth: u64,
}

/// One simulated permissionless blockchain.
pub struct Blockchain {
    id: ChainId,
    params: ChainParams,
    vm: VmHandle,
    store: BlockStore,
    mempool: Mempool,
    /// Materialized state of the canonical chain, maintained incrementally.
    state: ChainState,
    /// Recent post-block states for fork-tip validation (see module docs).
    snapshots: SnapshotCache,
}

impl fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Blockchain")
            .field("id", &self.id)
            .field("name", &self.params.name)
            .field("height", &self.store.best_height())
            .field("mempool", &self.mempool.len())
            .finish()
    }
}

impl Blockchain {
    /// Create a chain with a genesis block containing the given initial
    /// asset allocations ("new bitcoins are generated and registered in the
    /// blockchain through mining"; genesis allocations model pre-existing
    /// balances).
    /// The block-body storage backend is selected by the environment
    /// ([`StoreConfig::from_env`]): the in-memory map unless
    /// `AC3_STORE_BACKEND=paged`. Use [`Blockchain::with_store_config`]
    /// to pin a backend explicitly.
    pub fn new(
        id: ChainId,
        params: ChainParams,
        vm: VmHandle,
        genesis_allocations: &[(Address, Amount)],
    ) -> Self {
        Self::with_store_config(id, params, vm, genesis_allocations, StoreConfig::from_env())
    }

    /// [`Blockchain::new`] with an explicit block-body storage backend.
    /// Simulation results are bitwise identical across backends; the choice
    /// affects only memory footprint and storage counters.
    pub fn with_store_config(
        id: ChainId,
        params: ChainParams,
        vm: VmHandle,
        genesis_allocations: &[(Address, Amount)],
        store_config: StoreConfig,
    ) -> Self {
        let genesis_txs: Vec<Transaction> = genesis_allocations
            .iter()
            .enumerate()
            .map(|(i, (addr, amount))| coinbase(*addr, *amount, i as u64))
            .collect();
        let header = BlockHeader {
            chain: id,
            parent: BlockHash::GENESIS_PARENT,
            tx_root: Block::compute_tx_root(&genesis_txs),
            height: 0,
            timestamp: 0,
            target: params.target(),
            nonce: 0,
        };
        let genesis = Block { header, transactions: genesis_txs };
        let mempool = Mempool::with_capacity(params.mempool_capacity);
        let mut chain = Blockchain {
            id,
            params,
            vm,
            store: BlockStore::with_config(store_config),
            mempool,
            state: ChainState::default(),
            snapshots: SnapshotCache::default(),
        };
        let sealed = chain.seal(genesis).expect("genesis seals");
        let hash = chain.store.insert(sealed).expect("genesis inserts");
        chain.state = chain.replay_state_from_genesis();
        chain.mempool.set_base_fee(chain.state.base_fee);
        chain.snapshots.insert(hash, chain.state.clone());
        chain
    }

    /// The chain id.
    pub fn id(&self) -> ChainId {
        self.id
    }

    /// The chain parameters.
    pub fn params(&self) -> &ChainParams {
        &self.params
    }

    /// The contract VM handle.
    pub fn vm(&self) -> &VmHandle {
        &self.vm
    }

    /// Height of the canonical tip.
    pub fn height(&self) -> BlockHeight {
        self.store.best_height().unwrap_or(0)
    }

    /// Hash of the canonical tip.
    pub fn tip(&self) -> BlockHash {
        self.store.best_tip().expect("chain always has a genesis")
    }

    /// Header of the canonical tip.
    pub fn tip_header(&self) -> BlockHeader {
        self.store.header(&self.tip()).expect("tip exists")
    }

    /// The underlying block store (read-only).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Counters and shape of the block-body storage backend (buffer-pool
    /// hits/misses/evictions on the paged backend; all-zero counters on
    /// the in-memory backend).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// The currently derived canonical state (read-only).
    pub fn state(&self) -> &ChainState {
        &self.state
    }

    /// Number of pending transactions.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Maximum number of pending transactions the mempool holds.
    pub fn mempool_capacity(&self) -> usize {
        self.mempool.capacity()
    }

    /// Whether `txid` is waiting in the mempool.
    pub fn mempool_contains(&self, txid: &TxId) -> bool {
        self.mempool.contains(txid)
    }

    /// Rank of a pending transaction in miner priority order (0 = mined
    /// first), or `None` if it is not pending.
    pub fn mempool_position(&self, txid: &TxId) -> Option<usize> {
        self.mempool.position(txid)
    }

    /// Whether a pending transaction ranks within the first `limit` slots
    /// of miner priority order (O(limit), not O(queue depth)).
    pub fn mempool_position_within(&self, txid: &TxId, limit: usize) -> Option<bool> {
        self.mempool.position_within(txid, limit)
    }

    /// The smallest fee among pending transactions.
    pub fn mempool_min_fee(&self) -> Option<Amount> {
        self.mempool.min_fee()
    }

    /// The smallest fee that would currently buy a mempool slot (see
    /// [`Mempool::fee_floor`]; includes the dynamic base fee).
    pub fn mempool_fee_floor(&self) -> Amount {
        self.mempool.fee_floor()
    }

    /// The fee of the pending transaction ranked `rank` in miner priority
    /// order (see [`Mempool::fee_at_rank`]).
    pub fn mempool_fee_at_rank(&self, rank: usize) -> Option<Amount> {
        self.mempool.fee_at_rank(rank)
    }

    /// The dynamic base fee the next block will be priced at (0 under a
    /// disabled [`crate::params::BaseFeeSchedule`]).
    pub fn base_fee(&self) -> Amount {
        self.state.base_fee
    }

    /// The fee a pending transaction currently bids.
    pub fn mempool_fee_of(&self, txid: &TxId) -> Option<Amount> {
        self.mempool.fee_of(txid)
    }

    /// Monotonic counter of mempool mutations (see [`Mempool::revision`]):
    /// unchanged revision ⇒ every mempool-derived view is unchanged.
    pub fn mempool_revision(&self) -> u64 {
        self.mempool.revision()
    }

    /// Balance of an address on the canonical chain.
    pub fn balance_of(&self, address: &Address) -> Amount {
        self.state.utxos.balance_of(address)
    }

    /// Select unspent outputs of `address` covering `amount`.
    pub fn select_inputs(
        &self,
        address: &Address,
        amount: Amount,
    ) -> Option<(Vec<OutPoint>, Amount)> {
        self.state.utxos.select_inputs(address, amount)
    }

    /// Submit a transaction to the mempool.
    pub fn submit(&mut self, tx: Transaction) -> Result<TxId, ChainError> {
        Ok(self.mempool.submit(tx)?)
    }

    /// Submit a transaction, also returning any pending transactions that
    /// were evicted to make room (fee-based eviction in a full pool), so
    /// callers can undo side effects of their admission.
    pub fn submit_with_evictions(
        &mut self,
        tx: Transaction,
    ) -> Result<(TxId, Vec<Transaction>), ChainError> {
        Ok(self.mempool.submit_with_evictions(tx)?)
    }

    /// Replace-by-fee: swap the pending `old` for a strictly-higher-fee
    /// replacement. Returns the new id and the replaced transaction.
    pub fn replace(
        &mut self,
        old: &TxId,
        tx: Transaction,
    ) -> Result<(TxId, Transaction), ChainError> {
        Ok(self.mempool.replace(old, tx)?)
    }

    /// Look up a deployed contract on the canonical chain.
    pub fn contract(&self, id: &ContractId) -> Option<&ContractRecord> {
        self.state.contracts.get(id)
    }

    /// The VM state tag of a contract plus the burial depth of its last
    /// state change — exactly what [`ac3_crypto::StateLock`] verification
    /// needs.
    pub fn contract_state_with_depth(&self, id: &ContractId) -> Option<(String, u64)> {
        let record = self.contract(id)?;
        let tag = self.vm.state_tag(&record.state)?;
        let depth = self.height().saturating_sub(record.last_update);
        Some((tag, depth))
    }

    /// Confirmations of a transaction: depth of its containing block, or
    /// `None` if it is not on the canonical chain.
    pub fn tx_depth(&self, txid: &TxId) -> Option<u64> {
        let (block_hash, _) = self.store.find_canonical_tx(txid)?;
        self.store.depth_of(&block_hash)
    }

    /// Whether a transaction is buried under the chain's stable depth.
    pub fn tx_is_stable(&self, txid: &TxId) -> bool {
        self.tx_depth(txid).is_some_and(|d| d >= self.params.stable_depth)
    }

    /// Produce SPV inclusion evidence for a canonical transaction.
    pub fn tx_inclusion(&self, txid: &TxId) -> Option<TxInclusion> {
        let (block_hash, index) = self.store.find_canonical_tx(txid)?;
        let block = self.store.get(&block_hash)?;
        let proof = block.tx_tree().prove(index)?;
        let depth = self.store.depth_of(&block_hash)?;
        Some(TxInclusion { header: block.header, proof, depth })
    }

    /// Canonical headers strictly after the given block, oldest first
    /// (Section 4.3 header-relay evidence).
    pub fn headers_since(&self, from: &BlockHash) -> Option<Vec<BlockHeader>> {
        self.store.headers_since(from)
    }

    /// The canonical block currently buried under at least the chain's
    /// stable depth (the "stable block" a validator contract stores,
    /// Section 4.3).
    pub fn stable_block_hash(&self) -> BlockHash {
        let height = self.height().saturating_sub(self.params.stable_depth);
        self.store.canonical_block_at_height(height).expect("stable height always exists")
    }

    // ------------------------------------------------------------------
    // Mining
    // ------------------------------------------------------------------

    /// Mine a block on the canonical tip at simulated time `now`, draining
    /// the mempool up to the per-block budget. Invalid pending transactions
    /// are dropped silently (as real miners do).
    pub fn mine_block(&mut self, miner: Address, now: Timestamp) -> Result<Block, ChainError> {
        let tip = self.tip();
        self.mine_block_on(tip, miner, now)
    }

    /// Mine a block on an explicit parent — used to create forks
    /// deliberately (fault injection, Section 6.3 attack experiments).
    ///
    /// The scratch state built while filtering mempool candidates *is* the
    /// post-block state, so the mined block is committed directly instead of
    /// being re-validated from scratch by [`Blockchain::accept_block`]
    /// (debug builds still cross-check the two paths).
    pub fn mine_block_on(
        &mut self,
        parent: BlockHash,
        miner: Address,
        now: Timestamp,
    ) -> Result<Block, ChainError> {
        let parent_header = self.store.header(&parent).ok_or(ChainError::UnknownBlock(parent))?;
        let height = parent_header.height + 1;

        // Execute candidate transactions against the state as of `parent`.
        let mut scratch = self.state_at(&parent)?;
        // The base fee this block is priced at: the parent state's. Bids
        // below it are skipped (but stay pending — they become mineable
        // again if the base fee decays).
        let block_base_fee = scratch.base_fee;
        let budget = self.params.max_txs_per_block();
        let mut included = Vec::new();
        let mut fees: Amount = 0;
        for tx in self.mempool.select(budget * 2) {
            if included.len() >= budget {
                break;
            }
            if tx.fee < block_base_fee {
                continue;
            }
            match Self::execute_tx(&self.vm, self.id, &mut scratch, &tx, height, now) {
                Ok(()) => {
                    fees += tx.fee;
                    included.push(tx);
                }
                Err(_) => {
                    // Leave it in the mempool: it may become valid later
                    // (e.g. the funding transaction has not been mined yet).
                }
            }
        }

        let mut transactions = vec![coinbase(miner, self.params.block_reward + fees, height)];
        transactions.extend(included);

        // Fold the coinbase into the scratch state. It executes first in
        // block order, but no included candidate can reference its outputs
        // (they were validated without it), so the resulting state is
        // identical.
        Self::execute_tx(&self.vm, self.id, &mut scratch, &transactions[0], height, now)?;
        // The mined block's fullness moves the base fee of its successor.
        scratch.base_fee =
            self.params.base_fee_schedule.next(block_base_fee, transactions.len() - 1, budget);

        let header = BlockHeader {
            chain: self.id,
            parent,
            tx_root: Block::compute_tx_root(&transactions),
            height,
            timestamp: now,
            target: self.params.target(),
            nonce: 0,
        };
        let block = self.seal(Block { header, transactions })?;
        #[cfg(debug_assertions)]
        {
            // The mining fast path must stay equivalent to full network
            // validation (including the base-fee check and update).
            let mut revalidated = self.state_at(&parent)?;
            Self::execute_block(&self.vm, self.id, &self.params, &mut revalidated, &block)
                .expect("mined block re-validates");
            debug_assert_eq!(revalidated, scratch, "mining scratch diverged from validation");
        }
        self.commit_block(block.clone(), scratch)?;
        Ok(block)
    }

    /// Seal a block according to the chain's seal policy.
    fn seal(&self, mut block: Block) -> Result<Block, ChainError> {
        match self.params.seal {
            SealPolicy::Instant => Ok(block),
            SealPolicy::ProofOfWork { .. } => {
                // Bounded nonce search; difficulties used in tests/benches
                // are small enough that this always succeeds quickly.
                const MAX_ITERS: u64 = 50_000_000;
                for nonce in 0..MAX_ITERS {
                    block.header.nonce = nonce;
                    if block.header.meets_target() {
                        return Ok(block);
                    }
                }
                Err(ChainError::SealFailed)
            }
        }
    }

    /// Accept a block produced locally or received from the network:
    /// validate it statefully, insert it and update the canonical state.
    ///
    /// The state produced by validating the block against its parent is
    /// *reused*: if the block becomes the canonical tip it becomes the
    /// canonical state directly (no replay), otherwise it is cached as a
    /// fork-tip snapshot so a later extension of that fork is O(new blocks).
    pub fn accept_block(&mut self, block: Block) -> Result<BlockHash, ChainError> {
        if block.header.chain != self.id {
            return Err(ChainError::WrongChain { expected: self.id, got: block.header.chain });
        }
        // Stateful validation against the parent's state; genesis blocks are
        // only produced by the constructor.
        let mut scratch = self.state_at(&block.header.parent)?;
        Self::execute_block(&self.vm, self.id, &self.params, &mut scratch, &block)?;
        self.commit_block(block, scratch)
    }

    /// Insert a fully validated block whose post-block state is `post_state`
    /// and update the canonical state and snapshot cache.
    ///
    /// On a tip extension the outgoing tip state is *moved* into the
    /// snapshot cache (no clone) and `post_state` becomes the canonical
    /// state directly — the only per-block O(state) cost left on the hot
    /// path is the single validation-scratch clone in `state_at`.
    fn commit_block(
        &mut self,
        block: Block,
        post_state: ChainState,
    ) -> Result<BlockHash, ChainError> {
        let parent = block.header.parent;
        let mined_ids: Vec<TxId> = block.transactions.iter().map(Transaction::id).collect();
        let old_tip = self.store.best_tip();
        let hash = self.store.insert(block)?;
        if old_tip == Some(hash) {
            // Idempotent re-accept of the current tip (duplicate network
            // delivery): the store ignored it and the state is already
            // correct — in particular, do not misread `parent != old_tip`
            // below as a reorg.
            return Ok(hash);
        }

        if self.store.best_tip() == Some(hash) {
            // Transactions leave the mempool only on *canonical* inclusion —
            // a block stranded on a losing side branch must not silently
            // swallow pending transactions.
            self.mempool.remove_ids(&mined_ids);
            // The block is the new canonical tip; `post_state` is by
            // construction the state of the chain ending in it.
            if old_tip != Some(parent) {
                // Reorg: earlier blocks of the winning branch were accepted
                // as side-branch blocks, so their transactions may still be
                // pending; drop everything the new canonical chain now
                // contains. (Transactions of the abandoned branch are *not*
                // resubmitted — a documented simplification, DESIGN.md §2.)
                let now_canonical: Vec<TxId> = self
                    .mempool
                    .iter()
                    .map(Transaction::id)
                    .filter(|id| self.store.find_canonical_tx(id).is_some())
                    .collect();
                self.mempool.remove_ids(&now_canonical);
                // In debug builds cross-check the incrementally derived
                // state against the from-genesis replay oracle.
                debug_assert_eq!(
                    post_state,
                    self.replay_state_from_genesis(),
                    "incremental reorg state diverged from full replay"
                );
            }
            let prev = std::mem::replace(&mut self.state, post_state);
            // The accepted block's fullness moved the base fee; the mempool
            // gates admission on it (correct across reorgs too: the new
            // canonical state's base fee is a from-fork-point replay).
            self.mempool.set_base_fee(self.state.base_fee);
            if let Some(tip) = old_tip {
                // The outgoing tip state serves later forks off that block.
                // On plain extensions only every SNAPSHOT_STRIDE-th state is
                // retained (a fork off an unsnapshotted block replays at
                // most STRIDE-1 extra blocks), bounding resident memory at
                // ~CAPACITY/STRIDE full states; a reorged-out tip is always
                // retained, since reorging straight back is the common
                // attack pattern.
                let reorged_out = old_tip != Some(parent);
                let on_stride = self
                    .store
                    .header(&tip)
                    .is_some_and(|h| h.height.is_multiple_of(SNAPSHOT_STRIDE));
                if reorged_out || on_stride {
                    self.snapshots.insert(tip, prev);
                }
            }
        } else {
            // Side-branch block: canonical state is untouched; remember the
            // fork-tip state so extending this fork stays cheap.
            self.snapshots.insert(hash, post_state);
        }
        Ok(hash)
    }

    // ------------------------------------------------------------------
    // State derivation
    // ------------------------------------------------------------------

    /// Replay the canonical chain from genesis into a fresh state. This is
    /// the slow-path oracle the incremental engine is checked against (in
    /// `debug_assert`s on reorgs and in the differential property tests);
    /// production paths never call it.
    pub fn replay_state_from_genesis(&self) -> ChainState {
        let mut state = ChainState::default();
        for block in self.store.canonical_blocks() {
            // Canonical blocks were validated on acceptance; execution
            // here cannot fail. If it somehow does, the chain state is
            // the replay prefix — an internal invariant violation we
            // surface loudly in debug builds.
            let result = Self::execute_block(&self.vm, self.id, &self.params, &mut state, &block);
            debug_assert!(result.is_ok(), "canonical replay failed: {result:?}");
        }
        state
    }

    /// Derive the state as of (and including) the block `at`.
    ///
    /// Fast paths, in order: the canonical tip (clone of the materialized
    /// state), a cached snapshot (clone), otherwise walk ancestors until one
    /// of those is hit — or genesis, the full-replay fallback — and execute
    /// only the uncovered suffix. Cost is O(blocks past the nearest
    /// snapshot), not O(chain length).
    fn state_at(&self, at: &BlockHash) -> Result<ChainState, ChainError> {
        if self.store.best_tip() == Some(*at) {
            return Ok(self.state.clone());
        }
        if let Some(snapshot) = self.snapshots.get(at) {
            return Ok(snapshot.clone());
        }
        // Walk back until a covered ancestor (or genesis) is found; the
        // uncovered blocks collect in `suffix`, newest first.
        let mut suffix: Vec<std::sync::Arc<Block>> = Vec::new();
        let mut cursor = *at;
        let mut state = loop {
            let block = self.store.get(&cursor).ok_or(ChainError::UnknownBlock(cursor))?;
            let header = block.header;
            suffix.push(block);
            if header.is_genesis() {
                break ChainState::default();
            }
            let parent = header.parent;
            if self.store.best_tip() == Some(parent) {
                break self.state.clone();
            }
            if let Some(snapshot) = self.snapshots.get(&parent) {
                break snapshot.clone();
            }
            cursor = parent;
        };
        for block in suffix.iter().rev() {
            Self::execute_block(&self.vm, self.id, &self.params, &mut state, block)?;
        }
        Ok(state)
    }

    /// Execute a whole block against `state`: enforce the per-block
    /// transaction budget and the base fee in force for the block (the
    /// parent state's `base_fee`) on every non-coinbase transaction,
    /// execute the transactions, then move the base fee according to the
    /// block's fullness. Every path that derives state from blocks funnels
    /// through here, so the base-fee trajectory is identical across
    /// acceptance, fork validation, reorg replay and the from-genesis
    /// oracle — and an oversized block no honest miner could produce is
    /// rejected rather than fed into the fee schedule.
    fn execute_block(
        vm: &VmHandle,
        chain: ChainId,
        params: &ChainParams,
        state: &mut ChainState,
        block: &Block,
    ) -> Result<(), ChainError> {
        let base_fee = state.base_fee;
        let budget = params.max_txs_per_block();
        let txs = block.transactions.iter().filter(|tx| !tx.is_coinbase()).count();
        if txs > budget {
            return Err(ChainError::BlockOverBudget { txs, budget });
        }
        let mut used = 0usize;
        for tx in &block.transactions {
            if !tx.is_coinbase() {
                if tx.fee < base_fee {
                    return Err(ChainError::FeeBelowBase {
                        txid: tx.id(),
                        offered: tx.fee,
                        base_fee,
                    });
                }
                used += 1;
            }
            Self::execute_tx(vm, chain, state, tx, block.header.height, block.header.timestamp)?;
        }
        state.base_fee = params.base_fee_schedule.next(base_fee, used, budget);
        Ok(())
    }

    /// Execute one transaction against `state`.
    fn execute_tx(
        vm: &VmHandle,
        chain: ChainId,
        state: &mut ChainState,
        tx: &Transaction,
        height: BlockHeight,
        now: Timestamp,
    ) -> Result<(), ChainError> {
        if !tx.signature_valid() {
            return Err(ChainError::Utxo(UtxoError::MissingSender));
        }
        match &tx.kind {
            TxKind::Transfer { .. } | TxKind::Coinbase { .. } => {
                state.utxos.apply(tx)?;
            }
            TxKind::Deploy { locked_value, payload, .. } => {
                state.utxos.apply(tx)?;
                let sender = tx.sender.expect("deploy has sender");
                let contract_id = ContractId(tx.id().0);
                let ctx = DeployContext {
                    chain,
                    sender,
                    value: *locked_value,
                    contract: contract_id,
                    height,
                    now,
                };
                let initial_state = vm.deploy(&ctx, payload)?;
                state.contracts.insert(
                    contract_id,
                    ContractRecord {
                        id: contract_id,
                        owner: sender,
                        state: initial_state,
                        locked_value: *locked_value,
                        deployed_at: height,
                        last_update: height,
                    },
                );
            }
            TxKind::Call { contract, payload } => {
                state.utxos.apply(tx)?;
                let sender = tx.sender.expect("call has sender");
                let record = state
                    .contracts
                    .get(contract)
                    .ok_or(ChainError::Vm(VmError::UnknownContract(*contract)))?
                    .clone();
                let ctx = CallContext { chain, sender, contract: *contract, height, now };
                let outcome = vm.call(&ctx, &record.state, payload)?;

                let requested: Amount = outcome.payouts.iter().map(|p| p.amount).sum();
                if requested > record.locked_value {
                    return Err(ChainError::OverdrawnContract {
                        contract: *contract,
                        locked: record.locked_value,
                        requested,
                    });
                }
                let call_txid = tx.id();
                for (seq, payout) in outcome.payouts.iter().enumerate() {
                    state.utxos.credit_contract_payout(
                        call_txid,
                        seq as u32,
                        payout.to,
                        payout.amount,
                    );
                }
                let updated = ContractRecord {
                    state: outcome.new_state,
                    locked_value: record.locked_value - requested,
                    last_update: height,
                    ..record
                };
                state.contracts.insert(*contract, updated);
            }
        }
        state.fees_collected += tx.fee;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Convenience transaction constructors used by the simulation layer
    // ------------------------------------------------------------------

    /// Build the outputs of a simple payment of `amount` from funds owned by
    /// `from`, returning `(inputs, outputs)` including change, or `None` if
    /// the balance is insufficient to also cover `fee`.
    pub fn plan_payment(
        &self,
        from: &Address,
        to: &Address,
        amount: Amount,
        fee: Amount,
    ) -> Option<(Vec<OutPoint>, Vec<TxOutput>)> {
        let (inputs, total) = self.state.utxos.select_inputs(from, amount + fee)?;
        let mut outputs = vec![TxOutput::new(*to, amount)];
        let change = total - amount - fee;
        if change > 0 {
            outputs.push(TxOutput::new(*from, change));
        }
        Some((inputs, outputs))
    }

    /// Plan the funding side of a contract deployment that locks
    /// `locked_value`, returning `(inputs, change_outputs)`.
    pub fn plan_deploy(
        &self,
        from: &Address,
        locked_value: Amount,
        fee: Amount,
    ) -> Option<(Vec<OutPoint>, Vec<TxOutput>)> {
        let (inputs, total) = self.state.utxos.select_inputs(from, locked_value + fee)?;
        let change = total - locked_value - fee;
        let change_outputs =
            if change > 0 { vec![TxOutput::new(*from, change)] } else { Vec::new() };
        Some((inputs, change_outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contracts::EchoVm;
    use crate::transaction::TxBuilder;
    use ac3_crypto::KeyPair;
    use std::sync::Arc;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn test_chain(allocs: &[(Address, Amount)]) -> Blockchain {
        Blockchain::new(ChainId(0), ChainParams::test("test"), Arc::new(EchoVm), allocs)
    }

    #[test]
    fn genesis_allocations_are_spendable() {
        let alice = addr(b"alice");
        let chain = test_chain(&[(alice, 100)]);
        assert_eq!(chain.balance_of(&alice), 100);
        assert_eq!(chain.height(), 0);
    }

    #[test]
    fn mine_transfer_and_check_balances() {
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let miner = addr(b"miner");
        let mut chain = test_chain(&[(alice, 100)]);

        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) = chain.plan_payment(&alice, &bob, 40, 1).unwrap();
        chain.submit(builder.transfer(inputs, outputs, 1)).unwrap();
        chain.mine_block(miner, 1_000).unwrap();

        assert_eq!(chain.balance_of(&bob), 40);
        assert_eq!(chain.balance_of(&alice), 59);
        // Miner gets the block reward plus the fee.
        assert_eq!(chain.balance_of(&miner), chain.params().block_reward + 1);
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.mempool_len(), 0);
    }

    #[test]
    fn insufficiently_funded_tx_stays_pending() {
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let miner = addr(b"miner");
        let mut chain = test_chain(&[(alice, 10)]);
        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        // Manually craft a transfer spending an output that does not exist.
        let fake_input = OutPoint::new(TxId(ac3_crypto::Hash256::digest(b"nope")), 0);
        let tx = builder.transfer(vec![fake_input], vec![TxOutput::new(bob, 5)], 0);
        chain.submit(tx).unwrap();
        chain.mine_block(miner, 1_000).unwrap();
        assert_eq!(chain.balance_of(&bob), 0);
        assert_eq!(chain.mempool_len(), 1, "invalid tx left pending");
    }

    #[test]
    fn deploy_and_call_contract_with_payout() {
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let miner = addr(b"miner");
        let mut chain = test_chain(&[(alice, 100), (bob, 10)]);
        let mut alice_b = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let mut bob_b = TxBuilder::new(KeyPair::from_seed(b"bob"), 0);

        // Alice deploys a contract locking 60.
        let (inputs, change) = chain.plan_deploy(&alice, 60, 2).unwrap();
        let deploy = alice_b.deploy(inputs, 60, change, b"locked".to_vec(), 2);
        let contract_id = ContractId(deploy.id().0);
        chain.submit(deploy).unwrap();
        chain.mine_block(miner, 1_000).unwrap();

        let record = chain.contract(&contract_id).expect("deployed");
        assert_eq!(record.locked_value, 60);
        assert_eq!(chain.balance_of(&alice), 100 - 60 - 2);
        assert_eq!(chain.contract_state_with_depth(&contract_id).unwrap().0, "locked");

        // Bob calls the contract to receive the payout.
        let call = bob_b.call(contract_id, b"payout:60".to_vec(), 1);
        chain.submit(call).unwrap();
        chain.mine_block(miner, 2_000).unwrap();

        // Contract-call transactions consume no UTXO inputs, so their fee is
        // notional (tracked for the Section 6.2 cost model, not deducted
        // from the caller's balance).
        assert_eq!(chain.balance_of(&bob), 10 + 60);
        assert_eq!(chain.contract(&contract_id).unwrap().locked_value, 0);
        let (tag, depth) = chain.contract_state_with_depth(&contract_id).unwrap();
        assert_eq!(tag, "spent");
        assert_eq!(depth, 0);
    }

    #[test]
    fn contract_overdraw_is_rejected_and_tx_not_mined() {
        let alice = addr(b"alice");
        let miner = addr(b"miner");
        let mut chain = test_chain(&[(alice, 100)]);
        let mut alice_b = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);

        let (inputs, change) = chain.plan_deploy(&alice, 10, 2).unwrap();
        let deploy = alice_b.deploy(inputs, 10, change, b"locked".to_vec(), 2);
        let contract_id = ContractId(deploy.id().0);
        chain.submit(deploy).unwrap();
        chain.mine_block(miner, 1_000).unwrap();

        let call = alice_b.call(contract_id, b"payout:999".to_vec(), 1);
        chain.submit(call).unwrap();
        chain.mine_block(miner, 2_000).unwrap();
        // The overdrawn call is not included; contract unchanged.
        assert_eq!(chain.contract(&contract_id).unwrap().locked_value, 10);
    }

    #[test]
    fn contract_depth_grows_with_blocks() {
        let alice = addr(b"alice");
        let miner = addr(b"miner");
        let mut chain = test_chain(&[(alice, 100)]);
        let mut alice_b = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, change) = chain.plan_deploy(&alice, 5, 2).unwrap();
        let deploy = alice_b.deploy(inputs, 5, change, b"state0".to_vec(), 2);
        let contract_id = ContractId(deploy.id().0);
        chain.submit(deploy).unwrap();
        chain.mine_block(miner, 1_000).unwrap();
        for i in 0..4 {
            chain.mine_block(miner, 2_000 + i).unwrap();
        }
        let (_, depth) = chain.contract_state_with_depth(&contract_id).unwrap();
        assert_eq!(depth, 4);
    }

    #[test]
    fn tx_inclusion_proof_verifies() {
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let miner = addr(b"miner");
        let mut chain = test_chain(&[(alice, 100)]);
        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) = chain.plan_payment(&alice, &bob, 10, 1).unwrap();
        let tx = builder.transfer(inputs, outputs, 1);
        let txid = tx.id();
        chain.submit(tx.clone()).unwrap();
        chain.mine_block(miner, 1_000).unwrap();
        chain.mine_block(miner, 2_000).unwrap();

        let inclusion = chain.tx_inclusion(&txid).unwrap();
        assert!(inclusion.proof.verify(&inclusion.header.tx_root, &tx.canonical_bytes()));
        assert_eq!(inclusion.depth, 1);
        assert_eq!(chain.tx_depth(&txid), Some(1));
        assert!(!chain.tx_is_stable(&txid), "needs 6 confirmations");
    }

    #[test]
    fn fork_and_reorg_switch_canonical_state() {
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let miner = addr(b"miner");
        let mut chain = test_chain(&[(alice, 100)]);
        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);

        // Height 1 on the main branch contains Alice's payment to Bob.
        let (inputs, outputs) = chain.plan_payment(&alice, &bob, 30, 1).unwrap();
        chain.submit(builder.transfer(inputs, outputs, 1)).unwrap();
        let genesis = chain.tip();
        chain.mine_block(miner, 1_000).unwrap();
        assert_eq!(chain.balance_of(&bob), 30);

        // Build a longer empty fork from genesis: the payment is reorged out.
        chain.mine_block_on(genesis, miner, 1_500).unwrap();
        let fork_tip = chain.tip_header();
        // The fork of equal length may or may not win the tie; extend it so
        // it is strictly longer and must win.
        let fork_hash = if chain.balance_of(&bob) == 30 {
            // main branch still canonical; find the fork tip among tips
            chain
                .store()
                .tips()
                .into_iter()
                .find(|t| *t != chain.tip())
                .unwrap_or_else(|| fork_tip.hash())
        } else {
            chain.tip()
        };
        chain.mine_block_on(fork_hash, miner, 2_000).unwrap();
        assert_eq!(chain.height(), 2);
        assert_eq!(chain.balance_of(&bob), 0, "payment reorged out");
        assert_eq!(chain.balance_of(&alice), 100);
    }

    #[test]
    fn wrong_chain_block_rejected() {
        let alice = addr(b"alice");
        let mut chain_a = test_chain(&[(alice, 100)]);
        let chain_b = Blockchain::new(
            ChainId(1),
            ChainParams::test("other"),
            Arc::new(EchoVm),
            &[(alice, 100)],
        );
        let foreign_genesis = (*chain_b.store().get(&chain_b.tip()).unwrap()).clone();
        assert!(matches!(
            chain_a.accept_block(foreign_genesis).unwrap_err(),
            ChainError::WrongChain { .. }
        ));
    }

    #[test]
    fn headers_since_and_stable_block() {
        let alice = addr(b"alice");
        let miner = addr(b"miner");
        let mut chain = test_chain(&[(alice, 100)]);
        let genesis = chain.tip();
        for i in 0..10u64 {
            chain.mine_block(miner, 1_000 * (i + 1)).unwrap();
        }
        let headers = chain.headers_since(&genesis).unwrap();
        assert_eq!(headers.len(), 10);
        assert_eq!(headers.first().unwrap().height, 1);
        // Stable block is 6 (stable_depth) behind the tip at height 10.
        let stable = chain.stable_block_hash();
        assert_eq!(chain.store().get(&stable).unwrap().header.height, 4);
    }

    // ------------------------------------------------------------------
    // Dynamic base fee
    // ------------------------------------------------------------------

    use crate::params::BaseFeeSchedule;

    /// A chain with a dynamic base fee (floor 1, 50% target, 13%/block),
    /// 4 transactions per block, and `outputs` genesis coinbases of
    /// `value` each for alice — independent outputs so demand transactions
    /// never conflict in the mempool.
    fn base_fee_chain(outputs: usize, value: Amount) -> (Blockchain, Address) {
        let alice = addr(b"alice");
        let mut params = ChainParams::test("base-fee");
        params.tps = 4;
        params.block_interval_ms = 1_000;
        params.base_fee_schedule = BaseFeeSchedule::eip1559_like();
        let allocs = vec![(alice, value); outputs];
        (Blockchain::new(ChainId(0), params, Arc::new(EchoVm), &allocs), alice)
    }

    /// The outpoint of the `i`-th genesis coinbase (they are constructed
    /// deterministically by `Blockchain::new`).
    fn genesis_outpoint(owner: Address, value: Amount, i: usize) -> OutPoint {
        OutPoint::new(crate::transaction::coinbase(owner, value, i as u64).id(), 0)
    }

    #[test]
    fn sustained_full_blocks_raise_the_base_fee_and_idle_blocks_decay_it() {
        let (mut chain, alice) = base_fee_chain(64, 100);
        let miner = addr(b"miner");
        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        assert_eq!(chain.base_fee(), 1, "starts at the floor");

        // Demand phase: keep every block full (4 txs against a target of
        // 2) — the base fee must rise monotonically, block over block.
        let mut spent = 0usize;
        let mut prev = chain.base_fee();
        for b in 0..8u64 {
            for _ in 0..4 {
                let input = genesis_outpoint(alice, 100, spent);
                spent += 1;
                let fee = chain.base_fee().max(chain.mempool_fee_floor());
                let change = vec![TxOutput::new(alice, 100 - fee)];
                chain.submit(builder.transfer(vec![input], change, fee)).unwrap();
            }
            chain.mine_block(miner, 1_000 * (b + 1)).unwrap();
            let now = chain.base_fee();
            assert!(now > prev, "block {b}: full block must raise the base fee ({prev} -> {now})");
            prev = now;
        }
        let peak = chain.base_fee();
        assert!(peak > 1 + 7, "eight full blocks move the fee well off the floor, got {peak}");

        // Idle phase: empty blocks decay the fee back to the floor.
        for b in 0..20u64 {
            chain.mine_block(miner, 100_000 + 1_000 * b).unwrap();
            let now = chain.base_fee();
            assert!(now <= prev, "block {b}: empty block must not raise the base fee");
            prev = now;
        }
        assert_eq!(chain.base_fee(), 1, "demand gone: the base fee is back at the floor");
        // The mempool's admission gate tracked every move.
        assert_eq!(chain.mempool_fee_floor(), 1);
    }

    #[test]
    fn miners_skip_bids_below_the_base_fee_and_blocks_reject_them() {
        let (mut chain, alice) = base_fee_chain(40, 100);
        let miner = addr(b"miner");
        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);

        // Raise the base fee with a few full blocks.
        let mut spent = 0usize;
        for b in 0..6u64 {
            for _ in 0..4 {
                let input = genesis_outpoint(alice, 100, spent);
                spent += 1;
                let fee = chain.base_fee();
                chain
                    .submit(builder.transfer(
                        vec![input],
                        vec![TxOutput::new(alice, 100 - fee)],
                        fee,
                    ))
                    .unwrap();
            }
            chain.mine_block(miner, 1_000 * (b + 1)).unwrap();
        }
        let base = chain.base_fee();
        assert!(base > 2);

        // A bid below the base fee is refused admission outright...
        let cheap_input = genesis_outpoint(alice, 100, spent);
        let cheap = builder.transfer(vec![cheap_input], vec![TxOutput::new(alice, 99)], 1);
        assert!(matches!(
            chain.submit(cheap.clone()).unwrap_err(),
            ChainError::Mempool(MempoolError::FeeTooLow { .. })
        ));
        // ...and a block smuggling one in is rejected by validation.
        let height = chain.height() + 1;
        let parent = chain.tip();
        let transactions = vec![coinbase(miner, chain.params().block_reward, height), cheap];
        let header = BlockHeader {
            chain: chain.id(),
            parent,
            tx_root: Block::compute_tx_root(&transactions),
            height,
            timestamp: 50_000,
            target: chain.params().target(),
            nonce: 0,
        };
        let err = chain.accept_block(Block { header, transactions }).unwrap_err();
        assert!(matches!(err, ChainError::FeeBelowBase { offered: 1, .. }), "got {err}");
    }

    #[test]
    fn oversized_blocks_are_rejected_by_validation() {
        // Block fullness drives the base fee, so the tps-derived budget is
        // consensus-enforced: a block no honest miner could produce (more
        // non-coinbase txs than the budget) must be rejected even though
        // every transaction in it is individually valid.
        let alice = addr(b"alice");
        let miner = addr(b"miner");
        let mut params = ChainParams::test("tight");
        params.tps = 2; // budget 2
        params.block_interval_ms = 1_000;
        let allocs = vec![(alice, 100); 3];
        let mut chain = Blockchain::new(ChainId(0), params, Arc::new(EchoVm), &allocs);
        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);

        let height = chain.height() + 1;
        let parent = chain.tip();
        let mut transactions = vec![coinbase(miner, chain.params().block_reward, height)];
        for i in 0..3u64 {
            let input = OutPoint::new(coinbase(alice, 100, i).id(), 0);
            transactions.push(builder.transfer(vec![input], vec![TxOutput::new(alice, 99)], 1));
        }
        let header = BlockHeader {
            chain: chain.id(),
            parent,
            tx_root: Block::compute_tx_root(&transactions),
            height,
            timestamp: 1_000,
            target: chain.params().target(),
            nonce: 0,
        };
        let err = chain.accept_block(Block { header, transactions }).unwrap_err();
        assert!(matches!(err, ChainError::BlockOverBudget { txs: 3, budget: 2 }), "got {err}");
        assert_eq!(chain.height(), 0, "the oversized block was not accepted");
    }

    #[test]
    fn base_fee_replays_identically_across_a_reorg() {
        // Grow a demand-heavy canonical chain, then reorg onto an idle
        // branch rooted below the demand: the materialized base fee must
        // equal the from-fork-point replay (checked against the oracle).
        let (mut chain, alice) = base_fee_chain(40, 100);
        let miner = addr(b"miner");
        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let mut spent = 0usize;
        for b in 0..5u64 {
            for _ in 0..4 {
                let input = genesis_outpoint(alice, 100, spent);
                spent += 1;
                let fee = chain.base_fee();
                chain
                    .submit(builder.transfer(
                        vec![input],
                        vec![TxOutput::new(alice, 100 - fee)],
                        fee,
                    ))
                    .unwrap();
            }
            chain.mine_block(miner, 1_000 * (b + 1)).unwrap();
        }
        let elevated = chain.base_fee();
        assert!(elevated > 2);

        // Empty attacker branch from height 2 outgrows the demand branch.
        let fork_base = chain.store().canonical_block_at_height(2).unwrap();
        let mut parent = fork_base;
        for i in 0..6u64 {
            let block = chain.mine_block_on(parent, miner, 50_000 + i).unwrap();
            parent = block.hash();
        }
        assert_eq!(chain.height(), 8, "fork won");
        let oracle = chain.replay_state_from_genesis();
        assert_eq!(chain.state(), &oracle, "reorged state equals from-genesis replay");
        assert!(
            chain.base_fee() < elevated,
            "the idle branch must not inherit the demand branch's base fee"
        );
        assert_eq!(chain.mempool_fee_floor().max(chain.base_fee()), chain.base_fee());
    }

    #[test]
    fn pow_sealing_produces_valid_blocks() {
        let alice = addr(b"alice");
        let miner = addr(b"miner");
        let mut params = ChainParams::test("pow");
        params.seal = SealPolicy::ProofOfWork { difficulty_bits: 8 };
        let mut chain = Blockchain::new(ChainId(3), params, Arc::new(EchoVm), &[(alice, 10)]);
        let block = chain.mine_block(miner, 1_000).unwrap();
        assert!(block.header.meets_target());
        assert!(block.hash().0.leading_zero_bits() >= 8);
    }
}
