//! Differential tests of the incremental chain-state engine.
//!
//! The canonical state is maintained incrementally (tip extension reuses the
//! validation scratch state; reorgs restore from snapshots and replay only
//! the divergent suffix). These tests drive arbitrary interleavings of tip
//! extensions, fork mining and reorgs — with payments and contract activity
//! mixed in — and after every step compare the incremental state against the
//! from-genesis replay oracle [`Blockchain::replay_state_from_genesis`]. The
//! two must be *equal in full*: UTXO set, contract records and collected
//! fees.

use ac3_chain::{Address, Amount, Blockchain, ChainId, ChainParams, ContractId, EchoVm, TxBuilder};
use ac3_crypto::KeyPair;
use std::sync::Arc;

fn addr(seed: &[u8]) -> Address {
    Address::from(KeyPair::from_seed(seed).public())
}

fn test_chain(allocs: &[(Address, Amount)]) -> Blockchain {
    Blockchain::new(ChainId(0), ChainParams::test("diff"), Arc::new(EchoVm), allocs)
}

/// Deterministic pseudo-random sequence (splitmix64) so failures reproduce.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn assert_matches_oracle(chain: &Blockchain, context: &str) {
    let oracle = chain.replay_state_from_genesis();
    assert_eq!(chain.state(), &oracle, "incremental state diverged from full replay ({context})");
}

#[test]
fn extending_the_tip_matches_full_replay() {
    let alice = addr(b"alice");
    let bob = addr(b"bob");
    let miner = addr(b"miner");
    let mut chain = test_chain(&[(alice, 10_000)]);
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);

    for i in 0..40u64 {
        if i % 3 == 0 {
            if let Some((inputs, outputs)) = chain.plan_payment(&alice, &bob, 5 + i, 1) {
                chain.submit(builder.transfer(inputs, outputs, 1)).unwrap();
            }
        }
        chain.mine_block(miner, 1_000 * (i + 1)).unwrap();
        assert_matches_oracle(&chain, &format!("extend #{i}"));
    }
    assert_eq!(chain.height(), 40);
}

#[test]
fn random_interleaving_of_extends_and_reorgs_matches_oracle() {
    let alice = addr(b"alice");
    let bob = addr(b"bob");
    let miner = addr(b"miner");
    let mut chain = test_chain(&[(alice, 100_000), (bob, 50_000)]);
    let mut alice_b = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
    let mut rng = Rng(0xac3);
    let mut reorgs_seen = 0u32;

    for step in 0..120u64 {
        let now = 1_000 * (step + 1);
        let roll = rng.below(10);
        if roll < 6 {
            // Extend the canonical tip, sometimes with a payment.
            if roll < 3 {
                if let Some((inputs, outputs)) =
                    chain.plan_payment(&alice, &bob, 1 + rng.below(50), 1)
                {
                    chain.submit(alice_b.transfer(inputs, outputs, 1)).unwrap();
                }
            }
            chain.mine_block(miner, now).unwrap();
        } else {
            // Mine on an ancestor or a competing fork tip: depth 1..=6 below
            // the current tip, or an existing non-canonical tip.
            let tip_before = chain.tip();
            let parent = if roll == 9 {
                chain.store().tips().into_iter().find(|t| *t != tip_before).unwrap_or(tip_before)
            } else {
                let depth = 1 + rng.below(6);
                let height = chain.height().saturating_sub(depth);
                chain.store().canonical_block_at_height(height).unwrap()
            };
            chain.mine_block_on(parent, miner, now).unwrap();
            if chain.tip() != tip_before && chain.store().get(&tip_before).is_some() {
                reorgs_seen += u32::from(!chain.store().is_canonical(&tip_before));
            }
        }
        assert_matches_oracle(&chain, &format!("step {step}"));
    }
    assert!(reorgs_seen > 0, "interleaving never produced a reorg — test lost its teeth");
}

#[test]
fn contract_lifecycle_survives_reorgs_identically() {
    let alice = addr(b"alice");
    let miner = addr(b"miner");
    let mut chain = test_chain(&[(alice, 10_000)]);
    let mut alice_b = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);

    // Deploy, bury it a little, then call it.
    let (inputs, change) = chain.plan_deploy(&alice, 500, 2).unwrap();
    let deploy = alice_b.deploy(inputs, 500, change, b"locked".to_vec(), 2);
    let contract_id = ContractId(deploy.id().0);
    chain.submit(deploy).unwrap();
    chain.mine_block(miner, 1_000).unwrap();
    chain.mine_block(miner, 2_000).unwrap();
    let call = alice_b.call(contract_id, b"payout:250".to_vec(), 1);
    chain.submit(call).unwrap();
    chain.mine_block(miner, 3_000).unwrap();
    assert_matches_oracle(&chain, "after deploy+call");
    assert_eq!(chain.contract(&contract_id).unwrap().locked_value, 250);

    // Reorg the call (but not the deploy) out: fork from the block after the
    // deploy and outgrow the main branch.
    let fork_base = chain.store().canonical_block_at_height(2).unwrap();
    let mut parent = fork_base;
    for i in 0..3u64 {
        let block = chain.mine_block_on(parent, miner, 4_000 + i).unwrap();
        parent = block.hash();
    }
    assert_eq!(chain.height(), 5);
    assert_matches_oracle(&chain, "after reorging the call out");
    // The deploy survived the reorg; the call did not.
    assert_eq!(chain.contract(&contract_id).unwrap().locked_value, 500);
}

#[test]
fn deep_reorg_past_snapshot_capacity_matches_oracle() {
    // Build a canonical chain far longer than the snapshot cache, then win
    // with a fork rooted near genesis: state restoration must fall back to
    // the from-genesis replay and still agree with the oracle.
    let alice = addr(b"alice");
    let miner = addr(b"miner");
    let fork_miner = addr(b"fork-miner");
    let mut chain = test_chain(&[(alice, 1_000)]);

    for i in 0..60u64 {
        chain.mine_block(miner, 1_000 + i).unwrap();
    }
    let main_tip = chain.tip();
    assert_eq!(chain.height(), 60);

    let fork_base = chain.store().canonical_block_at_height(1).unwrap();
    let mut parent = fork_base;
    for i in 0..60u64 {
        let block = chain.mine_block_on(parent, fork_miner, 100_000 + i).unwrap();
        parent = block.hash();
    }
    assert_eq!(chain.height(), 61, "fork outgrew the main branch");
    assert!(!chain.store().is_canonical(&main_tip), "old tip abandoned");
    assert_matches_oracle(&chain, "after 59-deep reorg");
    // The fork miner now owns the rewards of the canonical suffix.
    assert_eq!(chain.balance_of(&fork_miner), 60 * chain.params().block_reward);
}

#[test]
fn duplicate_tip_delivery_is_a_cheap_noop() {
    let alice = addr(b"alice");
    let miner = addr(b"miner");
    let mut chain = test_chain(&[(alice, 1_000)]);
    let block = chain.mine_block(miner, 1_000).unwrap();

    let state_before = chain.state().clone();
    // Re-deliver the current tip (duplicate network delivery): accepted
    // idempotently, no state change, not misread as a reorg.
    let hash = chain.accept_block(block.clone()).unwrap();
    assert_eq!(hash, block.hash());
    assert_eq!(chain.tip(), block.hash());
    assert_eq!(chain.state(), &state_before);
    assert_matches_oracle(&chain, "after duplicate tip delivery");
}

#[test]
fn side_branch_inclusion_does_not_swallow_pending_txs() {
    let alice = addr(b"alice");
    let bob = addr(b"bob");
    let miner = addr(b"miner");
    let mut chain = test_chain(&[(alice, 1_000)]);
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
    let genesis = chain.tip();

    // Grow the canonical chain so the genesis fork below stays a side branch.
    chain.mine_block(miner, 1_000).unwrap();
    chain.mine_block(miner, 2_000).unwrap();

    // Submit a payment, then mine it into a *losing* fork off genesis.
    let (inputs, outputs) = chain.plan_payment(&alice, &bob, 40, 1).unwrap();
    let tx = builder.transfer(inputs, outputs, 1);
    let txid = tx.id();
    chain.submit(tx).unwrap();
    let fork_block = chain.mine_block_on(genesis, miner, 3_000).unwrap();
    assert!(!chain.store().is_canonical(&fork_block.hash()), "fork must lose");
    assert!(fork_block.find_tx(&txid).is_some(), "fork block carried the tx");

    // The payment must still be pending and must land canonically later.
    assert_eq!(chain.mempool_len(), 1, "side-branch inclusion kept the tx pending");
    chain.mine_block(miner, 4_000).unwrap();
    assert_eq!(chain.mempool_len(), 0);
    assert!(chain.store().find_canonical_tx(&txid).is_some(), "tx reached the canonical chain");
    assert_eq!(chain.balance_of(&bob), 40);
    assert_matches_oracle(&chain, "after side-branch then canonical inclusion");
}

#[test]
fn winning_fork_flushes_its_txs_from_the_mempool() {
    let alice = addr(b"alice");
    let bob = addr(b"bob");
    let miner = addr(b"miner");
    let mut chain = test_chain(&[(alice, 1_000)]);
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
    let genesis = chain.tip();
    chain.mine_block(miner, 1_000).unwrap();
    chain.mine_block(miner, 1_500).unwrap();

    // Mine the payment into a fork off genesis, then extend the fork until
    // it strictly outgrows the main branch. The first fork block is a side
    // branch at height 1 vs a height-2 chain (unambiguously losing, no
    // tie-break involved), so the tx stays pending; the reorg must then
    // flush it.
    let (inputs, outputs) = chain.plan_payment(&alice, &bob, 25, 1).unwrap();
    let tx = builder.transfer(inputs, outputs, 1);
    let txid = tx.id();
    chain.submit(tx).unwrap();
    let f1 = chain.mine_block_on(genesis, miner, 2_000).unwrap();
    assert_eq!(chain.mempool_len(), 1, "tx pending while the fork is losing");
    let f2 = chain.mine_block_on(f1.hash(), miner, 3_000).unwrap();
    chain.mine_block_on(f2.hash(), miner, 4_000).unwrap();

    assert!(chain.store().is_canonical(&f1.hash()), "fork won the reorg");
    assert_eq!(chain.mempool_len(), 0, "reorg flushed the now-canonical tx");
    assert_eq!(chain.store().find_canonical_tx(&txid).map(|(h, _)| h), Some(f1.hash()));
    assert_eq!(chain.balance_of(&bob), 25);
    assert_matches_oracle(&chain, "after winning fork flush");
}

#[test]
fn canonical_indexes_agree_with_parent_walk() {
    // The height and tx indexes must agree with first-principles parent-link
    // walks after heavy forking.
    let alice = addr(b"alice");
    let bob = addr(b"bob");
    let miner = addr(b"miner");
    let mut chain = test_chain(&[(alice, 50_000)]);
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
    let mut rng = Rng(7);
    let mut submitted = Vec::new();

    for step in 0..60u64 {
        let now = 1_000 * (step + 1);
        if rng.below(2) == 0 {
            if let Some((inputs, outputs)) = chain.plan_payment(&alice, &bob, 3, 1) {
                let tx = builder.transfer(inputs, outputs, 1);
                submitted.push(tx.id());
                chain.submit(tx).unwrap();
            }
            chain.mine_block(miner, now).unwrap();
        } else {
            let depth = rng.below(4);
            let height = chain.height().saturating_sub(depth);
            let parent = chain.store().canonical_block_at_height(height).unwrap();
            chain.mine_block_on(parent, miner, now).unwrap();
        }
    }

    let store = chain.store();
    // Walk the canonical chain by parent links and compare every answer.
    let mut by_walk = Vec::new();
    let mut cursor = chain.tip();
    loop {
        by_walk.push(cursor);
        let header = store.header(&cursor).unwrap();
        if header.is_genesis() {
            break;
        }
        cursor = header.parent;
    }
    by_walk.reverse();
    assert_eq!(store.canonical_hashes(), by_walk.as_slice());
    for (height, hash) in by_walk.iter().enumerate() {
        assert_eq!(store.canonical_block_at_height(height as u64), Some(*hash));
        assert!(store.is_canonical(hash));
        assert_eq!(store.depth_of(hash), Some((by_walk.len() - 1 - height) as u64));
    }
    // Every canonical tx the index reports must really be in that block at
    // that position; every submitted tx found canonically must match a scan.
    for txid in &submitted {
        let indexed = store.find_canonical_tx(txid);
        let scanned =
            by_walk.iter().find_map(|h| store.get(h).unwrap().find_tx(txid).map(|idx| (*h, idx)));
        assert_eq!(indexed, scanned, "tx index diverged for {txid}");
    }
}
