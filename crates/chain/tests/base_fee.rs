//! Differential and property tests of the dynamic per-block base fee.
//!
//! The base fee lives in the derived [`ChainState`] and is updated by every
//! accepted canonical block from the parent block's fullness, so it must
//! obey three invariants whatever the workload:
//!
//! 1. **Bounded movement** — between consecutive canonical states the base
//!    fee never moves by more than the schedule's max per-block adjustment
//!    (`max(1, current · max_change_pct / 100)`).
//! 2. **Floor** — it never drops below the schedule's floor.
//! 3. **Reorg determinism** — after any reorg the materialized base fee
//!    equals a from-fork-point replay, checked here against the
//!    from-genesis oracle [`Blockchain::replay_state_from_genesis`] (the
//!    same differential pattern as `incremental_state.rs`).

use ac3_chain::{
    coinbase, Address, Amount, BaseFeeSchedule, Blockchain, ChainId, ChainParams, EchoVm, OutPoint,
    TxBuilder, TxOutput,
};
use ac3_crypto::KeyPair;
use proptest::Gen;
use std::sync::Arc;

fn addr(seed: &[u8]) -> Address {
    Address::from(KeyPair::from_seed(seed).public())
}

// Generous enough that the admission floor stays affordable even after the
// worst-case geometric base-fee climb a test can produce.
const OUTPUT_VALUE: Amount = 1_000_000;

/// A chain whose blocks hold `budget` transactions, priced by `schedule`,
/// with `outputs` independent genesis coinbases so random demand never
/// conflicts in the mempool.
fn chain_with(schedule: BaseFeeSchedule, budget: u64, outputs: usize) -> (Blockchain, Address) {
    let alice = addr(b"alice");
    let mut params = ChainParams::test("base-fee-prop");
    params.block_interval_ms = 1_000;
    params.tps = budget;
    params.base_fee_schedule = schedule;
    let allocs = vec![(alice, OUTPUT_VALUE); outputs];
    (Blockchain::new(ChainId(0), params, Arc::new(EchoVm), &allocs), alice)
}

/// Submit `count` single-input transfers at the current admission floor,
/// each spending its own genesis coinbase (`spent` advances the cursor).
fn submit_demand(
    chain: &mut Blockchain,
    builder: &mut TxBuilder,
    alice: Address,
    spent: &mut u64,
    count: u64,
) {
    for _ in 0..count {
        let input = OutPoint::new(coinbase(alice, OUTPUT_VALUE, *spent).id(), 0);
        *spent += 1;
        let fee = chain.mempool_fee_floor();
        let change = vec![TxOutput::new(alice, OUTPUT_VALUE - fee)];
        chain.submit(builder.transfer(vec![input], change, fee)).unwrap();
    }
}

#[test]
fn base_fee_moves_within_bounds_under_random_demand() {
    // Random schedules × random per-block demand: the per-block movement
    // bound and the floor hold at every canonical extension.
    let mut rng = Gen::deterministic("base_fee::bounds");
    for case in 0..8 {
        let schedule = BaseFeeSchedule {
            floor: rng.below(4),
            target_utilisation_pct: 25 + 25 * rng.below(3) as u32, // 25/50/75
            max_change_pct: rng.below(30) as u32,                  // 0 disables
        };
        let budget = 2 + rng.below(5); // 2..=6 txs per block
        let (mut chain, alice) = chain_with(schedule, budget, 512);
        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let miner = addr(b"miner");
        let mut spent = 0u64;

        for block in 0..40u64 {
            let before = chain.base_fee();
            let demand = rng.below(budget + 2); // sometimes overfull, sometimes idle
            submit_demand(&mut chain, &mut builder, alice, &mut spent, demand);
            chain.mine_block(miner, 1_000 * (block + 1)).unwrap();
            let after = chain.base_fee();
            let ctx = format!("case {case} block {block}: {before} -> {after} ({schedule:?})");
            assert!(after >= schedule.floor, "floor violated: {ctx}");
            if schedule.max_change_pct == 0 {
                assert_eq!(after, before, "static schedule moved: {ctx}");
            } else {
                assert!(
                    after.abs_diff(before) <= schedule.max_step(before),
                    "max per-block adjustment violated: {ctx}"
                );
            }
        }
        // The mempool's admission gate always mirrors the canonical state.
        assert_eq!(chain.mempool_fee_floor().max(chain.base_fee()), chain.mempool_fee_floor());
        assert_eq!(chain.state(), &chain.replay_state_from_genesis(), "case {case}: oracle");
    }
}

#[test]
fn random_reorgs_replay_the_base_fee_from_the_fork_point() {
    // The incremental_state.rs differential pattern with the base fee in
    // play: random interleavings of demand-heavy tip extensions and fork
    // mining (which reorgs onto emptier branches), comparing the full
    // materialized state — base fee included — against the from-genesis
    // replay oracle after every step.
    let schedule = BaseFeeSchedule::eip1559_like();
    let (mut chain, alice) = chain_with(schedule, 4, 1024);
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
    let miner = addr(b"miner");
    let mut rng = Gen::deterministic("base_fee::reorgs");
    let mut spent = 0u64;
    let mut reorgs_seen = 0u32;

    for step in 0..120u64 {
        let now = 1_000 * (step + 1);
        let roll = rng.below(10);
        if roll < 5 {
            // Extend the tip with random demand (often full blocks, so the
            // base fee climbs and the branches genuinely disagree on it).
            submit_demand(&mut chain, &mut builder, alice, &mut spent, rng.below(6));
            chain.mine_block(miner, now).unwrap();
        } else {
            // Mine on an ancestor or — more often than not — a competing
            // fork tip, so side branches grow long enough to win: the
            // winning branch carries different fullness history, and its
            // base fee must be re-derived from the fork point.
            let tip_before = chain.tip();
            let parent = if roll >= 7 {
                chain.store().tips().into_iter().find(|t| *t != tip_before).unwrap_or(tip_before)
            } else {
                let depth = 1 + rng.below(4);
                let height = chain.height().saturating_sub(depth);
                chain.store().canonical_block_at_height(height).unwrap()
            };
            chain.mine_block_on(parent, miner, now).unwrap();
            if chain.tip() != tip_before && !chain.store().is_canonical(&tip_before) {
                reorgs_seen += 1;
            }
        }
        let oracle = chain.replay_state_from_genesis();
        assert_eq!(
            chain.state(),
            &oracle,
            "step {step}: incremental state (incl. base fee) diverged from full replay"
        );
        assert_eq!(chain.base_fee(), oracle.base_fee, "step {step}: base fee diverged");
    }
    assert!(reorgs_seen > 0, "interleaving never produced a reorg — test lost its teeth");
    assert!(chain.base_fee() >= schedule.floor);
}

#[test]
fn deep_reorg_past_snapshot_capacity_rederives_the_base_fee() {
    // A fork rooted near genesis outgrows a demand-heavy main branch: the
    // replayed base fee must match the oracle even when state restoration
    // falls back past the snapshot cache, and the emptier branch must not
    // inherit the demand branch's elevated fee.
    let schedule = BaseFeeSchedule::eip1559_like();
    let (mut chain, alice) = chain_with(schedule, 4, 1024);
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
    let miner = addr(b"miner");
    let fork_miner = addr(b"fork-miner");
    let mut spent = 0u64;

    for i in 0..40u64 {
        submit_demand(&mut chain, &mut builder, alice, &mut spent, 4);
        chain.mine_block(miner, 1_000 * (i + 1)).unwrap();
    }
    let elevated = chain.base_fee();
    assert!(elevated > schedule.floor + 10, "sustained demand raised the fee (got {elevated})");

    let fork_base = chain.store().canonical_block_at_height(1).unwrap();
    let mut parent = fork_base;
    for i in 0..60u64 {
        let block = chain.mine_block_on(parent, fork_miner, 100_000 + i).unwrap();
        parent = block.hash();
    }
    assert_eq!(chain.height(), 61, "fork outgrew the main branch");
    let oracle = chain.replay_state_from_genesis();
    assert_eq!(chain.state(), &oracle, "deep reorg: state equals from-genesis replay");
    assert!(
        chain.base_fee() < elevated,
        "the empty branch decayed the fee ({} vs {elevated})",
        chain.base_fee()
    );
    assert_eq!(chain.base_fee(), schedule.floor, "59 empty blocks reach the floor");
}
