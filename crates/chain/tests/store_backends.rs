//! Cross-backend differential suite: the paged, file-backed block store must
//! be observationally identical to the in-memory store.
//!
//! Twin chains — one per backend — are driven through identical random
//! sequences of payments, tip extensions, fork mining and reorgs (the block
//! mined on one backend is fed to the other via `accept_block`, alternating
//! which side mines so both backends exercise both the mining and the
//! acceptance path). After every step the fork choice must agree exactly;
//! at the end the canonical chain, the derived state and the transaction
//! index must be bitwise identical — even with a buffer pool of only 4 tiny
//! pages, under every replacement policy, with eviction demonstrably
//! exercised.

use ac3_chain::{
    Address, Amount, Blockchain, ChainId, ChainParams, EchoVm, PolicyKind, StoreConfig, TxBuilder,
    TxId,
};
use ac3_crypto::KeyPair;
use proptest::Gen;
use std::sync::Arc;

fn addr(seed: &[u8]) -> Address {
    Address::from(KeyPair::from_seed(seed).public())
}

/// Twin chains with identical genesis: one on the in-memory backend, one on
/// a deliberately tiny paged pool so eviction churns constantly.
fn twin_chains(policy: PolicyKind, allocs: &[(Address, Amount)]) -> (Blockchain, Blockchain) {
    let memory = Blockchain::with_store_config(
        ChainId(0),
        ChainParams::test("backends"),
        Arc::new(EchoVm),
        allocs,
        StoreConfig::Memory,
    );
    let paged = Blockchain::with_store_config(
        ChainId(0),
        ChainParams::test("backends"),
        Arc::new(EchoVm),
        allocs,
        StoreConfig::Paged { pool_pages: 4, page_size: 512, policy },
    );
    (memory, paged)
}

/// Everything observable must match: fork choice, canonical chain, headers,
/// derived state, transaction index.
fn assert_backends_agree(memory: &Blockchain, paged: &Blockchain, context: &str) {
    assert_eq!(memory.tip(), paged.tip(), "tip diverged ({context})");
    assert_eq!(memory.height(), paged.height(), "height diverged ({context})");
    assert_eq!(
        memory.store().canonical_hashes(),
        paged.store().canonical_hashes(),
        "canonical chain diverged ({context})"
    );
    assert_eq!(memory.state(), paged.state(), "derived state diverged ({context})");
}

#[test]
fn random_fork_histories_are_identical_across_backends() {
    let alice = addr(b"alice");
    let bob = addr(b"bob");
    let miner = addr(b"miner");

    for policy in PolicyKind::all() {
        let mut gen = Gen::deterministic(&format!("store_backends::{}", policy.name()));
        let (mut memory, mut paged) = twin_chains(policy, &[(alice, 100_000), (bob, 50_000)]);
        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let mut submitted: Vec<TxId> = Vec::new();
        let mut reorgs_seen = 0u32;

        for step in 0..100u64 {
            let now = 1_000 * (step + 1);
            let roll = gen.below(10);
            if roll < 6 {
                // Extend the canonical tip, sometimes with a payment. The
                // transaction is built once and submitted to both chains.
                if roll < 3 {
                    if let Some((inputs, outputs)) =
                        memory.plan_payment(&alice, &bob, 1 + gen.below(40), 1)
                    {
                        let tx = builder.transfer(inputs, outputs, 1);
                        submitted.push(tx.id());
                        memory.submit(tx.clone()).unwrap();
                        paged.submit(tx).unwrap();
                    }
                }
                let (a, b) = if step % 2 == 0 {
                    (&mut memory, &mut paged)
                } else {
                    (&mut paged, &mut memory)
                };
                let block = a.mine_block(miner, now).unwrap();
                b.accept_block(block).unwrap();
            } else {
                // Mine on an ancestor or a competing fork tip.
                let tip_before = memory.tip();
                let parent = if roll == 9 {
                    memory
                        .store()
                        .tips()
                        .into_iter()
                        .find(|t| *t != tip_before)
                        .unwrap_or(tip_before)
                } else {
                    let depth = 1 + gen.below(5);
                    let height = memory.height().saturating_sub(depth);
                    memory.store().canonical_block_at_height(height).unwrap()
                };
                let (a, b) = if step % 2 == 0 {
                    (&mut memory, &mut paged)
                } else {
                    (&mut paged, &mut memory)
                };
                let block = a.mine_block_on(parent, miner, now).unwrap();
                b.accept_block(block).unwrap();
                reorgs_seen += u32::from(
                    memory.tip() != tip_before && !memory.store().is_canonical(&tip_before),
                );
            }
            assert_backends_agree(&memory, &paged, &format!("{} step {step}", policy.name()));
        }

        // The transaction index agrees for every transaction ever submitted
        // (canonical location or absence alike).
        for txid in &submitted {
            assert_eq!(
                memory.store().find_canonical_tx(txid),
                paged.store().find_canonical_tx(txid),
                "tx index diverged under {}",
                policy.name()
            );
        }
        // Header evidence from genesis agrees.
        let genesis = memory.store().genesis().unwrap();
        assert_eq!(
            memory.headers_since(&genesis),
            paged.headers_since(&genesis),
            "header evidence diverged under {}",
            policy.name()
        );
        assert!(
            reorgs_seen > 0,
            "history under {} never reorged — test lost its teeth",
            policy.name()
        );

        // The tiny pool really was under pressure: the chain outgrew it by
        // an order of magnitude and eviction ran.
        let stats = paged.store_stats();
        assert_eq!(stats.backend, "paged");
        assert!(
            stats.bytes_stored > 10 * 4 * 512,
            "chain must outgrow the pool ≥10×, got {} bytes under {}",
            stats.bytes_stored,
            policy.name()
        );
        assert!(stats.evictions > 0, "eviction never ran under {}", policy.name());
        assert!(stats.hits + stats.misses > 0);
        assert_eq!(memory.store_stats().backend, "memory");
    }
}
