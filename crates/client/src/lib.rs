//! # ac3-client
//!
//! The end-user client library for the AC3WN reproduction — the layer a
//! downstream application would embed to execute atomic cross-chain
//! transactions, on top of the protocol drivers in `ac3-core`.
//!
//! The paper's end users appear in three roles, and each gets a module:
//!
//! * **identity and funds** — [`wallet::Wallet`]: a named key pair with
//!   balance queries against the simulated multi-chain world;
//! * **agreeing on the AC2T** — [`negotiation`]: the off-chain message flow
//!   in which one participant proposes the graph `D = (V, E)` and every
//!   participant contributes a signature share until the multisignature
//!   `ms(D)` of Equation 1 is complete;
//! * **executing the AC2T** — [`session::SwapSession`]: a persistent,
//!   resumable state machine that walks the AC3WN phases (register `SC_w`,
//!   deploy contracts in parallel, decide, settle). Every intermediate state
//!   serialises to JSON, so a client that crashes mid-swap reloads the
//!   session and continues — the *commitment* property of the protocol made
//!   concrete at the client layer.
//!
//! ```
//! use ac3_client::{Negotiation, SwapSession, Wallet};
//! use ac3_core::scenario::{two_party_scenario, ScenarioConfig};
//! use ac3_core::ProtocolConfig;
//!
//! // The scenario provides the chains and funded participants.
//! let mut scenario = two_party_scenario(50, 80, &ScenarioConfig::default());
//!
//! // Off-chain: negotiate and multisign the swap graph.
//! let alice = Wallet::new("alice");
//! let bob = Wallet::new("bob");
//! let mut negotiation = Negotiation::new(scenario.graph.clone());
//! negotiation.submit(alice.sign_proposal(negotiation.proposal())).unwrap();
//! negotiation.submit(bob.sign_proposal(negotiation.proposal())).unwrap();
//! let signed = negotiation.finalize().unwrap();
//!
//! // On-chain: drive the AC3WN phases to completion.
//! let mut session = SwapSession::new(
//!     signed,
//!     scenario.witness_chain,
//!     ProtocolConfig::default(),
//! ).unwrap();
//! session
//!     .run_to_completion(&mut scenario.world, &mut scenario.participants)
//!     .unwrap();
//! assert!(session.verdict(&scenario.world).is_atomic());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod negotiation;
pub mod session;
pub mod wallet;

pub use error::ClientError;
pub use negotiation::{Negotiation, SignatureShare, SignedSwap, SwapProposal};
pub use session::{SessionPhase, SwapSession};
pub use wallet::Wallet;
