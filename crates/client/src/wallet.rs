//! End-user wallets: a named identity (key pair) plus balance queries
//! against the simulated multi-chain world.
//!
//! In the paper's system model (Section 2), end users "have identities,
//! defined by their public keys, and signatures, generated using their
//! private keys". A [`Wallet`] is that identity from the application's point
//! of view: it derives the same deterministic key pair the simulation layer
//! uses for a participant of the same name, so a wallet named `"alice"`
//! controls the funds the scenario builders granted to the participant
//! `"alice"`.

use crate::negotiation::{SignatureShare, SwapProposal};
use ac3_chain::{Address, Amount, ChainId};
use ac3_crypto::{KeyPair, PublicKey};
use ac3_sim::World;
use std::collections::BTreeMap;

/// A named end-user identity.
#[derive(Debug, Clone)]
pub struct Wallet {
    name: String,
    keypair: KeyPair,
}

impl Wallet {
    /// Create a wallet whose key pair is derived deterministically from its
    /// name — matching [`ac3_sim::Participant`]'s derivation, so the wallet
    /// and the simulated participant of the same name are the same identity.
    pub fn new(name: &str) -> Self {
        Wallet { name: name.to_string(), keypair: KeyPair::from_seed(name.as_bytes()) }
    }

    /// Create a wallet from an explicit seed (for identities that are not
    /// scenario participants, e.g. an exchange or an attacker).
    pub fn from_seed(name: &str, seed: &[u8]) -> Self {
        Wallet { name: name.to_string(), keypair: KeyPair::from_seed(seed) }
    }

    /// The wallet's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wallet's key pair.
    pub fn keypair(&self) -> KeyPair {
        self.keypair
    }

    /// The wallet's public key.
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public()
    }

    /// The wallet's address (the same on every chain; identities are public
    /// keys, Section 2.2).
    pub fn address(&self) -> Address {
        Address::from(self.keypair.public())
    }

    /// Contribute this wallet's signature share to a swap proposal (the
    /// per-participant half of assembling `ms(D)`).
    pub fn sign_proposal(&self, proposal: &SwapProposal) -> SignatureShare {
        SignatureShare {
            signer: self.public_key(),
            signature: self.keypair.sign(&proposal.message()),
        }
    }

    /// The wallet's balance on one chain.
    pub fn balance_on(&self, world: &World, chain: ChainId) -> Amount {
        world.chain(chain).map(|c| c.balance_of(&self.address())).unwrap_or(0)
    }

    /// The wallet's balances across the given chains.
    pub fn balances(&self, world: &World, chains: &[ChainId]) -> BTreeMap<ChainId, Amount> {
        chains.iter().map(|c| (*c, self.balance_on(world, *c))).collect()
    }

    /// The wallet's total balance over every chain in the world.
    pub fn total_balance(&self, world: &World) -> Amount {
        world.chain_ids().iter().map(|c| self.balance_on(world, *c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_core::scenario::{two_party_scenario, ScenarioConfig};

    #[test]
    fn wallet_matches_scenario_participant_identity() {
        let s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let wallet = Wallet::new("alice");
        let participant = s.participants.get("alice").unwrap();
        assert_eq!(wallet.address(), participant.address());
        assert_eq!(wallet.name(), "alice");
    }

    #[test]
    fn balances_reflect_genesis_funding() {
        let s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let wallet = Wallet::new("alice");
        // Funded with 1 000 on every chain (2 asset chains + witness chain).
        assert_eq!(wallet.balance_on(&s.world, s.asset_chains[0]), 1_000);
        assert_eq!(wallet.total_balance(&s.world), 3_000);
        let per_chain = wallet.balances(&s.world, &s.asset_chains);
        assert_eq!(per_chain.len(), 2);
        assert!(per_chain.values().all(|b| *b == 1_000));
    }

    #[test]
    fn unknown_chain_reads_as_zero() {
        let s = two_party_scenario(1, 1, &ScenarioConfig::default());
        let wallet = Wallet::new("alice");
        assert_eq!(wallet.balance_on(&s.world, ChainId(999)), 0);
    }

    #[test]
    fn distinct_seeds_give_distinct_identities() {
        let a = Wallet::new("alice");
        let b = Wallet::from_seed("alice-backup", b"completely different entropy");
        assert_ne!(a.address(), b.address());
    }

    #[test]
    fn signature_share_verifies_against_the_proposal() {
        let s = two_party_scenario(5, 6, &ScenarioConfig::default());
        let proposal = SwapProposal::new(s.graph.clone());
        let wallet = Wallet::new("alice");
        let share = wallet.sign_proposal(&proposal);
        assert_eq!(share.signer, wallet.public_key());
        assert!(share.signer.verifies(&proposal.message(), &share.signature));
    }
}
