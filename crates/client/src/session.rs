//! Persistent, resumable AC3WN swap sessions.
//!
//! A [`SwapSession`] walks the four AC3WN phases of Section 4.2 — register
//! the witness contract `SC_w`, deploy every asset contract in parallel,
//! change `SC_w`'s state (the commit/abort decision), settle every asset
//! contract — one [`SwapSession::step`] at a time, recording everything it
//! needs to continue (contract ids, transaction ids, the stored witness
//! anchor, the decision) in a serialisable state.
//!
//! That persistence is what makes the paper's *commitment* guarantee usable
//! from a client: a participant that crashes after the decision can reload
//! the session from disk, reconstruct the witness-state evidence from the
//! public chains, and settle — there is no timelock racing against the
//! recovery, unlike the Nolan/Herlihy baselines.

use crate::error::ClientError;
use crate::negotiation::SignedSwap;
use ac3_chain::{Amount, ChainId, ContractId, TxId};
use ac3_contracts::{
    ChainAnchor, ContractCall, ContractSpec, ExpectedContract, PermissionlessCall,
    PermissionlessSpec, WitnessCall, WitnessSpec, WitnessStateEvidence,
};
use ac3_core::actions::{call_contract, deploy_contract, edge_disposition};
use ac3_core::audit::AtomicityVerdict;
use ac3_core::graph::SwapGraph;
use ac3_core::protocol::{EdgeDisposition, EdgeOutcome, ProtocolConfig};
use ac3_core::ProtocolError;
use ac3_crypto::WitnessState;
use ac3_sim::{ParticipantSet, World};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a session is in the AC3WN lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionPhase {
    /// The graph is signed; nothing is on any chain yet.
    Created,
    /// `SC_w` is registered on the witness chain and publicly recognised.
    WitnessRegistered,
    /// Every available participant has deployed their asset contract.
    ContractsDeployed,
    /// The witness network recorded the commit or abort decision.
    Decided,
    /// Every deployed contract has been redeemed or refunded.
    Settled,
}

impl fmt::Display for SessionPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SessionPhase::Created => "Created",
            SessionPhase::WitnessRegistered => "WitnessRegistered",
            SessionPhase::ContractsDeployed => "ContractsDeployed",
            SessionPhase::Decided => "Decided",
            SessionPhase::Settled => "Settled",
        };
        write!(f, "{s}")
    }
}

/// A persistent AC3WN swap session.
///
/// The entire struct serialises to JSON ([`SwapSession::to_json`]); a
/// reloaded session continues from the phase it was saved in, reading
/// everything else it needs from the public chains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwapSession {
    graph: SwapGraph,
    multisig: ac3_crypto::GraphMultisig,
    config: ProtocolConfig,
    witness_chain: ChainId,
    phase: SessionPhase,
    /// Expected asset contracts (one per edge), fixed at registration time.
    expected: Vec<ExpectedContract>,
    witness_contract: Option<ContractId>,
    witness_registration_tx: Option<TxId>,
    witness_anchor: Option<ChainAnchor>,
    /// Deployment per edge: `None` until attempted / if the sender was down.
    deployments: Vec<Option<(TxId, ContractId)>>,
    decision: Option<bool>,
    authorize_tx: Option<TxId>,
    fees_paid: Amount,
}

impl SwapSession {
    /// Create a session from a fully signed swap. The multisignature is
    /// re-verified so a session can never be created over a graph some
    /// participant did not agree to.
    pub fn new(
        signed: SignedSwap,
        witness_chain: ChainId,
        config: ProtocolConfig,
    ) -> Result<Self, ClientError> {
        signed.multisig.verify(&signed.graph.participant_keys())?;
        let edge_count = signed.graph.contract_count();
        Ok(SwapSession {
            graph: signed.graph,
            multisig: signed.multisig,
            config,
            witness_chain,
            phase: SessionPhase::Created,
            expected: Vec::new(),
            witness_contract: None,
            witness_registration_tx: None,
            witness_anchor: None,
            deployments: vec![None; edge_count],
            decision: None,
            authorize_tx: None,
            fees_paid: 0,
        })
    }

    /// The session's current phase.
    pub fn phase(&self) -> SessionPhase {
        self.phase
    }

    /// The agreed swap graph.
    pub fn graph(&self) -> &SwapGraph {
        &self.graph
    }

    /// The commit/abort decision, once reached.
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// Total fees the session has paid so far (deployments + calls).
    pub fn fees_paid(&self) -> Amount {
        self.fees_paid
    }

    /// The witness contract, once registered.
    pub fn witness_contract(&self) -> Option<ContractId> {
        self.witness_contract
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Serialise the session to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("session state serialises")
    }

    /// Restore a session from JSON produced by [`SwapSession::to_json`].
    pub fn from_json(json: &str) -> Result<Self, ClientError> {
        serde_json::from_str(json).map_err(|e| ClientError::Persistence(e.to_string()))
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Perform the next phase of the protocol and return the phase the
    /// session is in afterwards. Calling `step` on a settled session is an
    /// error.
    pub fn step(
        &mut self,
        world: &mut World,
        participants: &mut ParticipantSet,
    ) -> Result<SessionPhase, ClientError> {
        match self.phase {
            SessionPhase::Created => self.register_witness(world, participants),
            SessionPhase::WitnessRegistered => self.deploy_contracts(world, participants),
            SessionPhase::ContractsDeployed => self.decide(world, participants),
            SessionPhase::Decided => self.settle(world, participants),
            SessionPhase::Settled => Err(ClientError::InvalidPhase {
                action: "step".to_string(),
                phase: self.phase.to_string(),
            }),
        }
    }

    /// Run phases until the session settles (or `max_steps` are exhausted;
    /// settlement can take several attempts when participants are crashed).
    pub fn run_to_completion(
        &mut self,
        world: &mut World,
        participants: &mut ParticipantSet,
    ) -> Result<SessionPhase, ClientError> {
        let max_steps = 4 + self.config.wait_cap_deltas as usize;
        for _ in 0..max_steps {
            if self.phase == SessionPhase::Settled {
                break;
            }
            let before = self.phase;
            self.step(world, participants)?;
            if self.phase == before {
                // Settlement is waiting on a crashed participant; give the
                // world a Δ and try again.
                world.advance(world.delta_ms());
            }
        }
        Ok(self.phase)
    }

    /// The outcome of every edge, read from the chains.
    pub fn outcomes(&self, world: &World) -> Vec<EdgeOutcome> {
        self.graph
            .edges()
            .iter()
            .zip(&self.deployments)
            .map(|(e, d)| {
                let contract = d.map(|(_, c)| c);
                EdgeOutcome {
                    edge: *e,
                    contract,
                    disposition: edge_disposition(world, e.chain, contract),
                }
            })
            .collect()
    }

    /// The atomicity verdict over the current on-chain outcomes.
    pub fn verdict(&self, world: &World) -> AtomicityVerdict {
        AtomicityVerdict::from_outcomes(&self.outcomes(world))
    }

    // ------------------------------------------------------------------
    // Phase implementations
    // ------------------------------------------------------------------

    fn wait_cap(&self, world: &World) -> u64 {
        world.delta_ms() * self.config.wait_cap_deltas
    }

    fn first_available(
        &self,
        world: &World,
        participants: &ParticipantSet,
    ) -> Option<ac3_chain::Address> {
        let now = world.now();
        self.graph
            .participants()
            .iter()
            .copied()
            .find(|a| participants.by_address(a).is_some_and(|p| p.is_available(now)))
    }

    fn register_witness(
        &mut self,
        world: &mut World,
        participants: &mut ParticipantSet,
    ) -> Result<SessionPhase, ClientError> {
        let mut expected = Vec::with_capacity(self.graph.contract_count());
        for e in self.graph.edges() {
            expected.push(ExpectedContract {
                chain: e.chain,
                sender: e.from,
                recipient: e.to,
                amount: e.amount,
                anchor: world.anchor(e.chain)?,
                required_depth: self.config.deployment_depth,
            });
        }
        let spec = ContractSpec::Witness(WitnessSpec {
            participants: self.graph.participants().to_vec(),
            // The multisignature digest binds SC_w to the exact agreed
            // graph, as in Algorithm 3's constructor.
            graph_digest: self.multisig.digest(),
            expected_contracts: expected.clone(),
            operator: None,
            stake: 0,
        });
        let registrant = self.first_available(world, participants).ok_or_else(|| {
            ClientError::Protocol(ProtocolError::World("no participant available".into()))
        })?;
        let Some((txid, contract)) =
            deploy_contract(world, participants, &registrant, self.witness_chain, &spec, 0)?
        else {
            return Err(ClientError::Protocol(ProtocolError::World(
                "registrant became unavailable".into(),
            )));
        };
        self.fees_paid += world.chain(self.witness_chain)?.params().deploy_fee;
        let cap = self.wait_cap(world);
        world.wait_for_depth(self.witness_chain, txid, self.config.witness_depth, cap)?;

        self.expected = expected;
        self.witness_contract = Some(contract);
        self.witness_registration_tx = Some(txid);
        self.witness_anchor = Some(world.anchor(self.witness_chain)?);
        self.phase = SessionPhase::WitnessRegistered;
        Ok(self.phase)
    }

    fn deploy_contracts(
        &mut self,
        world: &mut World,
        participants: &mut ParticipantSet,
    ) -> Result<SessionPhase, ClientError> {
        let scw = self.witness_contract.expect("phase invariant: witness registered");
        let anchor = self.witness_anchor.expect("phase invariant: witness registered");
        let edges: Vec<_> = self.graph.edges().to_vec();
        for (i, e) in edges.iter().enumerate() {
            if self.deployments[i].is_some() {
                continue;
            }
            let spec = ContractSpec::Permissionless(PermissionlessSpec {
                recipient: e.to,
                witness_chain: self.witness_chain,
                witness_contract: scw,
                min_depth: self.config.witness_depth,
                witness_anchor: anchor,
            });
            if let Some(deployed) =
                deploy_contract(world, participants, &e.from, e.chain, &spec, e.amount)?
            {
                self.fees_paid += world.chain(e.chain)?.params().deploy_fee;
                self.deployments[i] = Some(deployed);
            }
        }
        // Wait for whatever was submitted to reach the deployment depth.
        let pending: Vec<(ChainId, TxId)> = edges
            .iter()
            .zip(&self.deployments)
            .filter_map(|(e, d)| d.map(|(txid, _)| (e.chain, txid)))
            .collect();
        if !pending.is_empty() {
            let depth = self.config.deployment_depth;
            let cap = self.wait_cap(world);
            let wait_list = pending.clone();
            let _ = world.advance_until("client deployments to stabilise", cap, move |w| {
                wait_list.iter().all(|(chain, txid)| {
                    w.chain(*chain).ok().and_then(|c| c.tx_depth(txid)).is_some_and(|d| d >= depth)
                })
            });
        }
        self.phase = SessionPhase::ContractsDeployed;
        Ok(self.phase)
    }

    fn decide(
        &mut self,
        world: &mut World,
        participants: &mut ParticipantSet,
    ) -> Result<SessionPhase, ClientError> {
        let scw = self.witness_contract.expect("phase invariant: witness registered");
        let all_deployed = self.deployments.iter().all(Option::is_some);
        let commit = all_deployed
            && self.deployments.iter().zip(self.graph.edges()).all(|(d, e)| {
                d.is_some_and(|(txid, _)| {
                    world
                        .chain(e.chain)
                        .ok()
                        .and_then(|c| c.tx_depth(&txid))
                        .is_some_and(|depth| depth >= self.config.deployment_depth)
                })
            });

        let call = if commit {
            let mut evidence = Vec::with_capacity(self.graph.contract_count());
            for (i, e) in self.graph.edges().iter().enumerate() {
                let (txid, _) = self.deployments[i].expect("commit implies deployed");
                evidence.push(world.tx_evidence_since(e.chain, &self.expected[i].anchor, txid)?);
            }
            ContractCall::Witness(WitnessCall::AuthorizeRedeem { deployments: evidence })
        } else {
            ContractCall::Witness(WitnessCall::AuthorizeRefund)
        };

        // Any available participant submits the decision request.
        let mut authorize_tx = None;
        for addr in self.graph.participants().to_vec() {
            if let Some(txid) =
                call_contract(world, participants, &addr, self.witness_chain, scw, &call)?
            {
                self.fees_paid += world.chain(self.witness_chain)?.params().call_fee;
                authorize_tx = Some(txid);
                break;
            }
        }
        let Some(txid) = authorize_tx else {
            // Nobody could reach the witness chain; stay in this phase so a
            // later step retries.
            return Ok(self.phase);
        };
        let cap = self.wait_cap(world);
        world.wait_for_depth(self.witness_chain, txid, self.config.witness_depth, cap)?;
        self.authorize_tx = Some(txid);
        self.decision = Some(commit);
        self.phase = SessionPhase::Decided;
        Ok(self.phase)
    }

    fn settle(
        &mut self,
        world: &mut World,
        participants: &mut ParticipantSet,
    ) -> Result<SessionPhase, ClientError> {
        let commit = self.decision.expect("phase invariant: decided");
        let anchor = self.witness_anchor.expect("phase invariant: witness registered");
        let authorize_tx = self.authorize_tx.expect("phase invariant: decided");
        let evidence = WitnessStateEvidence {
            claimed: if commit {
                WitnessState::RedeemAuthorized
            } else {
                WitnessState::RefundAuthorized
            },
            inclusion: world.tx_evidence_since(self.witness_chain, &anchor, authorize_tx)?,
        };

        let edges: Vec<_> = self.graph.edges().to_vec();
        for (i, e) in edges.iter().enumerate() {
            let Some((_, contract)) = self.deployments[i] else { continue };
            if edge_disposition(world, e.chain, Some(contract)) != EdgeDisposition::Locked {
                continue;
            }
            let (actor, call) = if commit {
                (
                    e.to,
                    ContractCall::Permissionless(PermissionlessCall::Redeem {
                        evidence: evidence.clone(),
                    }),
                )
            } else {
                (
                    e.from,
                    ContractCall::Permissionless(PermissionlessCall::Refund {
                        evidence: evidence.clone(),
                    }),
                )
            };
            if let Some(txid) =
                call_contract(world, participants, &actor, e.chain, contract, &call)?
            {
                self.fees_paid += world.chain(e.chain)?.params().call_fee;
                let _ = world.wait_for_inclusion(e.chain, txid, world.delta_ms() * 2);
            }
        }

        let all_settled = edges.iter().zip(&self.deployments).all(|(e, d)| match d {
            None => true,
            Some((_, contract)) => {
                edge_disposition(world, e.chain, Some(*contract)) != EdgeDisposition::Locked
            }
        });
        if all_settled {
            self.phase = SessionPhase::Settled;
        }
        Ok(self.phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::negotiation::Negotiation;
    use crate::wallet::Wallet;
    use ac3_core::scenario::{custom_scenario, two_party_scenario, Scenario, ScenarioConfig};
    use ac3_sim::CrashWindow;

    fn sign_scenario_graph(scenario: &Scenario, names: &[&str]) -> SignedSwap {
        let mut negotiation = Negotiation::new(scenario.graph.clone());
        for name in names {
            let wallet = Wallet::new(name);
            negotiation.submit(wallet.sign_proposal(negotiation.proposal())).unwrap();
        }
        negotiation.finalize().unwrap()
    }

    fn config() -> ProtocolConfig {
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
    }

    #[test]
    fn happy_path_walks_every_phase_and_commits() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let signed = sign_scenario_graph(&s, &["alice", "bob"]);
        let mut session = SwapSession::new(signed, s.witness_chain, config()).unwrap();
        assert_eq!(session.phase(), SessionPhase::Created);

        assert_eq!(
            session.step(&mut s.world, &mut s.participants).unwrap(),
            SessionPhase::WitnessRegistered
        );
        assert_eq!(
            session.step(&mut s.world, &mut s.participants).unwrap(),
            SessionPhase::ContractsDeployed
        );
        assert_eq!(session.step(&mut s.world, &mut s.participants).unwrap(), SessionPhase::Decided);
        assert_eq!(session.decision(), Some(true));
        assert_eq!(session.step(&mut s.world, &mut s.participants).unwrap(), SessionPhase::Settled);

        assert_eq!(session.verdict(&s.world), AtomicityVerdict::AllRedeemed);
        assert!(session.fees_paid() > 0);
        // Stepping a settled session is a usage error.
        assert!(matches!(
            session.step(&mut s.world, &mut s.participants).unwrap_err(),
            ClientError::InvalidPhase { .. }
        ));
    }

    #[test]
    fn missing_deployment_leads_to_an_atomic_abort() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        s.participants.get_mut("bob").unwrap().schedule_crash(CrashWindow::permanent(0));
        let signed = sign_scenario_graph(&s, &["alice", "bob"]);
        let mut session = SwapSession::new(signed, s.witness_chain, config()).unwrap();
        session.run_to_completion(&mut s.world, &mut s.participants).unwrap();
        assert_eq!(session.decision(), Some(false));
        assert!(session.verdict(&s.world).is_atomic());
        assert_eq!(session.verdict(&s.world), AtomicityVerdict::AllRefunded);
    }

    #[test]
    fn session_survives_a_crash_via_json_round_trip() {
        // Drive the session up to the decision, persist it, drop it, reload
        // it, and settle from the reloaded copy — the client-level crash
        // recovery story.
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let signed = sign_scenario_graph(&s, &["alice", "bob"]);
        let mut session = SwapSession::new(signed, s.witness_chain, config()).unwrap();
        session.step(&mut s.world, &mut s.participants).unwrap();
        session.step(&mut s.world, &mut s.participants).unwrap();
        session.step(&mut s.world, &mut s.participants).unwrap();
        assert_eq!(session.phase(), SessionPhase::Decided);

        let snapshot = session.to_json();
        drop(session);
        // Simulated downtime: the world keeps producing blocks meanwhile.
        s.world.advance(20_000);

        let mut recovered = SwapSession::from_json(&snapshot).unwrap();
        assert_eq!(recovered.phase(), SessionPhase::Decided);
        assert_eq!(recovered.decision(), Some(true));
        recovered.run_to_completion(&mut s.world, &mut s.participants).unwrap();
        assert_eq!(recovered.phase(), SessionPhase::Settled);
        assert_eq!(recovered.verdict(&s.world), AtomicityVerdict::AllRedeemed);
    }

    #[test]
    fn settlement_retries_until_a_crashed_recipient_recovers() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        // Alice is down during the first settlement attempt but recovers.
        s.participants
            .get_mut("alice")
            .unwrap()
            .schedule_crash(CrashWindow { from: 20_000, until: 60_000 });
        let signed = sign_scenario_graph(&s, &["alice", "bob"]);
        let mut session = SwapSession::new(signed, s.witness_chain, config()).unwrap();
        let phase = session.run_to_completion(&mut s.world, &mut s.participants).unwrap();
        assert_eq!(phase, SessionPhase::Settled);
        assert_eq!(session.verdict(&s.world), AtomicityVerdict::AllRedeemed);
    }

    #[test]
    fn session_rejects_an_incomplete_multisignature() {
        let s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let mut negotiation = Negotiation::new(s.graph.clone());
        let alice = Wallet::new("alice");
        negotiation.submit(alice.sign_proposal(negotiation.proposal())).unwrap();
        // Bypass finalize() to simulate a client handed a half-signed swap.
        let graph = s.graph.clone();
        let multisig = {
            let mut ms = graph.start_multisig();
            ms.sign_with(&alice.keypair()).unwrap();
            ms
        };
        let err = SwapSession::new(SignedSwap { graph, multisig }, s.witness_chain, config())
            .unwrap_err();
        assert!(matches!(err, ClientError::Multisig(_)));
    }

    #[test]
    fn corrupted_persisted_state_is_reported() {
        assert!(matches!(
            SwapSession::from_json("{not json").unwrap_err(),
            ClientError::Persistence(_)
        ));
    }

    #[test]
    fn multi_party_supply_chain_session_commits() {
        let names = ["manufacturer", "shipper", "retailer"];
        let mut s = custom_scenario(
            &names,
            &[(0, 1, 40), (1, 2, 25), (2, 0, 60)],
            &ScenarioConfig::default(),
        );
        let signed = sign_scenario_graph(&s, &names);
        let mut session = SwapSession::new(signed, s.witness_chain, config()).unwrap();
        session.run_to_completion(&mut s.world, &mut s.participants).unwrap();
        assert_eq!(session.phase(), SessionPhase::Settled);
        assert_eq!(session.decision(), Some(true));
        assert_eq!(session.verdict(&s.world), AtomicityVerdict::AllRedeemed);
        assert_eq!(session.outcomes(&s.world).len(), 3);
    }
}
