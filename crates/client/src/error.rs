//! Client-layer errors.

use ac3_core::ProtocolError;
use ac3_crypto::MultisigError;
use std::fmt;

/// Errors surfaced by the client library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// A protocol-level failure while interacting with the simulated world.
    Protocol(ProtocolError),
    /// Collecting or verifying the graph multisignature failed.
    Multisig(MultisigError),
    /// A session operation was attempted in the wrong phase.
    InvalidPhase {
        /// What the caller tried to do.
        action: String,
        /// The phase the session was actually in.
        phase: String,
    },
    /// A persisted session could not be decoded.
    Persistence(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Multisig(e) => write!(f, "multisignature error: {e}"),
            ClientError::InvalidPhase { action, phase } => {
                write!(f, "cannot {action} while the session is in phase {phase}")
            }
            ClientError::Persistence(m) => write!(f, "persistence error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<MultisigError> for ClientError {
    fn from(e: MultisigError) -> Self {
        ClientError::Multisig(e)
    }
}

impl From<ac3_sim::WorldError> for ClientError {
    fn from(e: ac3_sim::WorldError) -> Self {
        ClientError::Protocol(ProtocolError::World(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_cause() {
        let e = ClientError::InvalidPhase {
            action: "settle".to_string(),
            phase: "Created".to_string(),
        };
        assert!(e.to_string().contains("settle"));
        assert!(e.to_string().contains("Created"));
        let p: ClientError = ProtocolError::World("boom".to_string()).into();
        assert!(p.to_string().contains("boom"));
    }
}
