//! Off-chain negotiation of an AC2T: proposing the graph `D = (V, E)` and
//! collecting every participant's signature until the multisignature
//! `ms(D)` of Equation 1 is complete.
//!
//! The paper treats the construction of `ms(D)` as a given ("all the
//! participants construct the directed graph D at some timestamp t and
//! multisign it"). This module models the message flow an application needs
//! to make that happen: one participant creates a [`SwapProposal`], each
//! participant returns a [`SignatureShare`] (produced by their
//! [`crate::Wallet`]), and the [`Negotiation`] assembles them into a
//! [`SignedSwap`] whose multisignature verifies against every participant's
//! public key — the object the witness contract registration consumes.

use crate::error::ClientError;
use ac3_core::graph::SwapGraph;
use ac3_crypto::{GraphMultisig, PublicKey, Signature};
use serde::{Deserialize, Serialize};

/// A proposed AC2T, circulated to all participants for signing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapProposal {
    graph: SwapGraph,
}

impl SwapProposal {
    /// Wrap a graph as a proposal.
    pub fn new(graph: SwapGraph) -> Self {
        SwapProposal { graph }
    }

    /// The proposed graph.
    pub fn graph(&self) -> &SwapGraph {
        &self.graph
    }

    /// The canonical bytes of `(D, t)` every participant signs.
    pub fn message(&self) -> Vec<u8> {
        self.graph.canonical_bytes()
    }

    /// The public keys expected to sign.
    pub fn expected_signers(&self) -> Vec<PublicKey> {
        self.graph.participant_keys()
    }
}

/// One participant's contribution to `ms(D)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureShare {
    /// The signer's public key.
    pub signer: PublicKey,
    /// The signature over the proposal's canonical bytes.
    pub signature: Signature,
}

/// A fully signed AC2T, ready to be registered with a witness network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedSwap {
    /// The agreed graph.
    pub graph: SwapGraph,
    /// The complete multisignature `ms(D)`.
    pub multisig: GraphMultisig,
}

/// The in-progress collection of signature shares over one proposal.
#[derive(Debug, Clone)]
pub struct Negotiation {
    proposal: SwapProposal,
    multisig: GraphMultisig,
}

impl Negotiation {
    /// Start a negotiation over `graph`.
    pub fn new(graph: SwapGraph) -> Self {
        let multisig = graph.start_multisig();
        Negotiation { proposal: SwapProposal::new(graph), multisig }
    }

    /// The proposal to circulate to participants.
    pub fn proposal(&self) -> &SwapProposal {
        &self.proposal
    }

    /// Record one participant's signature share. Invalid signatures and
    /// signatures from keys outside the participant set are rejected.
    pub fn submit(&mut self, share: SignatureShare) -> Result<(), ClientError> {
        if !self.proposal.expected_signers().contains(&share.signer) {
            return Err(ClientError::Multisig(ac3_crypto::MultisigError::InvalidSignature(
                share.signer,
            )));
        }
        self.multisig.add_signature(share.signer, share.signature)?;
        Ok(())
    }

    /// The participants that have not signed yet.
    pub fn missing_signers(&self) -> Vec<PublicKey> {
        let signed: Vec<PublicKey> = self.multisig.signers().copied().collect();
        self.proposal.expected_signers().into_iter().filter(|pk| !signed.contains(pk)).collect()
    }

    /// Whether every participant has signed.
    pub fn is_complete(&self) -> bool {
        self.missing_signers().is_empty()
    }

    /// Verify the assembled multisignature and produce the [`SignedSwap`].
    pub fn finalize(self) -> Result<SignedSwap, ClientError> {
        self.multisig.verify(&self.proposal.expected_signers())?;
        Ok(SignedSwap { graph: self.proposal.graph, multisig: self.multisig })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wallet::Wallet;
    use ac3_chain::ChainId;
    use ac3_core::graph::SwapEdge;
    use ac3_crypto::MultisigError;

    fn two_party_graph() -> SwapGraph {
        let alice = Wallet::new("alice");
        let bob = Wallet::new("bob");
        SwapGraph::two_party(alice.address(), bob.address(), 50, ChainId(0), 80, ChainId(1), 42)
            .unwrap()
    }

    #[test]
    fn full_negotiation_round_trip() {
        let graph = two_party_graph();
        let alice = Wallet::new("alice");
        let bob = Wallet::new("bob");
        let mut negotiation = Negotiation::new(graph.clone());
        assert!(!negotiation.is_complete());
        assert_eq!(negotiation.missing_signers().len(), 2);

        negotiation.submit(alice.sign_proposal(negotiation.proposal())).unwrap();
        assert_eq!(negotiation.missing_signers().len(), 1);
        negotiation.submit(bob.sign_proposal(negotiation.proposal())).unwrap();
        assert!(negotiation.is_complete());

        let signed = negotiation.finalize().unwrap();
        assert_eq!(signed.graph, graph);
        signed.multisig.verify(&graph.participant_keys()).unwrap();
    }

    #[test]
    fn finalize_without_all_signatures_fails() {
        let graph = two_party_graph();
        let alice = Wallet::new("alice");
        let mut negotiation = Negotiation::new(graph);
        negotiation.submit(alice.sign_proposal(negotiation.proposal())).unwrap();
        let err = negotiation.finalize().unwrap_err();
        assert!(matches!(err, ClientError::Multisig(MultisigError::MissingSigner(_))));
    }

    #[test]
    fn a_stranger_cannot_contribute_a_share() {
        let graph = two_party_graph();
        let mallory = Wallet::from_seed("mallory", b"mallory");
        let mut negotiation = Negotiation::new(graph);
        let share = mallory.sign_proposal(negotiation.proposal());
        let err = negotiation.submit(share).unwrap_err();
        assert!(matches!(err, ClientError::Multisig(MultisigError::InvalidSignature(_))));
    }

    #[test]
    fn a_share_over_a_different_graph_is_rejected() {
        let graph = two_party_graph();
        let alice = Wallet::new("alice");
        let bob = Wallet::new("bob");
        // Bob signs a *different* proposal (different amounts) and replays
        // the share into this negotiation.
        let other = SwapGraph::two_party(
            alice.address(),
            bob.address(),
            999,
            ChainId(0),
            1,
            ChainId(1),
            42,
        )
        .unwrap();
        let foreign_share = bob.sign_proposal(&SwapProposal::new(other));
        let mut negotiation = Negotiation::new(graph);
        let err = negotiation.submit(foreign_share).unwrap_err();
        assert!(matches!(err, ClientError::Multisig(MultisigError::InvalidSignature(_))));
    }

    #[test]
    fn duplicate_shares_are_idempotent() {
        let graph = two_party_graph();
        let alice = Wallet::new("alice");
        let mut negotiation = Negotiation::new(graph);
        let share = alice.sign_proposal(negotiation.proposal());
        negotiation.submit(share.clone()).unwrap();
        negotiation.submit(share).unwrap();
        assert_eq!(negotiation.missing_signers().len(), 1);
    }

    #[test]
    fn multi_party_negotiation_over_a_ring() {
        // Five participants, each signing the same proposal.
        let wallets: Vec<Wallet> = (0..5).map(|i| Wallet::new(&format!("p{i}"))).collect();
        let edges: Vec<SwapEdge> = (0..5)
            .map(|i| SwapEdge {
                from: wallets[i].address(),
                to: wallets[(i + 1) % 5].address(),
                amount: 10,
                chain: ChainId(i as u32),
            })
            .collect();
        let graph = SwapGraph::new(edges, 7).unwrap();
        let mut negotiation = Negotiation::new(graph.clone());
        for w in &wallets {
            negotiation.submit(w.sign_proposal(negotiation.proposal())).unwrap();
        }
        let signed = negotiation.finalize().unwrap();
        assert_eq!(signed.graph.participants().len(), 5);
    }
}
