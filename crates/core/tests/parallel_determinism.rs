//! Determinism contract of the parallel sharded scheduler: the same batch,
//! run serially and with any number of worker threads, must produce
//! identical swap reports, fee ledgers, tick counts, and final chain
//! state. Within a shard the parallel scheduler replays the serial
//! instruction stream verbatim; across shards there is no shared state —
//! so these tests compare *bitwise*, not approximately.
//!
//! The CI thread matrix extends the default worker set through the
//! `AC3_DETERMINISM_WORKERS` environment variable (comma-separated counts).

use ac3_core::scenario::{clustered_swaps_scenario, MultiSwapScenario, ScenarioConfig};
use ac3_core::{Ac3tw, Ac3wn, Herlihy, HerlihyMulti, ProtocolConfig, Scheduler, SwapMachine};
use ac3_sim::SwapId;
use serde::Serialize;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

/// The mixed-protocol machine mix of the scale workload: swap `i` runs
/// under protocol `i mod 4`.
fn mixed_machines(s: &MultiSwapScenario) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    let ac3wn = Ac3wn::new(protocol_cfg());
    let ac3tw = Ac3tw::new(protocol_cfg());
    let herlihy = Herlihy::new(protocol_cfg());
    let herlihy_multi = HerlihyMulti::new(protocol_cfg());
    s.swaps
        .iter()
        .enumerate()
        .map(|(i, swap)| {
            let machine: Box<dyn SwapMachine> = match i % 4 {
                0 => Box::new(ac3wn.machine(swap.graph.clone(), swap.witness)),
                1 => Box::new(ac3tw.machine(swap.graph.clone())),
                2 => Box::new(herlihy.machine(swap.graph.clone()).expect("two-party has a leader")),
                _ => Box::new(herlihy_multi.machine(swap.graph.clone()).expect("valid graph")),
            };
            (swap.id, machine)
        })
        .collect()
}

/// Everything the batch observably produced, serialized for bitwise
/// comparison: outcomes in submission order, scheduler counters, the fee
/// ledger, per-chain final state, and the global timeline (canonicalized —
/// see [`fingerprint`]).
#[derive(Serialize)]
struct Fingerprint {
    outcomes: Vec<(u64, String)>,
    ticks: u64,
    started_at: u64,
    finished_at: u64,
    fees: String,
    chains: Vec<String>,
    timeline: Vec<String>,
}

/// Run the standard clustered mixed-protocol batch with `workers` threads
/// and fingerprint the result. Returns the canonical fingerprint plus the
/// raw (uncanonicalized) global timeline.
fn fingerprint(workers: usize) -> (String, Vec<String>) {
    // 5 clusters × 4 swaps × 2 chains: enough components that 2, 4 and 8
    // workers all stripe differently, with real contention inside each.
    let mut s = clustered_swaps_scenario(5, 4, 2, &ScenarioConfig::default());
    let machines = mixed_machines(&s);
    let batch =
        Scheduler::default().with_workers(workers).run(&mut s.world, &mut s.participants, machines);

    assert_eq!(batch.failed(), 0, "workers={workers}: no swap may error");
    assert!(batch.all_atomic(), "workers={workers}: atomicity audit failed");
    s.world.assert_state_integrity();

    let outcomes = batch
        .outcomes
        .iter()
        .map(|o| {
            let result = match &o.result {
                Ok(report) => serde_json::to_string(report).unwrap(),
                Err(e) => format!("{e:?}"),
            };
            (o.id.0, result)
        })
        .collect();
    let chains = s
        .world
        .chain_ids()
        .into_iter()
        .map(|id| {
            let c = s.world.chain(id).unwrap();
            format!(
                "{id}: tip={:?} height={} mempool={} base_fee={}",
                c.tip(),
                c.height(),
                c.mempool_len(),
                c.base_fee()
            )
        })
        .collect();
    let raw_timeline: Vec<String> =
        s.world.timeline.events().iter().map(|e| serde_json::to_string(e).unwrap()).collect();
    // The one permitted serial/parallel difference is the relative order of
    // same-timestamp events from *unrelated* shards in the global timeline;
    // canonicalize by sorting serialized events (each embeds its `at`).
    let mut timeline = raw_timeline.clone();
    timeline.sort();
    let fp = Fingerprint {
        outcomes,
        ticks: batch.ticks,
        started_at: batch.started_at,
        finished_at: batch.finished_at,
        fees: serde_json::to_string(&s.world.fees).unwrap(),
        chains,
        timeline,
    };
    (serde_json::to_string(&fp).unwrap(), raw_timeline)
}

/// Worker counts under test: 1 (the serial reference loop), 2, 4, 8, plus
/// anything the CI matrix injects via `AC3_DETERMINISM_WORKERS`.
fn worker_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 8];
    if let Ok(extra) = std::env::var("AC3_DETERMINISM_WORKERS") {
        for w in extra.split(',') {
            if let Ok(w) = w.trim().parse::<usize>() {
                counts.push(w);
            }
        }
    }
    counts.sort();
    counts.dedup();
    counts
}

/// The tentpole acceptance test: the same seeded batch run serially and at
/// 2/4/8 (+ CI matrix) worker threads yields bitwise-identical swap
/// timelines, fee ledgers, chain state and `BatchReport`s.
#[test]
fn same_batch_is_bitwise_identical_at_every_worker_count() {
    let counts = worker_counts();
    let (reference, _) = fingerprint(counts[0]);
    let mut parallel_raw: Option<(usize, Vec<String>)> = None;
    for &w in &counts[1..] {
        let (fp, raw) = fingerprint(w);
        assert_eq!(
            fp, reference,
            "workers={w} diverged from workers={} on the same batch",
            counts[0]
        );
        // Among *parallel* runs even the raw global timeline is identical:
        // shards are always absorbed in first-machine order, regardless of
        // which thread finished first.
        if w > 1 {
            if let Some((w0, ref raw0)) = parallel_raw {
                assert_eq!(&raw, raw0, "raw timelines of workers={w} and workers={w0} diverged");
            } else {
                parallel_raw = Some((w, raw));
            }
        }
    }
}

/// More workers than shards, and more workers than machines: the stripe
/// logic must degrade gracefully and stay identical to serial.
#[test]
fn worker_surplus_changes_nothing() {
    let run = |workers: usize| {
        let mut s = clustered_swaps_scenario(2, 1, 1, &ScenarioConfig::default());
        let machines = mixed_machines(&s);
        let batch = Scheduler::default().with_workers(workers).run(
            &mut s.world,
            &mut s.participants,
            machines,
        );
        assert_eq!(batch.failed(), 0);
        (
            batch.ticks,
            batch.finished_at,
            batch
                .outcomes
                .iter()
                .map(|o| serde_json::to_string(o.result.as_ref().unwrap()).unwrap())
                .collect::<Vec<_>>(),
        )
    };
    let serial = run(1);
    for workers in [2, 7, 64] {
        assert_eq!(run(workers), serial, "workers={workers}");
    }
}

/// The parallel path must enforce the simulated-time budget with the same
/// error text and the same cutoff as the serial loop.
#[test]
fn parallel_budget_exhaustion_matches_serial() {
    let run = |workers: usize| {
        let mut s = clustered_swaps_scenario(3, 2, 2, &ScenarioConfig::default());
        let machines = mixed_machines(&s);
        // A 1 ms budget cannot even finish registration.
        let batch = Scheduler::new(1).with_workers(workers).run(
            &mut s.world,
            &mut s.participants,
            machines,
        );
        batch.outcomes.iter().map(|o| format!("{:?}", o.result.as_ref().err())).collect::<Vec<_>>()
    };
    let serial = run(1);
    assert!(serial.iter().all(|e| e.contains("budget of 1 ms exhausted")));
    assert_eq!(run(4), serial);
}

/// Differential determinism under adversity: a fixed Byzantine + griefing
/// campaign — crashes, partitions, forks, an equivocating witness, a
/// bribed attestation, a mempool flood and a base-fee spike, all injected
/// mid-batch through the scheduler — fingerprints bitwise-identically at
/// 1, 2 and 4 workers (+ the CI matrix). The campaign fingerprint folds in
/// the slash count and final chain state on top of the batch observables,
/// and CI re-runs this test under both `AC3_STORE_BACKEND` values.
#[test]
fn adversarial_campaign_is_bitwise_identical_at_every_worker_count() {
    use ac3_core::CampaignConfig;

    let run = |workers: usize| {
        let mut cfg = CampaignConfig::new(0xD1FF);
        cfg.swaps = 6;
        cfg.workers = workers;
        let report = ac3_core::run_campaign(&cfg).expect("campaign executes");
        assert_eq!(report.failed, 0, "workers={workers}: honest swap failed");
        assert_eq!(report.adversary_failures, 0, "workers={workers}: adversary errored");
        assert!(report.atomic, "workers={workers}: atomicity audit failed");
        assert_eq!(
            report.slashes_accepted, report.equivocations,
            "workers={workers}: slash count diverged from the plan's equivocations"
        );
        report.fingerprint
    };
    let mut counts = worker_counts();
    counts.retain(|w| *w <= 4);
    let reference = run(counts[0]);
    for &w in &counts[1..] {
        assert_eq!(
            run(w),
            reference,
            "workers={w} diverged from workers={} on the same campaign",
            counts[0]
        );
    }
}

/// A footprint naming a chain the world does not hold must fall back to
/// the serial loop and surface per-machine errors rather than panicking.
#[test]
fn unknown_footprint_chain_falls_back_to_serial() {
    use ac3_chain::ChainId;
    use ac3_core::scenario::{two_party_scenario, ScenarioConfig};

    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    let driver = Ac3wn::new(protocol_cfg());
    // Point the machine at a witness chain that does not exist.
    let machine = driver.machine(s.graph.clone(), ChainId(9_999));
    let batch = Scheduler::default().with_workers(4).run(
        &mut s.world,
        &mut s.participants,
        vec![(SwapId(0), Box::new(machine))],
    );
    // The serial fallback runs the machine to its graceful give-up (the
    // witness registration can never land, so nobody ever commits) instead
    // of panicking inside `split_shard`.
    assert_eq!(batch.outcomes.len(), 1);
    let report = batch.report_for(SwapId(0)).expect("machine gives up cleanly");
    assert_ne!(report.decision, Some(true), "no commit without a witness chain");
}
