//! Determinism contract of the message-level network layer.
//!
//! Two guarantees, both bitwise:
//!
//! 1. **Zero-profile equivalence** — a batch polled through the
//!    [`ac3_sim::NetworkedApi`] under a zero-latency / zero-loss
//!    [`ac3_sim::NetworkProfile`] produces exactly the fingerprint of the
//!    same batch polled through the synchronous [`ac3_sim::DirectApi`]
//!    (zero-delay sends are applied inline, so the instruction stream is
//!    identical), at every worker count.
//! 2. **Seeded-loss determinism** — a batch under a lossy, high-latency
//!    profile fingerprints identically at 1, 2 and 4 workers: link RNG
//!    state moves with its chain slot when the world is sharded, so
//!    per-message sampling replays the serial stream verbatim.
//!
//! The CI thread matrix extends the default worker set through the
//! `AC3_DETERMINISM_WORKERS` environment variable (comma-separated counts).

use ac3_core::scenario::{clustered_swaps_scenario, MultiSwapScenario, ScenarioConfig};
use ac3_core::{Ac3tw, Ac3wn, Herlihy, HerlihyMulti, ProtocolConfig, Scheduler, SwapMachine};
use ac3_sim::{NetworkProfile, SwapId};
use serde::Serialize;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

/// The mixed-protocol machine mix of the scale workload: swap `i` runs
/// under protocol `i mod 4`.
fn mixed_machines(s: &MultiSwapScenario) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    let ac3wn = Ac3wn::new(protocol_cfg());
    let ac3tw = Ac3tw::new(protocol_cfg());
    let herlihy = Herlihy::new(protocol_cfg());
    let herlihy_multi = HerlihyMulti::new(protocol_cfg());
    s.swaps
        .iter()
        .enumerate()
        .map(|(i, swap)| {
            let machine: Box<dyn SwapMachine> = match i % 4 {
                0 => Box::new(ac3wn.machine(swap.graph.clone(), swap.witness)),
                1 => Box::new(ac3tw.machine(swap.graph.clone())),
                2 => Box::new(herlihy.machine(swap.graph.clone()).expect("two-party has a leader")),
                _ => Box::new(herlihy_multi.machine(swap.graph.clone()).expect("valid graph")),
            };
            (swap.id, machine)
        })
        .collect()
}

/// Everything the batch observably produced, serialized for bitwise
/// comparison (the shape of `parallel_determinism`'s fingerprint, plus the
/// network delivery counters).
#[derive(Serialize)]
struct Fingerprint {
    outcomes: Vec<(u64, String)>,
    ticks: u64,
    started_at: u64,
    finished_at: u64,
    fees: String,
    chains: Vec<String>,
    timeline: Vec<String>,
    network: String,
}

/// Run the standard clustered mixed-protocol batch with `workers` threads,
/// optionally routing every submission through a network profile, and
/// fingerprint the result.
fn fingerprint(workers: usize, network: Option<NetworkProfile>) -> String {
    let mut s = clustered_swaps_scenario(5, 4, 2, &ScenarioConfig::default());
    let machines = mixed_machines(&s);
    let mut scheduler = Scheduler::default().with_workers(workers);
    if let Some(profile) = network {
        scheduler = scheduler.with_network(profile);
    }
    let batch = scheduler.run(&mut s.world, &mut s.participants, machines);

    assert_eq!(batch.failed(), 0, "workers={workers}: no swap may error");
    assert!(batch.all_atomic(), "workers={workers}: atomicity audit failed");
    s.world.assert_state_integrity();

    let outcomes = batch
        .outcomes
        .iter()
        .map(|o| {
            let result = match &o.result {
                Ok(report) => serde_json::to_string(report).unwrap(),
                Err(e) => format!("{e:?}"),
            };
            (o.id.0, result)
        })
        .collect();
    let chains = s
        .world
        .chain_ids()
        .into_iter()
        .map(|id| {
            let c = s.world.chain(id).unwrap();
            format!(
                "{id}: tip={:?} height={} mempool={} base_fee={}",
                c.tip(),
                c.height(),
                c.mempool_len(),
                c.base_fee()
            )
        })
        .collect();
    // Same-timestamp events from unrelated shards may interleave
    // differently serial vs parallel; canonicalize by sorting serialized
    // events (each embeds its `at`) exactly as parallel_determinism does.
    let mut timeline: Vec<String> =
        s.world.timeline.events().iter().map(|e| serde_json::to_string(e).unwrap()).collect();
    timeline.sort();
    let fp = Fingerprint {
        outcomes,
        ticks: batch.ticks,
        started_at: batch.started_at,
        finished_at: batch.finished_at,
        fees: serde_json::to_string(&s.world.fees).unwrap(),
        chains,
        timeline,
        network: serde_json::to_string(&s.world.network_stats()).unwrap(),
    };
    serde_json::to_string(&fp).unwrap()
}

/// The embedded `LinkStats` JSON of a fingerprint.
fn network_counters(fp: &str) -> serde_json::Value {
    let v: serde_json::Value = serde_json::from_str(fp).unwrap();
    let stats = v
        .as_object()
        .and_then(|o| o.get("network"))
        .and_then(|n| n.as_str())
        .expect("fingerprint embeds stats");
    serde_json::from_str(stats).unwrap()
}

fn counter(stats: &serde_json::Value, key: &str) -> u64 {
    stats.as_object().and_then(|o| o.get(key)).and_then(|v| v.as_u64()).expect("counter present")
}

/// Worker counts under test: 1 (the serial reference loop), 2 and 4, plus
/// anything the CI matrix injects via `AC3_DETERMINISM_WORKERS`.
fn worker_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4];
    if let Ok(extra) = std::env::var("AC3_DETERMINISM_WORKERS") {
        for w in extra.split(',') {
            if let Ok(w) = w.trim().parse::<usize>() {
                counts.push(w);
            }
        }
    }
    counts.sort();
    counts.dedup();
    counts
}

/// The API-redesign acceptance test, part 1: the `NetworkedApi` under a
/// zero profile is not merely equivalent to the `DirectApi` — it is
/// bitwise identical, timeline, ledger and chain state included, at every
/// worker count. Zero-delay sends are applied inline at send time, so the
/// two APIs execute the same instruction stream against the world.
#[test]
fn zero_profile_networked_batch_matches_direct_bitwise() {
    // The fingerprint embeds the network delivery counters, which a direct
    // run (no links) necessarily reports as all-zero; strip that one field
    // before comparing and check the counters separately.
    let strip = |fp: &str| {
        let v: serde_json::Value = serde_json::from_str(fp).unwrap();
        let mut kept = serde::Map::new();
        for (key, value) in v.as_object().unwrap().iter() {
            if key != "network" {
                kept.insert(key.clone(), value.clone());
            }
        }
        serde_json::to_string(&serde_json::Value::Object(kept)).unwrap()
    };
    let direct = strip(&fingerprint(1, None));
    for &w in &worker_counts() {
        let networked = fingerprint(w, Some(NetworkProfile::zero(0xAC3)));
        assert_eq!(
            strip(&networked),
            direct,
            "workers={w}: zero-profile networked run diverged from the direct run"
        );
        let stats = network_counters(&networked);
        assert!(counter(&stats, "submits") > 0, "submissions did route through links");
        assert_eq!(counter(&stats, "dropped"), 0, "a zero profile never drops");
    }
}

/// The API-redesign acceptance test, part 2: a seeded lossy, high-latency
/// batch fingerprints bitwise-identically at 1, 2 and 4 workers (+ CI
/// matrix) — network counters included — and the profile demonstrably did
/// something (messages were delayed and dropped).
#[test]
fn seeded_lossy_batch_is_bitwise_identical_at_every_worker_count() {
    let profile = NetworkProfile {
        seed: 0xAC3_0005,
        latency_min_ms: 20,
        latency_max_ms: 400,
        drop_per_mille: 60,
    };
    let counts = worker_counts();
    let reference = fingerprint(counts[0], Some(profile));
    for &w in &counts[1..] {
        assert_eq!(
            fingerprint(w, Some(profile)),
            reference,
            "workers={w} diverged from workers={} under the lossy profile",
            counts[0]
        );
    }
    let stats = network_counters(&reference);
    assert!(counter(&stats, "submits") > 0, "no submissions routed through links");
    assert!(counter(&stats, "dropped") > 0, "a 6% loss profile dropped nothing");
    assert!(counter(&stats, "delivered") > 0, "no message was ever delivered");
}

/// The same lossy batch also fingerprints identically run-to-run (the
/// profile is the only source of randomness, and it is seeded).
#[test]
fn seeded_lossy_batch_is_reproducible_run_to_run() {
    let profile =
        NetworkProfile { seed: 7, latency_min_ms: 0, latency_max_ms: 900, drop_per_mille: 25 };
    assert_eq!(fingerprint(1, Some(profile)), fingerprint(1, Some(profile)));
}
