//! Regression tests for the footprint-audit sanitizer: a machine that
//! touches a chain or actor outside its declared [`MachineFootprint`] must
//! panic with full attribution (machine id, phase, offending resource), a
//! machine that stays inside its declaration must run exactly as without
//! the audit, and — the determinism contract — an audited batch that does
//! not panic must be bitwise identical to an unaudited one at every worker
//! count.

use ac3_chain::ChainId;
use ac3_chain::ChainParams;
use ac3_core::driver::{MachineFootprint, Step};
use ac3_core::scenario::{clustered_swaps_scenario, MultiSwapScenario, ScenarioConfig};
use ac3_core::{
    Ac3tw, Ac3wn, Herlihy, HerlihyMulti, ProtocolConfig, ProtocolError, Scheduler, SwapMachine,
};
use ac3_sim::{ChainApi, ParticipantSet, SwapId, World};
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A machine that declares one chain but reads another — the exact
/// under-declaration the shard partitioner would otherwise only catch when
/// the shard split happens to separate the two chains.
struct RogueChainReader {
    declared: ChainId,
    hidden: ChainId,
}

impl SwapMachine for RogueChainReader {
    fn poll(
        &mut self,
        world: &mut dyn ChainApi,
        _participants: &mut ParticipantSet,
    ) -> Result<Step, ProtocolError> {
        // In-footprint and unscoped reads are fine under audit.
        let _ = world.now();
        let _ = world.is_reachable(self.declared);
        // Out-of-footprint read: panics when the audit is on.
        let _ = world.chain(self.hidden);
        Err(ProtocolError::World("rogue read survived the audit".to_string()))
    }

    fn phase_name(&self) -> &'static str {
        "probe"
    }

    fn footprint(&self) -> MachineFootprint {
        MachineFootprint { chains: vec![self.declared], actors: Vec::new() }
    }
}

/// A machine that declares no actors but resolves one by name.
struct RogueActorReader {
    declared: ChainId,
}

impl SwapMachine for RogueActorReader {
    fn poll(
        &mut self,
        _world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Step, ProtocolError> {
        let _ = participants.get("bob");
        Err(ProtocolError::World("rogue lookup survived the audit".to_string()))
    }

    fn phase_name(&self) -> &'static str {
        "sign"
    }

    fn footprint(&self) -> MachineFootprint {
        MachineFootprint { chains: vec![self.declared], actors: Vec::new() }
    }
}

fn two_chain_world() -> (World, ChainId, ChainId, ParticipantSet) {
    let mut world = World::new();
    let mut participants = ParticipantSet::new();
    participants.add("alice");
    participants.add("bob");
    let a = world.add_chain(ChainParams::default(), &[]);
    let b = world.add_chain(ChainParams::default(), &[]);
    (world, a, b, participants)
}

#[test]
fn out_of_footprint_chain_access_panics_with_attribution() {
    let (mut world, a, b, mut participants) = two_chain_world();
    let machine = RogueChainReader { declared: a, hidden: b };
    let scheduler = Scheduler::default().with_workers(1).with_footprint_audit(true);
    let panic = catch_unwind(AssertUnwindSafe(|| {
        scheduler.run(&mut world, &mut participants, vec![(SwapId(7), Box::new(machine))])
    }))
    .expect_err("the audited rogue read must panic");
    let message = panic.downcast_ref::<String>().expect("audit panics carry a String");
    assert!(message.contains("footprint audit"), "got: {message}");
    assert!(message.contains("machine 7"), "machine id missing: {message}");
    assert!(message.contains("phase probe"), "phase missing: {message}");
    assert!(message.contains(&b.to_string()), "offending chain missing: {message}");
}

#[test]
fn out_of_footprint_actor_access_panics_with_attribution() {
    let (mut world, a, _b, mut participants) = two_chain_world();
    let machine = RogueActorReader { declared: a };
    let scheduler = Scheduler::default().with_workers(1).with_footprint_audit(true);
    let panic = catch_unwind(AssertUnwindSafe(|| {
        scheduler.run(&mut world, &mut participants, vec![(SwapId(3), Box::new(machine))])
    }))
    .expect_err("the audited rogue lookup must panic");
    let message = panic.downcast_ref::<String>().expect("audit panics carry a String");
    assert!(message.contains("footprint audit"), "got: {message}");
    assert!(message.contains("machine 3"), "machine id missing: {message}");
    assert!(message.contains("phase sign"), "phase missing: {message}");
    assert!(message.contains("actor bob"), "actor name missing: {message}");
}

#[test]
fn in_footprint_accesses_pass_the_audit() {
    // Same rogue reader, but with the "hidden" chain declared: no panic,
    // and the machine's own error comes back through the batch untouched.
    let (mut world, a, b, mut participants) = two_chain_world();
    let machine = RogueChainReader { declared: a, hidden: a };
    let _ = b;
    let scheduler = Scheduler::default().with_workers(1).with_footprint_audit(true);
    let batch = scheduler.run(&mut world, &mut participants, vec![(SwapId(0), Box::new(machine))]);
    assert_eq!(batch.failed(), 1, "the machine's own error is reported, not a panic");
}

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

fn mixed_machines(s: &MultiSwapScenario) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    let ac3wn = Ac3wn::new(protocol_cfg());
    let ac3tw = Ac3tw::new(protocol_cfg());
    let herlihy = Herlihy::new(protocol_cfg());
    let herlihy_multi = HerlihyMulti::new(protocol_cfg());
    s.swaps
        .iter()
        .enumerate()
        .map(|(i, swap)| {
            let machine: Box<dyn SwapMachine> = match i % 4 {
                0 => Box::new(ac3wn.machine(swap.graph.clone(), swap.witness)),
                1 => Box::new(ac3tw.machine(swap.graph.clone())),
                2 => Box::new(herlihy.machine(swap.graph.clone()).expect("two-party has a leader")),
                _ => Box::new(herlihy_multi.machine(swap.graph.clone()).expect("valid graph")),
            };
            (swap.id, machine)
        })
        .collect()
}

#[derive(Serialize)]
struct Fingerprint {
    outcomes: Vec<(u64, String)>,
    ticks: u64,
    fees: String,
}

/// Run the standard clustered mixed-protocol batch and fingerprint it.
fn fingerprint(workers: usize, audit: bool) -> String {
    let mut s = clustered_swaps_scenario(3, 4, 2, &ScenarioConfig::default());
    let machines = mixed_machines(&s);
    let batch = Scheduler::default().with_workers(workers).with_footprint_audit(audit).run(
        &mut s.world,
        &mut s.participants,
        machines,
    );
    assert_eq!(batch.failed(), 0, "workers={workers} audit={audit}: no swap may error");
    let outcomes = batch
        .outcomes
        .iter()
        .map(|o| {
            let result = match &o.result {
                Ok(report) => serde_json::to_string(report).unwrap(),
                Err(e) => format!("{e:?}"),
            };
            (o.id.0, result)
        })
        .collect();
    let fp = Fingerprint {
        outcomes,
        ticks: batch.ticks,
        fees: serde_json::to_string(&s.world.fees).unwrap(),
    };
    serde_json::to_string(&fp).unwrap()
}

/// The sanitizer's zero-interference contract: every protocol machine in
/// the mixed batch passes the audit, and the audited run is bitwise
/// identical to the unaudited one — serially and sharded.
#[test]
fn audited_batch_is_bitwise_identical_to_unaudited() {
    for workers in [1, 2] {
        let plain = fingerprint(workers, false);
        let audited = fingerprint(workers, true);
        assert_eq!(plain, audited, "workers={workers}: audit changed the batch output");
    }
}
