//! Integration tests of the concurrent swap scheduler: the step/poll
//! machines must (a) reproduce the legacy blocking drivers exactly at
//! N = 1, (b) keep every swap atomic under a random mix of committing,
//! aborting and crash-recovering swaps running concurrently, and (c) scale
//! to the acceptance workload (64 AC2Ts over 4 shared asset chains plus a
//! shared witness chain) with zero atomicity violations.

use ac3_chain::ChainParams;
use ac3_core::scenario::{
    concurrent_custom_swaps, concurrent_swaps_multi_witness, concurrent_swaps_scenario,
    custom_scenario, two_party_scenario, ScenarioConfig,
};
use ac3_core::{
    Ac3tw, Ac3wn, Herlihy, HerlihyMulti, MultiSwapScenario, ProtocolConfig, Scheduler, SwapMachine,
};
use ac3_sim::{CrashWindow, SwapId};
use proptest::Gen;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

fn ac3wn_machines(s: &MultiSwapScenario, driver: &Ac3wn) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)))
}

/// The scheduler with a single machine must reproduce the legacy blocking
/// `execute` bit for bit: same decision, same counters, same timeline.
#[test]
fn n1_batch_is_equivalent_to_blocking_execute() {
    let cfg = ScenarioConfig::default();
    let driver = Ac3wn::new(protocol_cfg());

    let mut legacy = two_party_scenario(50, 80, &cfg);
    let legacy_report = driver.execute(&mut legacy).unwrap();

    let mut scheduled = two_party_scenario(50, 80, &cfg);
    let machine = driver.machine(scheduled.graph.clone(), scheduled.witness_chain);
    let batch = Scheduler::default().run(
        &mut scheduled.world,
        &mut scheduled.participants,
        vec![(SwapId(0), Box::new(machine))],
    );
    let scheduled_report = batch.report_for(SwapId(0)).expect("swap finished");

    assert_eq!(scheduled_report.decision, legacy_report.decision);
    assert_eq!(scheduled_report.verdict(), legacy_report.verdict());
    assert_eq!(scheduled_report.started_at, legacy_report.started_at);
    assert_eq!(scheduled_report.finished_at, legacy_report.finished_at);
    assert_eq!(scheduled_report.delta_ms, legacy_report.delta_ms);
    assert_eq!(scheduled_report.deployments, legacy_report.deployments);
    assert_eq!(scheduled_report.calls, legacy_report.calls);
    assert_eq!(scheduled_report.fees_paid, legacy_report.fees_paid);
    assert_eq!(
        scheduled_report.timeline.events(),
        legacy_report.timeline.events(),
        "per-swap timeline must match the blocking driver's world timeline"
    );
    for (a, b) in scheduled_report.edges.iter().zip(&legacy_report.edges) {
        assert_eq!(a.disposition, b.disposition);
    }
    // Same simulated end time and same fee totals in the two worlds.
    assert_eq!(scheduled.world.fees.total_fees(), legacy.world.fees.total_fees());
}

/// What a randomly drawn swap does during the property test.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fate {
    /// Everyone stays up: the swap must commit.
    Fine,
    /// The first sender crashes permanently before deploying: the swap must
    /// abort with every published contract refunded.
    CrashedSender,
    /// A recipient crashes around settlement time and recovers later: the
    /// decision must still be commit and atomicity must hold (AC3WN has no
    /// timelock to race).
    LateRecipient,
}

/// Concurrent-scheduler property test: a random mix of committing, aborting
/// and crash-recovering swaps runs concurrently; every swap must pass the
/// atomicity audit and the incremental chain state must survive intact.
/// Uses the deterministic proptest generator directly so the number of
/// simulated batches stays bounded.
#[test]
fn property_random_fate_mix_stays_atomic() {
    let mut gen = Gen::deterministic("scheduler::property_random_fate_mix_stays_atomic");
    for case in 0..12 {
        let swaps = 2 + gen.below(5) as usize; // 2..=6
        let chains = 2 + gen.below(3) as usize; // 2..=4
        let fates: Vec<Fate> = (0..swaps)
            .map(|_| match gen.below(3) {
                0 => Fate::Fine,
                1 => Fate::CrashedSender,
                _ => Fate::LateRecipient,
            })
            .collect();

        let mut s = concurrent_swaps_scenario(swaps, chains, &ScenarioConfig::default());
        for (i, fate) in fates.iter().enumerate() {
            match fate {
                Fate::Fine => {}
                Fate::CrashedSender => {
                    s.participants
                        .get_mut(&format!("s{i}a"))
                        .unwrap()
                        .schedule_crash(CrashWindow::permanent(0));
                }
                Fate::LateRecipient => {
                    s.participants
                        .get_mut(&format!("s{i}b"))
                        .unwrap()
                        .schedule_crash(CrashWindow { from: 14_000, until: 44_000 });
                }
            }
        }

        let driver = Ac3wn::new(protocol_cfg());
        let machines = ac3wn_machines(&s, &driver);
        let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);

        assert_eq!(batch.failed(), 0, "case {case} ({fates:?}): no swap may error");
        assert!(batch.all_atomic(), "case {case} ({fates:?}): atomicity audit failed");
        for (i, fate) in fates.iter().enumerate() {
            let report = batch.report_for(SwapId(i as u64)).unwrap();
            match fate {
                Fate::Fine => assert_eq!(
                    report.decision,
                    Some(true),
                    "case {case}: healthy swap {i} must commit"
                ),
                Fate::CrashedSender => {
                    assert_eq!(
                        report.decision,
                        Some(false),
                        "case {case}: swap {i} with a crashed sender must abort"
                    );
                    assert!(report.verdict().is_aborted() || report.verdict().is_atomic());
                }
                Fate::LateRecipient => assert!(
                    report.is_atomic(),
                    "case {case}: late-recipient swap {i} violated atomicity: {}",
                    report.verdict()
                ),
            }
        }
        s.world.assert_state_integrity();
    }
}

/// The acceptance workload: 64 concurrent AC2Ts over 4 shared asset chains
/// plus one shared witness chain complete with zero atomicity violations,
/// and actually interleave (the batch makespan is far below the sum of the
/// individual latencies).
#[test]
fn sixty_four_concurrent_swaps_over_four_chains_stay_atomic() {
    let mut s = concurrent_swaps_scenario(64, 4, &ScenarioConfig::default());
    let driver = Ac3wn::new(protocol_cfg());
    let machines = ac3wn_machines(&s, &driver);
    let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);

    assert_eq!(batch.failed(), 0, "no swap may error");
    assert_eq!(batch.committed(), 64, "all 64 swaps commit");
    assert!(batch.all_atomic(), "zero atomicity violations");

    let latency_sum: u64 = batch.reports().map(|(_, r)| r.latency_ms()).sum();
    assert!(
        batch.makespan_ms() * 4 < latency_sum,
        "makespan {} ms should be far below the serial sum {} ms",
        batch.makespan_ms(),
        latency_sum
    );

    // Every swap paid fees and the attribution covers the full ledger.
    let attributed: u64 = s.swaps.iter().map(|swap| s.world.fees.fees_for_swap(swap.id)).sum();
    assert_eq!(attributed, s.world.fees.total_fees());
    assert!(s.swaps.iter().all(|swap| s.world.fees.fees_for_swap(swap.id) > 0));

    s.world.assert_state_integrity();
}

/// A mixed-protocol batch: AC3WN, AC3TW, Herlihy and Herlihy-multi machines
/// all interleave under one scheduler over one shared world.
#[test]
fn mixed_protocol_batch_interleaves() {
    let mut s = concurrent_swaps_scenario(8, 4, &ScenarioConfig::default());
    let ac3wn = Ac3wn::new(protocol_cfg());
    let ac3tw = Ac3tw::new(protocol_cfg());
    let herlihy = Herlihy::new(protocol_cfg());
    let herlihy_multi = HerlihyMulti::new(protocol_cfg());

    let mut machines: Vec<(SwapId, Box<dyn SwapMachine>)> = Vec::new();
    for (i, swap) in s.swaps.iter().enumerate() {
        let machine: Box<dyn SwapMachine> = match i % 4 {
            0 => Box::new(ac3wn.machine(swap.graph.clone(), swap.witness)),
            1 => Box::new(ac3tw.machine(swap.graph.clone())),
            2 => Box::new(herlihy.machine(swap.graph.clone()).unwrap()),
            _ => Box::new(herlihy_multi.machine(swap.graph.clone()).unwrap()),
        };
        machines.push((swap.id, machine));
    }
    let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);

    assert_eq!(batch.failed(), 0);
    assert!(batch.all_atomic());
    for (id, report) in batch.reports() {
        assert!(
            report.verdict().is_committed(),
            "{id} under {} should commit: {}",
            report.protocol,
            report.verdict()
        );
    }
    s.world.assert_state_integrity();
}

/// The scheduler at N = 1 must reproduce `HerlihyMulti::execute` (the
/// `drive()` wrapper) bit for bit: same counters, same timeline events.
#[test]
fn herlihy_multi_n1_batch_is_equivalent_to_blocking_execute() {
    let cfg = ScenarioConfig::default();
    let driver = HerlihyMulti::new(protocol_cfg());
    // The bridged double cycle: multi-leader territory (no single leader).
    let names = ["a", "b", "c", "d"];
    let edges = [(0usize, 1usize, 10u64), (1, 0, 20), (2, 3, 30), (3, 2, 40), (1, 2, 50)];

    let mut legacy = custom_scenario(&names, &edges, &cfg);
    let legacy_report = driver.execute(&mut legacy).unwrap();

    let mut scheduled = custom_scenario(&names, &edges, &cfg);
    let machine = driver.machine(scheduled.graph.clone()).unwrap();
    let batch = Scheduler::default().run(
        &mut scheduled.world,
        &mut scheduled.participants,
        vec![(SwapId(0), Box::new(machine))],
    );
    let scheduled_report = batch.report_for(SwapId(0)).expect("swap finished");

    assert_eq!(scheduled_report.verdict(), legacy_report.verdict());
    assert_eq!(scheduled_report.started_at, legacy_report.started_at);
    assert_eq!(scheduled_report.finished_at, legacy_report.finished_at);
    assert_eq!(scheduled_report.deployments, legacy_report.deployments);
    assert_eq!(scheduled_report.calls, legacy_report.calls);
    assert_eq!(scheduled_report.fees_paid, legacy_report.fees_paid);
    assert_eq!(
        scheduled_report.timeline.events(),
        legacy_report.timeline.events(),
        "per-swap timeline must match the blocking driver's"
    );
    for (a, b) in scheduled_report.edges.iter().zip(&legacy_report.edges) {
        assert_eq!(a.disposition, b.disposition);
    }
    assert_eq!(scheduled.world.fees.total_fees(), legacy.world.fees.total_fees());
}

/// A mixed-protocol batch where one swap is a multi-leader *complex-graph*
/// AC2T (the bridged double cycle — no single leader exists): it must
/// commit under the scheduler with the same fate rules as the blocking
/// driver, while two-party AC3WN/AC3TW swaps interleave around it.
#[test]
fn mixed_batch_with_multi_leader_complex_graph_commits() {
    let graphs = vec![
        vec![(0, 1, 50), (1, 0, 80)], // AC3WN two-party
        vec![(0, 1, 10), (1, 0, 20), (2, 3, 30), (3, 2, 40), (1, 2, 50)], // bridged double cycle
        vec![(0, 1, 40), (1, 2, 40), (2, 0, 90)], // 3-cycle, AC3TW
    ];
    let asset_params = (0..5).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
    let mut s = concurrent_custom_swaps(
        &graphs,
        asset_params,
        vec![ChainParams::fast("witness", 1_000)],
        1_000,
    );

    let ac3wn = Ac3wn::new(protocol_cfg());
    let ac3tw = Ac3tw::new(protocol_cfg());
    let herlihy_multi = HerlihyMulti::new(protocol_cfg());
    let machines: Vec<(SwapId, Box<dyn SwapMachine>)> = vec![
        (s.swaps[0].id, Box::new(ac3wn.machine(s.swaps[0].graph.clone(), s.swaps[0].witness))),
        (s.swaps[1].id, Box::new(herlihy_multi.machine(s.swaps[1].graph.clone()).unwrap())),
        (s.swaps[2].id, Box::new(ac3tw.machine(s.swaps[2].graph.clone()))),
    ];
    let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);

    assert_eq!(batch.failed(), 0);
    assert!(batch.all_atomic());
    let multi = batch.report_for(SwapId(1)).expect("multi-leader swap finished");
    assert_eq!(multi.protocol, ac3_core::ProtocolKind::HerlihyMulti);
    assert!(
        multi.verdict().is_committed(),
        "multi-leader complex graph must commit under the scheduler: {}",
        multi.verdict()
    );
    assert_eq!(multi.edges.len(), 5);
    // Fee attribution covers all three swaps.
    let attributed: u64 = s.swaps.iter().map(|swap| s.world.fees.fees_for_swap(swap.id)).sum();
    assert_eq!(attributed, s.world.fees.total_fees());
    s.world.assert_state_integrity();
}

/// B swaps spread over k real shared witness chains (the Section 5.2
/// workload): everything commits atomically, every witness chain actually
/// coordinates its share, and fees stay fully attributed.
#[test]
fn multi_witness_batch_spreads_coordination() {
    let asset_params = (0..4).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
    let witness_params =
        (0..3).map(|i| ChainParams::fast(&format!("witness-{i}"), 1_000)).collect();
    let mut s = concurrent_swaps_multi_witness(6, asset_params, witness_params, 1_000);
    assert_eq!(s.witness_chains.len(), 3);

    let driver = Ac3wn::new(protocol_cfg());
    let machines = ac3wn_machines(&s, &driver);
    let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);

    assert_eq!(batch.failed(), 0);
    assert_eq!(batch.committed(), 6);
    assert!(batch.all_atomic());
    // Round-robin: each of the 3 witness chains coordinated 2 swaps, so each
    // carries 2 registrations + 2 authorizations beyond its genesis block.
    for w in &s.witness_chains {
        let txs: usize = s
            .world
            .chain(*w)
            .unwrap()
            .store()
            .canonical_blocks()
            .map(|b| b.transactions.len())
            .sum();
        assert!(txs >= 4, "witness chain {w} saw only {txs} transactions");
    }
    let attributed: u64 = s.swaps.iter().map(|swap| s.world.fees.fees_for_swap(swap.id)).sum();
    assert_eq!(attributed, s.world.fees.total_fees());
    s.world.assert_state_integrity();
}
