//! Integration tests of the concurrent swap scheduler: the step/poll
//! machines must (a) reproduce the legacy blocking drivers exactly at
//! N = 1, (b) keep every swap atomic under a random mix of committing,
//! aborting and crash-recovering swaps running concurrently, and (c) scale
//! to the acceptance workload (64 AC2Ts over 4 shared asset chains plus a
//! shared witness chain) with zero atomicity violations.

use ac3_core::scenario::{concurrent_swaps_scenario, two_party_scenario, ScenarioConfig};
use ac3_core::{Ac3tw, Ac3wn, Herlihy, MultiSwapScenario, ProtocolConfig, Scheduler, SwapMachine};
use ac3_sim::{CrashWindow, SwapId};
use proptest::Gen;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

fn ac3wn_machines(s: &MultiSwapScenario, driver: &Ac3wn) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    let witness = s.witness_chain;
    s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), witness)))
}

/// The scheduler with a single machine must reproduce the legacy blocking
/// `execute` bit for bit: same decision, same counters, same timeline.
#[test]
fn n1_batch_is_equivalent_to_blocking_execute() {
    let cfg = ScenarioConfig::default();
    let driver = Ac3wn::new(protocol_cfg());

    let mut legacy = two_party_scenario(50, 80, &cfg);
    let legacy_report = driver.execute(&mut legacy).unwrap();

    let mut scheduled = two_party_scenario(50, 80, &cfg);
    let machine = driver.machine(scheduled.graph.clone(), scheduled.witness_chain);
    let batch = Scheduler::default().run(
        &mut scheduled.world,
        &mut scheduled.participants,
        vec![(SwapId(0), Box::new(machine))],
    );
    let scheduled_report = batch.report_for(SwapId(0)).expect("swap finished");

    assert_eq!(scheduled_report.decision, legacy_report.decision);
    assert_eq!(scheduled_report.verdict(), legacy_report.verdict());
    assert_eq!(scheduled_report.started_at, legacy_report.started_at);
    assert_eq!(scheduled_report.finished_at, legacy_report.finished_at);
    assert_eq!(scheduled_report.delta_ms, legacy_report.delta_ms);
    assert_eq!(scheduled_report.deployments, legacy_report.deployments);
    assert_eq!(scheduled_report.calls, legacy_report.calls);
    assert_eq!(scheduled_report.fees_paid, legacy_report.fees_paid);
    assert_eq!(
        scheduled_report.timeline.events(),
        legacy_report.timeline.events(),
        "per-swap timeline must match the blocking driver's world timeline"
    );
    for (a, b) in scheduled_report.edges.iter().zip(&legacy_report.edges) {
        assert_eq!(a.disposition, b.disposition);
    }
    // Same simulated end time and same fee totals in the two worlds.
    assert_eq!(scheduled.world.fees.total_fees(), legacy.world.fees.total_fees());
}

/// What a randomly drawn swap does during the property test.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fate {
    /// Everyone stays up: the swap must commit.
    Fine,
    /// The first sender crashes permanently before deploying: the swap must
    /// abort with every published contract refunded.
    CrashedSender,
    /// A recipient crashes around settlement time and recovers later: the
    /// decision must still be commit and atomicity must hold (AC3WN has no
    /// timelock to race).
    LateRecipient,
}

/// Concurrent-scheduler property test: a random mix of committing, aborting
/// and crash-recovering swaps runs concurrently; every swap must pass the
/// atomicity audit and the incremental chain state must survive intact.
/// Uses the deterministic proptest generator directly so the number of
/// simulated batches stays bounded.
#[test]
fn property_random_fate_mix_stays_atomic() {
    let mut gen = Gen::deterministic("scheduler::property_random_fate_mix_stays_atomic");
    for case in 0..12 {
        let swaps = 2 + gen.below(5) as usize; // 2..=6
        let chains = 2 + gen.below(3) as usize; // 2..=4
        let fates: Vec<Fate> = (0..swaps)
            .map(|_| match gen.below(3) {
                0 => Fate::Fine,
                1 => Fate::CrashedSender,
                _ => Fate::LateRecipient,
            })
            .collect();

        let mut s = concurrent_swaps_scenario(swaps, chains, &ScenarioConfig::default());
        for (i, fate) in fates.iter().enumerate() {
            match fate {
                Fate::Fine => {}
                Fate::CrashedSender => {
                    s.participants
                        .get_mut(&format!("s{i}a"))
                        .unwrap()
                        .schedule_crash(CrashWindow::permanent(0));
                }
                Fate::LateRecipient => {
                    s.participants
                        .get_mut(&format!("s{i}b"))
                        .unwrap()
                        .schedule_crash(CrashWindow { from: 14_000, until: 44_000 });
                }
            }
        }

        let driver = Ac3wn::new(protocol_cfg());
        let machines = ac3wn_machines(&s, &driver);
        let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);

        assert_eq!(batch.failed(), 0, "case {case} ({fates:?}): no swap may error");
        assert!(batch.all_atomic(), "case {case} ({fates:?}): atomicity audit failed");
        for (i, fate) in fates.iter().enumerate() {
            let report = batch.report_for(SwapId(i as u64)).unwrap();
            match fate {
                Fate::Fine => assert_eq!(
                    report.decision,
                    Some(true),
                    "case {case}: healthy swap {i} must commit"
                ),
                Fate::CrashedSender => {
                    assert_eq!(
                        report.decision,
                        Some(false),
                        "case {case}: swap {i} with a crashed sender must abort"
                    );
                    assert!(report.verdict().is_aborted() || report.verdict().is_atomic());
                }
                Fate::LateRecipient => assert!(
                    report.is_atomic(),
                    "case {case}: late-recipient swap {i} violated atomicity: {}",
                    report.verdict()
                ),
            }
        }
        s.world.assert_state_integrity();
    }
}

/// The acceptance workload: 64 concurrent AC2Ts over 4 shared asset chains
/// plus one shared witness chain complete with zero atomicity violations,
/// and actually interleave (the batch makespan is far below the sum of the
/// individual latencies).
#[test]
fn sixty_four_concurrent_swaps_over_four_chains_stay_atomic() {
    let mut s = concurrent_swaps_scenario(64, 4, &ScenarioConfig::default());
    let driver = Ac3wn::new(protocol_cfg());
    let machines = ac3wn_machines(&s, &driver);
    let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);

    assert_eq!(batch.failed(), 0, "no swap may error");
    assert_eq!(batch.committed(), 64, "all 64 swaps commit");
    assert!(batch.all_atomic(), "zero atomicity violations");

    let latency_sum: u64 = batch.reports().map(|(_, r)| r.latency_ms()).sum();
    assert!(
        batch.makespan_ms() * 4 < latency_sum,
        "makespan {} ms should be far below the serial sum {} ms",
        batch.makespan_ms(),
        latency_sum
    );

    // Every swap paid fees and the attribution covers the full ledger.
    let attributed: u64 = s.swaps.iter().map(|swap| s.world.fees.fees_for_swap(swap.id)).sum();
    assert_eq!(attributed, s.world.fees.total_fees());
    assert!(s.swaps.iter().all(|swap| s.world.fees.fees_for_swap(swap.id) > 0));

    s.world.assert_state_integrity();
}

/// A mixed-protocol batch: AC3WN, AC3TW and Herlihy machines all interleave
/// under one scheduler over one shared world.
#[test]
fn mixed_protocol_batch_interleaves() {
    let mut s = concurrent_swaps_scenario(6, 3, &ScenarioConfig::default());
    let ac3wn = Ac3wn::new(protocol_cfg());
    let ac3tw = Ac3tw::new(protocol_cfg());
    let herlihy = Herlihy::new(protocol_cfg());

    let mut machines: Vec<(SwapId, Box<dyn SwapMachine>)> = Vec::new();
    for (i, swap) in s.swaps.iter().enumerate() {
        let machine: Box<dyn SwapMachine> = match i % 3 {
            0 => Box::new(ac3wn.machine(swap.graph.clone(), s.witness_chain)),
            1 => Box::new(ac3tw.machine(swap.graph.clone())),
            _ => Box::new(herlihy.machine(swap.graph.clone()).unwrap()),
        };
        machines.push((swap.id, machine));
    }
    let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);

    assert_eq!(batch.failed(), 0);
    assert!(batch.all_atomic());
    for (id, report) in batch.reports() {
        assert!(
            report.verdict().is_committed(),
            "{id} under {} should commit: {}",
            report.protocol,
            report.verdict()
        );
    }
    s.world.assert_state_integrity();
}
