//! Fee-market bidding: pluggable fee policies and the replace-by-fee bid
//! lifecycle shared by every protocol machine.
//!
//! The paper's Section 6.2 cost model prices a swap at fixed fees (`fd` per
//! deployment, `ffc` per call). Under real block-space contention that is
//! only the *opening bid*: when many AC2Ts share a mempool, a rational
//! participant whose submission is stuck behind a queue of higher bids must
//! out-bid it or wait. A [`FeePolicy`] decides how aggressively to re-bid;
//! a [`Bid`] remembers enough about one submitted transaction to rebuild it
//! at a higher fee; the per-machine [`BidBook`] polls every live bid once
//! per machine poll, escalating stuck submissions through
//! [`ac3_sim::World::replace_tx`] (replace-by-fee) and re-submitting bids
//! that were priced out of a bounded mempool entirely. Every escalation
//! decision consults the chain's [`ChainCongestion`] snapshot: schedule
//! policies use it to skip re-bids the dynamic base fee would refuse, and
//! [`FeePolicy::Adaptive`] uses it as the schedule itself — opening at the
//! observed floor plus a margin and escalating to the observed marginal
//! price of next-block inclusion instead of a blind doubling ladder.
//!
//! Machines apply the returned [`BidChange`]s to whatever copies of the
//! transaction (and, for deployments, contract) ids they hold — a replaced
//! deployment derives a *new* contract id from the replacement transaction.

use crate::protocol::ProtocolError;
use ac3_chain::{
    Address, Amount, ChainError, ChainId, ContractId, MempoolError, OutPoint, Timestamp, TxId,
    TxOutput,
};
use ac3_contracts::{ContractCall, ContractSpec};
use ac3_sim::{ChainApi, ChainCongestion, ParticipantSet, WorldError};
use serde::{Deserialize, Serialize};

/// How a participant bids for block space when its submissions queue.
///
/// Attempt 0 is the initial submission; every policy opens at the chain's
/// scheduled fee (`fd`/`ffc`), so under an uncontended mempool all policies
/// cost exactly the paper's Section 6.2 prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FeePolicy {
    /// Never re-bid: pay the scheduled fee and wait out the queue (the
    /// paper's fixed-fee cost model). Congestion shows up as latency.
    #[default]
    Fixed,
    /// Re-bid in fixed increments of `step` up to `cap` — linear
    /// escalation. Congestion shows up as fees rising one step per stuck
    /// block.
    Linear {
        /// Fee increment per re-bid.
        step: Amount,
        /// Hard per-transaction fee ceiling (never exceeded).
        cap: Amount,
    },
    /// Double the fee on every re-bid up to `cap` — exponential
    /// backoff-style bidding that wins a slot in O(log contention) re-bids.
    Exponential {
        /// Hard per-transaction fee ceiling (never exceeded).
        cap: Amount,
    },
    /// Congestion-adaptive bidding: read the chain's
    /// [`ChainCongestion`] snapshot instead of climbing a blind
    /// escalation ladder. The opening bid is the observed admission floor
    /// (which includes the dynamic base fee) plus `margin`; a stuck bid
    /// escalates to one above the observed marginal price of next-block
    /// inclusion (the fee at the last in-budget mempool rank, probed via
    /// `Blockchain::mempool_fee_at_rank`), not to double its own fee — it
    /// pays what the market asks, nothing more.
    Adaptive {
        /// Paid on top of the observed floor when opening under congestion
        /// (an uncongested chain is bid at exactly the scheduled fee).
        margin: Amount,
        /// Hard per-transaction fee ceiling (never exceeded).
        cap: Amount,
    },
}

impl FeePolicy {
    /// The fee bid on `attempt` (0 = initial submission) for a transaction
    /// whose scheduled fee is `base`.
    ///
    /// Escalation from a zero scheduled fee starts at 1: a free-schedule
    /// chain still has a working fee market (a re-bid of 0 could never
    /// out-bid a positive floor). [`FeePolicy::Adaptive`] has no attempt
    /// schedule — all of its movement comes from escalation-time
    /// congestion reads — so it reports the scheduled fee for every
    /// attempt.
    pub fn fee_for_attempt(&self, base: Amount, attempt: u32) -> Amount {
        match self {
            FeePolicy::Fixed | FeePolicy::Adaptive { .. } => base,
            FeePolicy::Linear { step, .. } => {
                base.saturating_add(step.saturating_mul(attempt as Amount)).min(self.cap(base))
            }
            FeePolicy::Exponential { .. } => {
                let fee = if base == 0 {
                    if attempt == 0 {
                        0
                    } else {
                        // 1, 2, 4, ... — the doubling ladder grounded at 1.
                        1u64.checked_shl(attempt - 1).unwrap_or(Amount::MAX)
                    }
                } else {
                    let factor = 1u64.checked_shl(attempt).unwrap_or(Amount::MAX);
                    base.saturating_mul(factor)
                };
                fee.min(self.cap(base))
            }
        }
    }

    /// The most this policy will ever pay for one transaction with
    /// scheduled fee `base` (at least `base`: the opening bid is always
    /// affordable).
    pub fn cap(&self, base: Amount) -> Amount {
        match self {
            FeePolicy::Fixed => base,
            FeePolicy::Linear { cap, .. }
            | FeePolicy::Exponential { cap }
            | FeePolicy::Adaptive { cap, .. } => (*cap).max(base),
        }
    }

    /// Whether this policy ever raises its bid.
    pub fn escalates(&self) -> bool {
        !matches!(self, FeePolicy::Fixed)
    }
}

/// What a bid needs to rebuild its transaction at a higher fee.
#[derive(Debug, Clone)]
enum BidKind {
    /// A contract deployment: same inputs, same locked value; the change
    /// output shrinks as the fee grows.
    Deploy { inputs: Vec<OutPoint>, locked_value: Amount, input_total: Amount, payload: Vec<u8> },
    /// A contract call: same target contract, same payload.
    Call { contract: ContractId, payload: Vec<u8> },
}

/// One fee-bid lifecycle: a submitted transaction a machine is waiting on,
/// with enough kept around to re-bid it.
#[derive(Debug, Clone)]
pub struct Bid {
    chain: ChainId,
    actor: Address,
    txid: TxId,
    fee: Amount,
    base_fee: Amount,
    attempt: u32,
    last_bid_at: Timestamp,
    settled: bool,
    /// Whether the current transaction occupies (or occupied) a mempool
    /// slot the owner is on the hook for. Cleared when an eviction is
    /// observed and no re-entry succeeded (the ledger refunded the fee —
    /// the machine's tally must drop it too); set again on re-entry.
    billed: bool,
    kind: BidKind,
}

impl Bid {
    /// The current transaction id of this bid.
    pub fn txid(&self) -> TxId {
        self.txid
    }

    /// The current fee this bid offers.
    pub fn fee(&self) -> Amount {
        self.fee
    }

    /// The scheduled (attempt-0) fee.
    pub fn base_fee(&self) -> Amount {
        self.base_fee
    }

    /// Build the replacement transaction at `fee`. `None` when a deploy's
    /// reserved inputs can no longer cover the raised fee.
    fn build(
        &self,
        participants: &mut ParticipantSet,
        fee: Amount,
    ) -> Result<Option<ac3_chain::Transaction>, ProtocolError> {
        let Some(participant) = participants.by_address_mut(&self.actor) else {
            return Err(ProtocolError::UnknownParticipant(format!("{}", self.actor)));
        };
        let builder = participant.builder(self.chain);
        let tx = match &self.kind {
            BidKind::Deploy { inputs, locked_value, input_total, payload } => {
                let Some(spendable) = input_total.checked_sub(locked_value + fee) else {
                    return Ok(None);
                };
                let change = if spendable > 0 {
                    vec![TxOutput::new(self.actor, spendable)]
                } else {
                    Vec::new()
                };
                builder.deploy(inputs.clone(), *locked_value, change, payload.clone(), fee)
            }
            BidKind::Call { contract, payload } => builder.call(*contract, payload.clone(), fee),
        };
        Ok(Some(tx))
    }
}

/// One applied bid event, reported so the owning machine can rewrite every
/// copy of the superseded transaction (and contract) id it holds and keep
/// its fee tally in sync with the world ledger. Three shapes:
///
/// * replace-by-fee escalation — new id, positive `fee_delta`, `rebid`;
/// * eviction re-entry — new id, `fee_delta` covers refund + new bid,
///   `rebid`;
/// * eviction hold (could not re-enter yet) — ids equal, negative
///   `fee_delta` (the ledger refunded the evicted fee), not a `rebid`.
#[derive(Debug, Clone, Copy)]
pub struct BidChange {
    /// The chain the bid lives on.
    pub chain: ChainId,
    /// The transaction id the event superseded.
    pub old_txid: TxId,
    /// The transaction id now in flight (equal to `old_txid` for an
    /// eviction hold).
    pub new_txid: TxId,
    /// Signed correction to the owner's fee tally (mirrors exactly what
    /// the world ledger did).
    pub fee_delta: i64,
    /// Whether a new transaction was actually bid (escalation or
    /// re-entry).
    pub rebid: bool,
    /// Whether the bid is a contract deployment — if so, the deployed
    /// contract id changed with the transaction id.
    pub deploy: bool,
}

impl BidChange {
    /// The contract id the superseded deployment would have created.
    pub fn old_contract(&self) -> ContractId {
        ContractId(self.old_txid.0)
    }

    /// The contract id the replacement deployment creates.
    pub fn new_contract(&self) -> ContractId {
        ContractId(self.new_txid.0)
    }

    /// Fold this event into a machine's fee tally and re-bid counter —
    /// the accounting half of applying a change (the machine handles the
    /// id rewriting, which depends on its own state layout).
    pub fn apply_accounting(&self, fees: &mut Amount, rebids: &mut u64) {
        *fees = fees.saturating_add_signed(self.fee_delta);
        if self.rebid {
            *rebids += 1;
        }
    }

    /// Rewrite one stored transaction id if this event superseded it.
    pub fn rewrite_txid(&self, txid: &mut TxId) {
        if *txid == self.old_txid {
            *txid = self.new_txid;
        }
    }
}

/// Whether a world submission failed for fee-market reasons (pool full,
/// out-bid) or transient reachability — soft failures a bidder retries
/// later rather than errors that fail the protocol.
pub(crate) fn is_soft_submit_error(e: &WorldError) -> bool {
    matches!(
        e,
        WorldError::ChainUnreachable(_)
            | WorldError::Chain(ChainError::Mempool(
                MempoolError::FeeTooLow { .. } | MempoolError::Full
            ))
    )
}

/// The set of live bids owned by one protocol machine.
#[derive(Debug, Clone, Default)]
pub struct BidBook {
    policy: FeePolicy,
    bids: Vec<Bid>,
}

impl BidBook {
    /// An empty book bidding under `policy`.
    pub fn new(policy: FeePolicy) -> Self {
        BidBook { policy, bids: Vec::new() }
    }

    /// The policy this book bids under.
    pub fn policy(&self) -> FeePolicy {
        self.policy
    }

    /// Total fees currently bid across every transaction the book is on
    /// the hook for (superseded bids excluded — replace-by-fee means only
    /// the final bid pays; evicted-and-not-yet-re-entered bids excluded —
    /// the ledger refunded them).
    pub fn total_fees(&self) -> Amount {
        self.bids.iter().filter(|b| b.billed).map(|b| b.fee).sum()
    }

    /// Submit a contract deployment as `owner`, opening a bid at the
    /// chain's scheduled deployment fee (raised to the mempool's admission
    /// floor when the pool is full, never beyond the policy cap).
    ///
    /// Returns `Ok(None)` when the owner is crashed, the chain is
    /// unreachable, or the pool's floor is above what the policy will pay —
    /// the caller decides what a missing publication means for the
    /// protocol.
    pub fn submit_deploy(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
        owner: &Address,
        chain: ChainId,
        spec: &ContractSpec,
        lock: Amount,
    ) -> Result<Option<(TxId, ContractId, Amount)>, ProtocolError> {
        let now = world.now();
        let Some(participant) = participants.by_address_mut(owner) else {
            return Err(ProtocolError::UnknownParticipant(format!("{owner}")));
        };
        if !participant.is_available(now) || !world.is_reachable(chain) {
            return Ok(None);
        }
        let base = world.chain(chain)?.params().deploy_fee;
        let fee = self.opening_fee(world, chain, base)?;
        let Some((inputs, change)) = world.chain(chain)?.plan_deploy(owner, lock, fee) else {
            return Err(ProtocolError::InsufficientFunds { who: participant.name.clone(), chain });
        };
        let input_total = lock + fee + change.iter().map(|o| o.value).sum::<Amount>();
        let tx =
            participant.builder(chain).deploy(inputs.clone(), lock, change, spec.to_payload(), fee);
        let txid = tx.id();
        match world.submit(chain, tx) {
            Ok(_) => {}
            Err(e) if is_soft_submit_error(&e) => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        self.bids.push(Bid {
            chain,
            actor: *owner,
            txid,
            fee,
            base_fee: base,
            attempt: 0,
            last_bid_at: now,
            settled: false,
            billed: true,
            kind: BidKind::Deploy {
                inputs,
                locked_value: lock,
                input_total,
                payload: spec.to_payload(),
            },
        });
        Ok(Some((txid, ContractId(txid.0), fee)))
    }

    /// Submit a contract call as `caller`, opening a bid at the chain's
    /// scheduled call fee (raised to the admission floor when the pool is
    /// full, never beyond the policy cap). Returns `Ok(None)` under the
    /// same conditions as [`BidBook::submit_deploy`].
    pub fn submit_call(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
        caller: &Address,
        chain: ChainId,
        contract: ContractId,
        call: &ContractCall,
    ) -> Result<Option<(TxId, Amount)>, ProtocolError> {
        let now = world.now();
        let Some(participant) = participants.by_address_mut(caller) else {
            return Err(ProtocolError::UnknownParticipant(format!("{caller}")));
        };
        if !participant.is_available(now) || !world.is_reachable(chain) {
            return Ok(None);
        }
        let base = world.chain(chain)?.params().call_fee;
        let fee = self.opening_fee(world, chain, base)?;
        let tx = participant.builder(chain).call(contract, call.to_payload(), fee);
        let txid = tx.id();
        match world.submit(chain, tx) {
            Ok(_) => {}
            Err(e) if is_soft_submit_error(&e) => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        self.bids.push(Bid {
            chain,
            actor: *caller,
            txid,
            fee,
            base_fee: base,
            attempt: 0,
            last_bid_at: now,
            settled: false,
            billed: true,
            kind: BidKind::Call { contract, payload: call.to_payload() },
        });
        Ok(Some((txid, fee)))
    }

    /// The policy's next bid *strictly above* the bid's current fee
    /// (replace-by-fee requires it), with the attempt counter it lands on.
    /// Consults the escalation-time `congestion` snapshot:
    ///
    /// * [`FeePolicy::Adaptive`] bids one above `marginal` — the observed
    ///   price of next-block inclusion, probed from the mempool by the
    ///   caller (stuck bids only: the probe is O(block budget)) — raised
    ///   to the admission floor; the observed market *is* its schedule;
    /// * schedule policies walk their ladder forward past the current fee
    ///   (which can sit above the schedule after a floor-raised opening
    ///   bid or an eviction re-entry) *and* past the chain's dynamic base
    ///   fee — a re-bid below the base fee would be refused admission, so
    ///   stopping there would stall the escalation.
    ///
    /// `None` when the policy has no headroom left.
    fn next_escalation(
        &self,
        bid: &Bid,
        congestion: &ChainCongestion,
        marginal: Option<Amount>,
    ) -> Option<(u32, Amount)> {
        let cap = self.policy.cap(bid.base_fee);
        if !self.policy.escalates() || bid.fee >= cap {
            return None;
        }
        if matches!(self.policy, FeePolicy::Adaptive { .. }) {
            let observed = marginal
                .map(|f| f.saturating_add(1))
                .unwrap_or(0)
                .max(congestion.fee_floor)
                .max(bid.fee.saturating_add(1))
                .min(cap);
            if observed < congestion.base_fee {
                // The cap clamped the re-bid under the chain's admission
                // price: the replacement would be refused, so go quiet
                // (the next poll re-reads the snapshot — escalation
                // resumes if the base fee decays back under the cap).
                return None;
            }
            return (observed > bid.fee).then_some((bid.attempt + 1, observed));
        }
        let mut attempt = bid.attempt + 1;
        let mut next = self.policy.fee_for_attempt(bid.base_fee, attempt);
        // Monotone schedules reach the cap in finitely many steps; the
        // iteration bound guards degenerate policies (e.g. a zero linear
        // step) that never grow.
        for _ in 0..128 {
            if next > bid.fee && next >= congestion.base_fee {
                return Some((attempt, next));
            }
            if next >= cap {
                break;
            }
            attempt += 1;
            let stepped = self.policy.fee_for_attempt(bid.base_fee, attempt);
            if stepped == next {
                break;
            }
            next = stepped;
        }
        None
    }

    /// The opening bid: the scheduled fee, raised to the chain's admission
    /// floor (dynamic base fee, or a full pool's eviction floor) when the
    /// policy allows it. [`FeePolicy::Adaptive`] additionally pays its
    /// configured margin on top of a non-zero floor, buying next-block
    /// headroom up front instead of discovering the price by re-bidding.
    fn opening_fee(
        &self,
        world: &mut dyn ChainApi,
        chain: ChainId,
        base: Amount,
    ) -> Result<Amount, ProtocolError> {
        let floor = world.congestion(chain)?.fee_floor;
        match self.policy {
            FeePolicy::Adaptive { margin, .. } if floor > 0 => {
                Ok(base.max(floor.saturating_add(margin)).min(self.policy.cap(base)))
            }
            _ if floor > base && floor <= self.policy.cap(base) => Ok(floor),
            _ => Ok(base),
        }
    }

    /// Poll every live bid once: settle bids whose transaction reached the
    /// canonical chain, escalate (replace-by-fee) bids stuck behind more
    /// than a block's worth of higher bids, and re-submit bids whose
    /// transaction was evicted from a full pool. Returns the applied
    /// changes so the owning machine can rewrite its stored ids.
    pub fn poll(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Vec<BidChange>, ProtocolError> {
        let mut changes = Vec::new();
        let now = world.now();
        for i in 0..self.bids.len() {
            let (chain, txid, actor) = (self.bids[i].chain, self.bids[i].txid, self.bids[i].actor);
            if self.bids[i].settled {
                continue;
            }
            let Ok(c) = world.chain(chain) else { continue };
            if c.tx_depth(&txid).is_some() {
                self.bids[i].settled = true;
                continue;
            }
            let available = participants.by_address(&actor).is_some_and(|p| p.is_available(now));
            if !available || !world.is_reachable(chain) {
                continue;
            }
            let c = world.chain(chain)?;
            let interval = c.params().block_interval_ms;
            if now < self.bids[i].last_bid_at + interval {
                // Give every bid at least one block-production opportunity.
                continue;
            }
            let budget = c.params().max_txs_per_block();
            let in_pool = c.mempool_contains(&txid);
            if in_pool {
                // Stuck if it would miss the next block (O(budget) probe,
                // not an O(depth) rank scan) — or if the chain's base fee
                // has risen past its bid (O(1) probe), which miners skip
                // outright.
                let below_base = self.bids[i].fee < c.base_fee();
                let deep = !c.mempool_position_within(&txid, budget).unwrap_or(true);
                if !below_base && !deep {
                    continue;
                }
                // The escalation-time congestion read. Reachability was
                // checked above, and only genuinely stuck Adaptive bids
                // pay the O(budget) marginal-price probe — settled and
                // on-schedule bids stay on the cheap path. Both reads are
                // memoised per (chain, tick): with thousands of machines
                // stuck behind the same congested mempool, only the first
                // poller of a tick derives the snapshot and walks the
                // priority order for the marginal price.
                let congestion = world.congestion(chain)?;
                let marginal = if matches!(self.policy, FeePolicy::Adaptive { .. }) {
                    world.marginal_fee(chain)?
                } else {
                    None
                };
                let bid = &self.bids[i];
                let Some((attempt, next)) = self.next_escalation(bid, &congestion, marginal) else {
                    continue; // fixed policy, or the cap is reached
                };
                let Some(tx) = bid.build(participants, next)? else { continue };
                let new_txid = match world.replace_tx(chain, txid, tx) {
                    Ok(id) => id,
                    Err(WorldError::Chain(ChainError::Mempool(_)))
                    | Err(WorldError::ChainUnreachable(_)) => continue,
                    Err(e) => return Err(e.into()),
                };
                let bid = &mut self.bids[i];
                let delta = (next - bid.fee) as i64;
                bid.txid = new_txid;
                bid.fee = next;
                bid.attempt = attempt;
                bid.last_bid_at = now;
                changes.push(BidChange {
                    chain,
                    old_txid: txid,
                    new_txid,
                    fee_delta: delta,
                    rebid: true,
                    deploy: matches!(bid.kind, BidKind::Deploy { .. }),
                });
            } else {
                if world.tx_in_flight(chain, &txid) {
                    // The submission (or its latest re-bid) is still riding
                    // the network link — absent from both the mempool and
                    // the canonical chain only because it has not arrived
                    // yet. Re-submitting now would double-spend the bid's
                    // inputs against its own in-flight copy.
                    continue;
                }
                if self.bids[i].billed && world.is_billed(&txid) {
                    // Neither pending nor canonical, yet the ledger still
                    // charges for it: the transaction was mined onto a
                    // branch that has since been reorged out (the sim does
                    // not resubmit reorged-out transactions — DESIGN.md
                    // §2). That is NOT an eviction: no refund was issued,
                    // so emitting one (or re-bidding a duplicate) would
                    // desynchronise the machine's tally from the ledger.
                    // Mirror the sim's abandonment semantics and retire
                    // the bid.
                    self.bids[i].settled = true;
                    continue;
                }
                // Priced out of a bounded pool: the ledger refunded the
                // evicted fee. Re-enter at an escalated bid that beats the
                // current admission floor (which includes the dynamic base
                // fee), if the policy affords it; otherwise surrender the
                // refund to the owner's tally and hold the bid for a later
                // retry.
                let congestion = world.congestion(chain)?;
                let bid = &self.bids[i];
                let floor = congestion.fee_floor;
                let was_billed = bid.billed;
                let old_fee = bid.fee;
                // Bid the escalation schedule's next step, raised to the
                // admission floor, clamped to the cap — but never below
                // the fee already offered (that final bound is the
                // load-bearing one after the cap clamp).
                let next = self
                    .policy
                    .fee_for_attempt(bid.base_fee, bid.attempt + 1)
                    .max(floor)
                    .min(self.policy.cap(bid.base_fee))
                    .max(bid.fee);
                let held = |bids: &mut Vec<Bid>, changes: &mut Vec<BidChange>| {
                    bids[i].last_bid_at = now;
                    if was_billed {
                        bids[i].billed = false;
                        changes.push(BidChange {
                            chain,
                            old_txid: txid,
                            new_txid: txid,
                            fee_delta: -(old_fee as i64),
                            rebid: false,
                            deploy: matches!(bids[i].kind, BidKind::Deploy { .. }),
                        });
                    }
                };
                let Some(tx) = bid.build(participants, next)? else {
                    held(&mut self.bids, &mut changes);
                    continue;
                };
                let new_txid = match world.submit(chain, tx) {
                    Ok(id) => id,
                    Err(WorldError::Chain(ChainError::Mempool(_)))
                    | Err(WorldError::ChainUnreachable(_)) => {
                        // Cannot re-enter yet — the slot is unaffordable,
                        // or the evicted transaction's released inputs were
                        // claimed by someone else in the meantime
                        // (ConflictingInput). Hold the bid and retry rather
                        // than failing the swap, mirroring the escalation
                        // branch.
                        held(&mut self.bids, &mut changes);
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                };
                let bid = &mut self.bids[i];
                // The evicted fee was refunded (now or at an earlier hold);
                // the owner owes exactly the new bid on top of whatever is
                // still billed.
                let delta = if was_billed { next as i64 - old_fee as i64 } else { next as i64 };
                bid.txid = new_txid;
                bid.fee = next;
                bid.attempt += 1;
                bid.last_bid_at = now;
                bid.billed = true;
                changes.push(BidChange {
                    chain,
                    old_txid: txid,
                    new_txid,
                    fee_delta: delta,
                    rebid: true,
                    deploy: matches!(bid.kind, BidKind::Deploy { .. }),
                });
            }
        }
        Ok(changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_sim::World;

    #[test]
    fn fixed_policy_never_escalates() {
        let p = FeePolicy::Fixed;
        for attempt in 0..10 {
            assert_eq!(p.fee_for_attempt(4, attempt), 4);
        }
        assert_eq!(p.cap(4), 4);
        assert!(!p.escalates());
    }

    #[test]
    fn linear_policy_steps_to_its_cap() {
        let p = FeePolicy::Linear { step: 3, cap: 10 };
        assert_eq!(p.fee_for_attempt(4, 0), 4);
        assert_eq!(p.fee_for_attempt(4, 1), 7);
        assert_eq!(p.fee_for_attempt(4, 2), 10);
        assert_eq!(p.fee_for_attempt(4, 3), 10, "clamped at the cap");
        assert!(p.escalates());
    }

    #[test]
    fn exponential_policy_doubles_to_its_cap() {
        let p = FeePolicy::Exponential { cap: 30 };
        assert_eq!(p.fee_for_attempt(4, 0), 4);
        assert_eq!(p.fee_for_attempt(4, 1), 8);
        assert_eq!(p.fee_for_attempt(4, 2), 16);
        assert_eq!(p.fee_for_attempt(4, 3), 30, "clamped at the cap");
        assert_eq!(p.fee_for_attempt(4, 63), 30, "huge attempts saturate safely");
    }

    #[test]
    fn cap_is_never_below_the_base_fee() {
        // A cap below the scheduled fee cannot block the opening bid.
        let p = FeePolicy::Exponential { cap: 1 };
        assert_eq!(p.cap(4), 4);
        assert_eq!(p.fee_for_attempt(4, 5), 4);
    }

    #[test]
    fn exponential_escalation_from_a_zero_base_starts_at_one() {
        // Regression: `base.saturating_mul(2^attempt)` with base = 0
        // re-bids 0 forever — a zero-schedule bid could never out-bid a
        // positive floor. The ladder must ground itself at 1.
        let p = FeePolicy::Exponential { cap: 30 };
        assert_eq!(p.fee_for_attempt(0, 0), 0, "the opening bid stays at the schedule");
        assert_eq!(p.fee_for_attempt(0, 1), 1);
        assert_eq!(p.fee_for_attempt(0, 2), 2);
        assert_eq!(p.fee_for_attempt(0, 3), 4);
        assert_eq!(p.fee_for_attempt(0, 5), 16);
        assert_eq!(p.fee_for_attempt(0, 6), 30, "clamped at the cap");
        assert_eq!(p.fee_for_attempt(0, 63), 30, "huge attempts saturate safely");
    }

    #[test]
    fn zero_base_bid_escalates_past_a_positive_queue() {
        // End-to-end regression for the zero-base stall: a bid whose
        // scheduled fee is 0 enters a pool, gets out-ranked by paid
        // traffic deeper than the block budget, and must start the doubling
        // ladder at 1 instead of re-bidding 0 forever.
        use ac3_chain::{ChainParams, TxBuilder};
        use ac3_contracts::HtlcCall;
        use ac3_crypto::{Hash256, KeyPair};

        let mut world = World::new();
        let mut params = ChainParams::fast("freebie", 1); // 1 tx per block
        params.call_fee = 0; // the zero-base schedule
        params.mempool_capacity = 4; // the bid plus the junk fill the pool
        let mut participants = ParticipantSet::new();
        let alice = participants.add("alice");
        let chain = world.add_chain(params, &[(alice, 1_000)]);

        let mut book = BidBook::new(FeePolicy::Exponential { cap: 8 });
        let phantom = ContractId(Hash256::digest(b"phantom"));
        let call = ContractCall::Htlc(HtlcCall::Refund);
        let (txid, fee) = book
            .submit_call(&mut world, &mut participants, &alice, chain, phantom, &call)
            .unwrap()
            .expect("empty pool admits the zero bid");
        assert_eq!(fee, 0);

        // Paid junk out-ranks the free bid far beyond the 1-tx budget and
        // fills the pool to capacity — escalation must work replace-by-fee
        // against a full pool.
        let mut junk = TxBuilder::new(KeyPair::from_seed(b"spammer"), 1 << 40);
        for i in 0..3u8 {
            let phantom_input =
                vec![ac3_chain::OutPoint::new(ac3_chain::TxId(Hash256::digest(&[i, 0x99])), 0)];
            world.submit(chain, junk.transfer(phantom_input, vec![], 5)).unwrap();
        }
        assert_eq!(world.congestion(chain).unwrap().depth, 4, "pool is full");

        // 0 -> 1 -> 2 -> 4 -> 8 (cap): every poll escalates, none re-bids 0.
        let mut last = 0;
        for expected in [1u64, 2, 4, 8] {
            world.advance(1_000);
            let changes = book.poll(&mut world, &mut participants).unwrap();
            assert_eq!(changes.len(), 1, "bid at {last} must escalate");
            assert!(changes[0].rebid);
            assert_eq!(changes[0].fee_delta, (expected - last) as i64);
            last = expected;
        }
        assert_eq!(book.total_fees(), 8);
        // At the cap the ladder ends.
        world.advance(1_000);
        assert!(book.poll(&mut world, &mut participants).unwrap().is_empty());
        assert_ne!(
            world.chain(chain).unwrap().mempool_fee_of(&txid),
            Some(0),
            "the original zero bid was superseded"
        );
    }

    #[test]
    fn adaptive_opens_at_the_floor_plus_margin_and_escalates_to_the_observed_price() {
        // Adaptive reads the congestion snapshot instead of doubling: the
        // opening bid is floor + margin, and a stuck bid re-bids to one
        // above the marginal price of next-block inclusion.
        use ac3_chain::{ChainParams, TxBuilder};
        use ac3_contracts::HtlcCall;
        use ac3_crypto::{Hash256, KeyPair};

        let mut world = World::new();
        let mut params = ChainParams::fast("adaptive", 1); // 1 tx per block
        params.mempool_capacity = 4;
        let mut participants = ParticipantSet::new();
        let alice = participants.add("alice");
        let chain = world.add_chain(params, &[(alice, 1_000)]);

        // Fill the pool: fees 9/9/9/3 → eviction floor 4.
        let mut junk = TxBuilder::new(KeyPair::from_seed(b"spammer"), 1 << 40);
        for (i, fee) in [(0u8, 9u64), (1, 9), (2, 9), (3, 3)] {
            let phantom =
                vec![ac3_chain::OutPoint::new(ac3_chain::TxId(Hash256::digest(&[i, 0x44])), 0)];
            world.submit(chain, junk.transfer(phantom, vec![], fee)).unwrap();
        }
        assert_eq!(world.congestion(chain).unwrap().fee_floor, 4);

        let mut book = BidBook::new(FeePolicy::Adaptive { margin: 1, cap: 64 });
        let phantom_contract = ContractId(Hash256::digest(b"phantom"));
        let call = ContractCall::Htlc(HtlcCall::Refund);
        let (_, fee) = book
            .submit_call(&mut world, &mut participants, &alice, chain, phantom_contract, &call)
            .unwrap()
            .expect("the floor bid plus margin buys the slot");
        assert_eq!(fee, 5, "opened at floor 4 + margin 1 (evicting the fee-3 junk)");

        // Still ranked behind three fee-9 transactions (budget 1): the
        // escalation consults the snapshot — marginal next-block price is
        // 9 — and bids exactly 10, not 2 × 5.
        world.advance(1_000);
        let changes = book.poll(&mut world, &mut participants).unwrap();
        assert_eq!(changes.len(), 1);
        assert!(changes[0].rebid);
        assert_eq!(changes[0].fee_delta, 5, "5 -> 10: one above the observed price");
        assert_eq!(book.total_fees(), 10);

        // Now at the head of the queue: no further escalation, and the bid
        // mines at the adaptive price.
        world.advance(1_000);
        assert!(book.poll(&mut world, &mut participants).unwrap().is_empty());
        world.advance(1_000);
        assert!(book.poll(&mut world, &mut participants).unwrap().is_empty());
        assert_eq!(book.total_fees(), 10);
    }

    #[test]
    fn escalation_resumes_above_a_floor_raised_opening_bid() {
        // Regression: a bid whose opening fee was raised to a full pool's
        // admission floor sits *above* its attempt schedule; escalation
        // used to read the schedule at attempt+1, find it below the
        // current fee and stall forever. It must instead walk the schedule
        // past the current fee.
        use ac3_chain::{ChainParams, TxBuilder};
        use ac3_contracts::HtlcCall;
        use ac3_crypto::{Hash256, KeyPair};

        let mut world = World::new();
        let mut params = ChainParams::fast("floor", 1); // 1 tx per block
        params.mempool_capacity = 3;
        let mut participants = ParticipantSet::new();
        let alice = participants.add("alice");
        let chain = world.add_chain(params, &[(alice, 1_000)]);

        // Fill the pool with junk at fee 19: the admission floor is 20.
        let mut junk = TxBuilder::new(KeyPair::from_seed(b"spammer"), 1 << 40);
        for i in 0..3u8 {
            let phantom =
                vec![ac3_chain::OutPoint::new(ac3_chain::TxId(Hash256::digest(&[i, 0x77])), 0)];
            world.submit(chain, junk.transfer(phantom, vec![], 19)).unwrap();
        }
        assert_eq!(world.congestion(chain).unwrap().fee_floor, 20);

        // Base call fee 2, exponential schedule 4/8/16/32/64: the opening
        // bid is floor-raised to 20, between schedule steps.
        let mut book = BidBook::new(FeePolicy::Exponential { cap: 64 });
        let phantom_contract = ContractId(Hash256::digest(b"phantom"));
        let call = ContractCall::Htlc(HtlcCall::Refund);
        let (_, fee) = book
            .submit_call(&mut world, &mut participants, &alice, chain, phantom_contract, &call)
            .unwrap()
            .expect("floor 20 is within the cap");
        assert_eq!(fee, 20, "opening bid raised to the admission floor");

        // Out-bid the remaining junk so the bid ranks behind two fee-50
        // transactions (deeper than the 1-tx block budget).
        for i in 0..2u8 {
            let phantom =
                vec![ac3_chain::OutPoint::new(ac3_chain::TxId(Hash256::digest(&[i, 0x88])), 0)];
            world.submit(chain, junk.transfer(phantom, vec![], 50)).unwrap();
        }

        // The stuck bid must escalate to 32 — the first schedule step
        // strictly above 20 — not stall at fee_for_attempt(1) = 4.
        world.advance(1_000);
        let changes = book.poll(&mut world, &mut participants).unwrap();
        assert_eq!(changes.len(), 1);
        assert!(changes[0].rebid);
        assert_eq!(changes[0].fee_delta, 12, "20 → 32");
        assert_eq!(book.total_fees(), 32);

        // Still out-ranked: the next re-bid reaches the cap.
        world.advance(1_000);
        let changes = book.poll(&mut world, &mut participants).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].fee_delta, 32, "32 → 64 (cap)");
        assert_eq!(book.total_fees(), 64);

        // At the cap there is no headroom left: no further re-bids.
        world.advance(1_000);
        assert!(book.poll(&mut world, &mut participants).unwrap().is_empty());
    }

    #[test]
    fn adaptive_goes_quiet_when_the_base_fee_exceeds_its_cap_and_resumes_on_decay() {
        // Regression: when the chain's base fee rises above an Adaptive
        // bid's cap, the clamped re-bid would be refused admission — the
        // book must stop attempting the doomed replace-by-fee (no change,
        // no churn) and resume escalating once the base fee decays back
        // under the cap.
        use ac3_chain::{coinbase, BaseFeeSchedule, ChainParams, OutPoint, TxBuilder, TxOutput};
        use ac3_contracts::HtlcCall;
        use ac3_crypto::{Hash256, KeyPair};

        let mut world = World::new();
        let mut params = ChainParams::fast("pricey", 2); // budget 2, target 1
        params.base_fee_schedule = BaseFeeSchedule::eip1559_like();
        let mut participants = ParticipantSet::new();
        let alice = participants.add("alice");
        let funder = ac3_chain::Address::from(KeyPair::from_seed(b"funder").public());
        let mut genesis = vec![(alice, 1_000)];
        genesis.extend(std::iter::repeat_n((funder, 100), 8));
        let chain = world.add_chain(params, &genesis);

        // Open an Adaptive bid with a tight cap of 3 (floor 1 + margin 1 = 2).
        let mut book = BidBook::new(FeePolicy::Adaptive { margin: 1, cap: 3 });
        let phantom = ContractId(Hash256::digest(b"phantom"));
        let call = ContractCall::Htlc(HtlcCall::Refund);
        let (txid, fee) = book
            .submit_call(&mut world, &mut participants, &alice, chain, phantom, &call)
            .unwrap()
            .expect("floor 1 + margin 1 is under the cap");
        assert_eq!(fee, 2);

        // Full blocks of funded demand push the base fee past the cap.
        let mut spam = TxBuilder::new(KeyPair::from_seed(b"funder"), 0);
        for block in 0..3u64 {
            for i in 0..2u64 {
                let input = OutPoint::new(coinbase(funder, 100, 1 + block * 2 + i).id(), 0);
                world
                    .submit(chain, spam.transfer(vec![input], vec![TxOutput::new(funder, 95)], 5))
                    .unwrap();
            }
            world.advance(1_000);
        }
        assert!(world.congestion(chain).unwrap().base_fee > 3, "base fee rose past the cap");

        // The bid is stuck below the base fee, but the cap makes any
        // re-bid inadmissible: the book must go quiet, not churn.
        let changes = book.poll(&mut world, &mut participants).unwrap();
        assert!(changes.is_empty(), "no doomed replace-by-fee attempts");
        assert_eq!(world.chain(chain).unwrap().mempool_fee_of(&txid), Some(2), "bid untouched");
        assert_eq!(book.total_fees(), 2);

        // Demand gone, the base fee decays back under the cap: escalation
        // resumes at the cap and the bid becomes mineable again.
        world
            .advance_until("base fee decays under the cap", 20_000, |w| {
                w.chain(chain).map(|c| c.base_fee() <= 3).unwrap_or(false)
            })
            .unwrap();
        let changes = book.poll(&mut world, &mut participants).unwrap();
        assert_eq!(changes.len(), 1, "escalation resumed");
        assert!(changes[0].rebid);
        assert_eq!(book.total_fees(), 3, "re-bid at the cap");
    }

    #[test]
    fn reorged_out_bid_is_abandoned_not_mistaken_for_evicted() {
        // Regression: a transaction mined onto a branch that is later
        // reorged out is neither pending nor canonical — exactly like an
        // evicted one. But the ledger never refunded it, so the bid must
        // be retired (the sim abandons reorged-out transactions), not
        // refunded or re-bid.
        use ac3_chain::ChainParams;
        use ac3_contracts::{ContractSpec, HtlcSpec};
        use ac3_crypto::Hashlock;

        let mut world = World::new();
        let mut params = ChainParams::fast("forky", 1_000);
        params.stable_depth = 3;
        let mut participants = ParticipantSet::new();
        let alice = participants.add("alice");
        let bob = participants.add("bob");
        let chain = world.add_chain(params, &[(alice, 100), (bob, 100)]);

        let mut book = BidBook::new(FeePolicy::Exponential { cap: 64 });
        let spec = ContractSpec::Htlc(HtlcSpec {
            recipient: bob,
            hashlock: Hashlock::from_secret(b"s").lock,
            timelock: 1_000_000,
        });
        let (txid, _, fee) = book
            .submit_deploy(&mut world, &mut participants, &alice, chain, &spec, 10)
            .unwrap()
            .expect("alice is available");
        assert_eq!(fee, 4);

        // The deploy mines, then a deeper attacker branch reorgs it out
        // before the machine ever polls again.
        world.advance(1_000);
        assert!(world.chain(chain).unwrap().tx_depth(&txid).is_some());
        world.inject_fork(chain, 1, 3).unwrap();
        assert!(world.chain(chain).unwrap().tx_depth(&txid).is_none(), "reorged out");
        assert!(!world.chain(chain).unwrap().mempool_contains(&txid), "not resubmitted");

        let ledger_before = world.fees.total_fees();
        let changes = book.poll(&mut world, &mut participants).unwrap();
        assert!(changes.is_empty(), "no phantom refund, no duplicate re-bid");
        assert_eq!(world.fees.total_fees(), ledger_before);
        assert_eq!(book.total_fees(), 4, "the fee stays paid on both ledgers");
        assert!(!world.chain(chain).unwrap().mempool_contains(&txid));

        // The bid is retired: later polls stay silent too.
        world.advance(2_000);
        assert!(book.poll(&mut world, &mut participants).unwrap().is_empty());
    }

    #[test]
    fn evicted_bid_is_refunded_while_held_and_rebilled_on_reentry() {
        // Regression: when a bid's transaction is priced out of a bounded
        // pool and the policy cannot afford to re-enter, the world ledger
        // has refunded the fee — the owner's tally must drop it too
        // (negative `fee_delta`, no rebid), then re-bill when the bid
        // re-enters later. Without this the SwapReport's fees diverge from
        // `FeeLedger::fees_for_swap`.
        use ac3_chain::{ChainParams, TxBuilder};
        use ac3_contracts::HtlcCall;
        use ac3_crypto::{Hash256, KeyPair};

        let mut world = World::new();
        let mut params = ChainParams::fast("tight", 1_000);
        params.mempool_capacity = 1;
        let mut participants = ParticipantSet::new();
        let alice = participants.add("alice");
        let chain = world.add_chain(params, &[(alice, 100)]);

        // A Fixed-policy bid: opening fee = call_fee = 2, cap = 2.
        let mut book = BidBook::new(FeePolicy::Fixed);
        let phantom = ContractId(Hash256::digest(b"phantom-contract"));
        let call = ContractCall::Htlc(HtlcCall::Refund);
        let (txid, fee) = book
            .submit_call(&mut world, &mut participants, &alice, chain, phantom, &call)
            .unwrap()
            .expect("pool has room");
        assert_eq!(fee, 2);
        assert_eq!(book.total_fees(), 2);
        assert_eq!(world.fees.total_fees(), 2);

        // An unfunded-input junk tx out-bids the call; the single-slot pool
        // evicts it and the ledger refunds its fee.
        let mut junk = TxBuilder::new(KeyPair::from_seed(b"spammer"), 1 << 40);
        let phantom_input =
            vec![ac3_chain::OutPoint::new(ac3_chain::TxId(Hash256::digest(b"nowhere")), 0)];
        world.submit(chain, junk.transfer(phantom_input, vec![], 9)).unwrap();
        assert_eq!(world.fees.total_fees(), 9, "the evicted call's 2 was refunded");

        // The junk never mines (invalid inputs), so the pool stays full and
        // Fixed cannot afford the floor of 10: the bid is held and the
        // owner's tally gives the refund back.
        world.advance(1_000);
        let changes = book.poll(&mut world, &mut participants).unwrap();
        assert_eq!(changes.len(), 1);
        let held = &changes[0];
        assert_eq!(held.fee_delta, -2);
        assert!(!held.rebid);
        assert_eq!(held.old_txid, held.new_txid, "no new transaction was bid");
        let (mut fees, mut rebids) = (2u64, 0u64);
        held.apply_accounting(&mut fees, &mut rebids);
        assert_eq!((fees, rebids), (0, 0));
        assert_eq!(book.total_fees(), 0, "held bid is not billed");

        // A *funded* high bid displaces the junk and gets mined, freeing
        // the slot; the held bid re-enters at its fee and is re-billed.
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &alice, 1, 15).unwrap();
        let mut kp = TxBuilder::new(KeyPair::from_seed(b"alice"), 1 << 50);
        world.submit(chain, kp.transfer(inputs, outputs, 15)).unwrap();
        world.advance(1_000);

        let changes = book.poll(&mut world, &mut participants).unwrap();
        assert_eq!(changes.len(), 1);
        let reentry = &changes[0];
        assert_eq!(reentry.fee_delta, 2);
        assert!(reentry.rebid);
        assert_ne!(reentry.new_txid, txid, "re-entry is a fresh transaction");
        reentry.apply_accounting(&mut fees, &mut rebids);
        assert_eq!((fees, rebids), (2, 1));
        assert_eq!(book.total_fees(), 2);
        assert!(world.chain(chain).unwrap().mempool_contains(&reentry.new_txid));
    }
}
