//! Connected-component partitioning of a swap batch.
//!
//! Two machines can race only through shared world state: a chain both
//! submit to (one mempool, one fee market, one block budget) or a
//! participant both sign for (one per-chain nonce sequence). Build a graph
//! whose vertices are the batch's machines and whose edges connect
//! machines with overlapping [`MachineFootprint`]s, and every connected
//! component is a *data-disjoint* unit: no chain, mempool, contract,
//! balance, or nonce is visible from more than one component. The parallel
//! scheduler splits the world along these components
//! ([`ac3_sim::World::split_shard`]) and runs each shard on a worker
//! thread; within a shard, machines poll in submission order exactly as
//! the serial scheduler would, so the parallel run is not merely
//! *equivalent* to the serial one — per shard it is the *same
//! computation*, which is what makes the scheduler's output bitwise
//! reproducible at any worker count.
//!
//! The partition is computed once, up front: footprints are declared for a
//! machine's whole lifetime (a swap graph never grows mid-flight), so
//! components never need to merge while the batch runs.

use crate::driver::MachineFootprint;
use ac3_chain::{Address, ChainId};
use std::collections::BTreeMap;

/// One data-disjoint shard of a batch.
#[derive(Debug, Clone, Default)]
pub struct Shard {
    /// Indices (into the batch's submission order) of the machines in this
    /// shard, ascending — polling them in this order reproduces the serial
    /// scheduler's interleaving for every pair that could ever interact.
    pub machines: Vec<usize>,
    /// Union of the member footprints' chains, sorted and deduplicated.
    pub chains: Vec<ChainId>,
    /// Union of the member footprints' actors, sorted and deduplicated.
    pub actors: Vec<Address>,
}

/// Union-find over machine indices, with path halving and union by
/// attaching to the smaller root index — the smaller index wins so that a
/// component's root is also its first machine in submission order.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Group a batch's machines into connected components of footprint
/// overlap. Shards come back ordered by their first machine's submission
/// index, with member lists ascending — fully deterministic in the input
/// order, independent of worker count or thread scheduling.
pub fn partition_batch(footprints: &[MachineFootprint]) -> Vec<Shard> {
    let mut uf = UnionFind::new(footprints.len());
    let mut chain_owner: BTreeMap<ChainId, usize> = BTreeMap::new();
    let mut actor_owner: BTreeMap<Address, usize> = BTreeMap::new();
    for (i, fp) in footprints.iter().enumerate() {
        for chain in &fp.chains {
            match chain_owner.get(chain) {
                Some(&owner) => uf.union(i, owner),
                None => {
                    chain_owner.insert(*chain, i);
                }
            }
        }
        for actor in &fp.actors {
            match actor_owner.get(actor) {
                Some(&owner) => uf.union(i, owner),
                None => {
                    actor_owner.insert(*actor, i);
                }
            }
        }
    }

    // Roots are minimal member indices (union keeps the smaller index), so
    // iterating a BTreeMap keyed by root yields shards already ordered by
    // first machine.
    let mut shards: BTreeMap<usize, Shard> = BTreeMap::new();
    for (i, fp) in footprints.iter().enumerate() {
        let root = uf.find(i);
        let shard = shards.entry(root).or_default();
        shard.machines.push(i);
        shard.chains.extend(fp.chains.iter().copied());
        shard.actors.extend(fp.actors.iter().copied());
    }
    let mut out: Vec<Shard> = shards.into_values().collect();
    for shard in &mut out {
        shard.chains.sort();
        shard.chains.dedup();
        shard.actors.sort();
        shard.actors.dedup();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_crypto::KeyPair;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn fp(chains: &[u32], actors: &[&[u8]]) -> MachineFootprint {
        MachineFootprint {
            chains: chains.iter().map(|c| ChainId(*c)).collect(),
            actors: actors.iter().map(|a| addr(a)).collect(),
        }
    }

    #[test]
    fn disjoint_footprints_stay_separate() {
        let shards = partition_batch(&[
            fp(&[0, 1], &[b"a", b"b"]),
            fp(&[2, 3], &[b"c", b"d"]),
            fp(&[4], &[b"e"]),
        ]);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].machines, vec![0]);
        assert_eq!(shards[1].machines, vec![1]);
        assert_eq!(shards[2].machines, vec![2]);
        assert_eq!(shards[0].chains, vec![ChainId(0), ChainId(1)]);
    }

    #[test]
    fn shared_chain_merges_components() {
        // 0 and 2 share chain 1 (a common witness); 1 is independent.
        let shards =
            partition_batch(&[fp(&[0, 1], &[b"a"]), fp(&[5, 6], &[b"b"]), fp(&[1, 3], &[b"c"])]);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].machines, vec![0, 2], "chain 1 links machines 0 and 2");
        assert_eq!(shards[0].chains, vec![ChainId(0), ChainId(1), ChainId(3)]);
        assert_eq!(shards[1].machines, vec![1]);
    }

    #[test]
    fn shared_actor_merges_components_even_across_disjoint_chains() {
        // Same signer on unrelated chains: the nonce sequence aliases, so
        // the machines must co-schedule.
        let shards = partition_batch(&[fp(&[0], &[b"alice"]), fp(&[1], &[b"alice"])]);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].machines, vec![0, 1]);
        assert_eq!(shards[0].actors.len(), 1);
    }

    #[test]
    fn transitive_overlap_forms_one_component() {
        // 0–1 share a chain, 1–2 share an actor: all three fuse.
        let shards = partition_batch(&[
            fp(&[0], &[b"a"]),
            fp(&[0], &[b"b"]),
            fp(&[9], &[b"b"]),
            fp(&[7], &[b"z"]),
        ]);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].machines, vec![0, 1, 2]);
        assert_eq!(shards[1].machines, vec![3]);
    }

    #[test]
    fn empty_footprints_are_singleton_shards() {
        let shards = partition_batch(&[fp(&[], &[]), fp(&[], &[])]);
        assert_eq!(shards.len(), 2, "no shared resources, no merging");
        assert!(shards[0].chains.is_empty());
    }

    #[test]
    fn shards_are_ordered_by_first_machine_and_members_ascend() {
        // Deliberately interleave: 0 and 3 form one component, 1 and 2
        // another. Order must follow first members (0 then 1), not chain
        // ids (component {1,2} uses the *smaller* chain id).
        let shards = partition_batch(&[fp(&[9], &[]), fp(&[1], &[]), fp(&[1], &[]), fp(&[9], &[])]);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].machines, vec![0, 3]);
        assert_eq!(shards[1].machines, vec![1, 2]);
    }
}
