//! Nolan's original two-party atomic cross-chain swap \[23\] — the protocol
//! the paper's Section 1 walkthrough describes (Alice's X bitcoins for Bob's
//! Y ethers, hashlocks `h = H(s)` and timelocks `t1 > t2`).
//!
//! Nolan's protocol is the two-party special case of Herlihy's
//! generalisation, so the driver reuses the [`Herlihy`] execution engine and
//! only adds the two-party restriction plus the protocol label. The
//! behaviour reproduced is identical to the paper's description: sequential
//! contract publication, secret revelation on redemption, timelocked
//! refunds, and the resulting vulnerability to crash failures.

use crate::graph::SwapGraph;
use crate::herlihy::Herlihy;
use crate::protocol::{ProtocolConfig, ProtocolError, ProtocolKind, SwapReport};
use crate::scenario::Scenario;

/// The Nolan two-party swap driver.
#[derive(Debug, Clone, Default)]
pub struct Nolan {
    /// Driver configuration.
    pub config: ProtocolConfig,
}

impl Nolan {
    /// Create a driver with the given configuration.
    pub fn new(config: ProtocolConfig) -> Self {
        Nolan { config }
    }

    /// Check the two-party restriction.
    pub fn supports_graph(graph: &SwapGraph) -> Result<(), ProtocolError> {
        if graph.participants().len() != 2 || graph.contract_count() != 2 {
            return Err(ProtocolError::UnsupportedGraph(
                "Nolan's protocol only supports two-party, two-contract swaps".to_string(),
            ));
        }
        Herlihy::supports_graph(graph).map(|_| ())
    }

    /// Execute the two-party swap. The source of the first edge acts as the
    /// leader (Alice in the paper's walkthrough: she creates `s` and
    /// publishes SC1 first).
    pub fn execute(&self, scenario: &mut Scenario) -> Result<SwapReport, ProtocolError> {
        Self::supports_graph(&scenario.graph)?;
        let leader = scenario.graph.edges()[0].from;
        let mut inner = Herlihy::with_leader(self.config.clone(), leader);
        inner.kind = Some(ProtocolKind::Nolan);
        inner.execute(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AtomicityVerdict;
    use crate::scenario::{ring_scenario, two_party_scenario, ScenarioConfig};
    use ac3_sim::CrashWindow;

    #[test]
    fn two_party_swap_commits() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let report = Nolan::new(ProtocolConfig::default()).execute(&mut s).unwrap();
        assert_eq!(report.protocol, ProtocolKind::Nolan);
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
        // Latency ≈ 2·Δ·Diam = 4Δ for the two-party swap.
        assert!(
            report.latency_in_deltas() >= 3.0 && report.latency_in_deltas() <= 6.0,
            "latency {}Δ",
            report.latency_in_deltas()
        );
    }

    #[test]
    fn more_than_two_parties_rejected() {
        let mut s = ring_scenario(3, 10, &ScenarioConfig::default());
        let err = Nolan::new(ProtocolConfig::default()).execute(&mut s).unwrap_err();
        assert!(matches!(err, ProtocolError::UnsupportedGraph(_)));
    }

    #[test]
    fn crash_failure_causes_asset_loss() {
        // The case against the current proposals (Section 1): Bob crashes
        // before redeeming and loses his asset once t1 expires.
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        s.participants
            .get_mut("bob")
            .unwrap()
            .schedule_crash(CrashWindow { from: 9_000, until: 600_000 });
        let config = ProtocolConfig { deployment_depth: 3, ..Default::default() };
        let report = Nolan::new(config).execute(&mut s).unwrap();
        assert!(!report.is_atomic(), "{}", report.summary());
    }
}
