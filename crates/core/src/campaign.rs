//! Byzantine fault-injection and economic-attack campaigns (Section 6.3
//! extended): randomized, seeded sequences of crashes, partitions, forks,
//! Byzantine witness conduct and fee-market griefing, injected *mid-batch*
//! through the concurrent [`Scheduler`](crate::scheduler::Scheduler) rather
//! than pre-planned against a blocking driver.
//!
//! This module is lint-bound to the [`ChainApi`] seam (`ac3-lint`'s
//! `chainapi-seam` rule): nothing here may name `ac3_sim::World`. The
//! harness half — world construction, bond staking, the batch runner and
//! the damage accounting — lives in [`crate::campaign_run`].
//!
//! The paper's adversary model stops at crash failures and the 51% fork
//! attack of Section 6.3. This module adds the two adversary classes the
//! permissionless deployment actually faces:
//!
//! * **Byzantine witness operators.** A witness-network operator posts a
//!   stake in a [`WitnessSpec`](ac3_contracts::WitnessSpec)-bonded contract. An *equivocating* operator
//!   signs **both** the commit and the abort decision for the same graph
//!   digest ([`ac3_contracts::SignedDecision`]); two conflicting signatures
//!   assemble into a self-contained [`ac3_contracts::EquivocationProof`]
//!   that any watchdog can submit via
//!   [`ac3_contracts::WitnessCall::ReportEquivocation`] to slash the full
//!   stake — exactly once; the contract rejects duplicates. A *bribed*
//!   operator signs a single decision *against* observed chain state; one
//!   signature is not self-incriminating, so it is detectable (testimony
//!   vs. on-chain state, [`TestimonyLog::unsupported_by`]) but not
//!   slashable.
//! * **Economic griefers.** An *eviction-flooder* keeps a bounded mempool
//!   full of just-above-floor bids for a window, forcing honest bidders to
//!   out-bid it or wait; a *base-fee spiker* fills every block of a chain
//!   during the window, driving the EIP-1559-style base fee up under the
//!   victims' feet. Both are modelled as scheduler participants with their
//!   own funded identities, so the [`ac3_sim::FeeLedger`] attributes every
//!   unit of adversary spend.
//!
//! **Determinism.** A campaign is a pure function of its seed. The plan is
//! drawn by a [`CampaignRng`] (SplitMix64); every adversary is a
//! [`SwapMachine`] polled by the scheduler in submission order with a
//! conservative [`MachineFootprint`], so the parallel scheduler's shard
//! merge barrier serializes an injected fault with every machine that could
//! observe it. The resulting [`CampaignReport::fingerprint`] is therefore
//! bitwise identical at any worker count and across store backends.

use crate::driver::{MachineFootprint, Step, SwapMachine};
use crate::evidence::TestimonyLog;
use crate::fee::{is_soft_submit_error, BidBook, FeePolicy};
use crate::protocol::{ProtocolConfig, ProtocolError, ProtocolKind, SwapReport};
use crate::scenario::MultiSwapScenario;
use crate::{Ac3tw, Ac3wn, Herlihy, HerlihyMulti};
use ac3_chain::{Address, Amount, ChainId, ContractId, OutPoint, Timestamp, TxId, TxOutput};
use ac3_contracts::{ContractCall, EquivocationProof, SignedDecision, WitnessCall};
use ac3_crypto::{Hash256, KeyPair, WitnessDecision};
use ac3_sim::{
    ChainApi, CrashWindow, EventKind, Fault, NetworkProfile, OutageWindow, ParticipantSet, SwapId,
    Timeline,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Honest swaps use ids `0..swaps`; adversary machines are offset far above
/// them so fee attribution never collides.
pub(crate) const ADVERSARY_ID_BASE: u64 = 10_000;

/// Simulated milliseconds an adversary machine waits between retries of a
/// condition that changes at block granularity (campaign chains are built
/// with [`ChainParams::fast`]'s one-second blocks).
const RETRY_MS: u64 = 1_000;

/// Hard cap on how long an equivocator waits for its fraud proof to be
/// included before declaring the campaign world broken.
const SLASH_INCLUSION_CAP_MS: u64 = 600_000;

// ---------------------------------------------------------------------------
// Seeded randomness
// ---------------------------------------------------------------------------

/// A SplitMix64 generator: tiny, seedable, and fully deterministic — the
/// campaign's only source of randomness, so a plan is reproducible from its
/// `u64` seed alone.
#[derive(Debug, Clone)]
pub struct CampaignRng(u64);

impl CampaignRng {
    /// A generator at `seed`.
    pub fn new(seed: u64) -> Self {
        CampaignRng(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// A fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

/// One scheduled fault: *what* happens (a [`Fault`]) and *when* the
/// adversary initiates it. Faults that are themselves windows (partitions,
/// griefing bursts) carry their windows inside the fault; `at` is when the
/// injecting machine first acts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignEvent {
    /// Simulated time at which the adversary initiates the fault.
    pub at: Timestamp,
    /// The fault.
    pub fault: Fault,
}

/// The sampling space a random [`CampaignPlan`] is drawn from: how many
/// faults of each class, over what horizon, with what window lengths and
/// griefing budgets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSpace {
    /// Fault initiation times are drawn from `[0, horizon_ms)` relative to
    /// the batch start.
    pub horizon_ms: u64,
    /// Minimum crash/partition/griefing window length.
    pub min_window_ms: u64,
    /// Maximum crash/partition/griefing window length.
    pub max_window_ms: u64,
    /// Number of participant crash windows.
    pub crashes: usize,
    /// Number of chain partitions.
    pub partitions: usize,
    /// Number of adversarial forks (Section 6.3's 51% attacker).
    pub forks: usize,
    /// Number of equivocating witness operators (at most one per witness
    /// chain — a bond slashes once).
    pub equivocations: usize,
    /// Number of bribed single-decision attestations.
    pub bribes: usize,
    /// Number of eviction-flooding bursts.
    pub floods: usize,
    /// Number of base-fee-spiking bursts.
    pub spikes: usize,
    /// Fee budget per griefing burst.
    pub griefing_budget: Amount,
}

impl Default for CampaignSpace {
    fn default() -> Self {
        CampaignSpace {
            horizon_ms: 40_000,
            min_window_ms: 3_000,
            max_window_ms: 8_000,
            crashes: 2,
            partitions: 1,
            forks: 1,
            equivocations: 1,
            bribes: 1,
            floods: 1,
            spikes: 1,
            griefing_budget: 4_000,
        }
    }
}

impl CampaignSpace {
    /// A space with no faults at all (the baseline campaign).
    pub fn quiet() -> Self {
        CampaignSpace {
            crashes: 0,
            partitions: 0,
            forks: 0,
            equivocations: 0,
            bribes: 0,
            floods: 0,
            spikes: 0,
            ..Default::default()
        }
    }

    /// Upper bound on griefing machines a plan from this space can need —
    /// the campaign scenario funds one adversary identity per burst.
    pub fn griefing_slots(&self) -> usize {
        self.floods + self.spikes
    }
}

/// A named, seeded sequence of campaign events.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignPlan {
    /// The seed the plan was drawn from.
    pub seed: u64,
    /// Human-readable name.
    pub name: String,
    /// The events, in generation order (each machine re-sorts its own
    /// subset by initiation time).
    pub events: Vec<CampaignEvent>,
}

impl CampaignPlan {
    /// An empty plan.
    pub fn quiet(seed: u64) -> Self {
        CampaignPlan { seed, name: format!("campaign-{seed:#018x}-quiet"), events: Vec::new() }
    }

    /// Draw a random plan. `start` anchors all event times (the batch's
    /// first poll happens at or after it); `crash_candidates` are the only
    /// participants that may be crashed — adversary and watchdog identities
    /// must never appear in it.
    pub fn random(
        seed: u64,
        space: &CampaignSpace,
        start: Timestamp,
        asset_chains: &[ChainId],
        witness_chains: &[ChainId],
        crash_candidates: &[String],
    ) -> Self {
        let mut rng = CampaignRng::new(seed);
        let mut events = Vec::new();
        let window = |rng: &mut CampaignRng, from: Timestamp| {
            let spread = space.max_window_ms.saturating_sub(space.min_window_ms);
            OutageWindow { from, until: from + space.min_window_ms + rng.below(spread) }
        };
        let all_chains: Vec<ChainId> =
            asset_chains.iter().chain(witness_chains.iter()).copied().collect();

        for _ in 0..space.crashes {
            if crash_candidates.is_empty() {
                break;
            }
            let who = &crash_candidates[rng.below(crash_candidates.len() as u64) as usize];
            let from = start + rng.below(space.horizon_ms);
            let w = window(&mut rng, from);
            events.push(CampaignEvent {
                at: from,
                fault: Fault::Crash {
                    participant: who.clone(),
                    window: CrashWindow { from: w.from, until: w.until },
                },
            });
        }
        for _ in 0..space.partitions {
            let chain = all_chains[rng.below(all_chains.len() as u64) as usize];
            let from = start + rng.below(space.horizon_ms);
            events.push(CampaignEvent {
                at: from,
                fault: Fault::Partition { chain, window: window(&mut rng, from) },
            });
        }
        for _ in 0..space.forks {
            // Fork late enough that the chain has height to fork under.
            let at = start + space.horizon_ms / 4 + rng.below(space.horizon_ms / 2);
            let chain = all_chains[rng.below(all_chains.len() as u64) as usize];
            let fork_depth = 1 + rng.below(2);
            events.push(CampaignEvent {
                at,
                fault: Fault::Fork { chain, fork_depth, length: fork_depth + 1 + rng.below(2) },
            });
        }
        // At most one equivocation per witness chain: a bond slashes once.
        let mut eq_chains: Vec<ChainId> = witness_chains.to_vec();
        for _ in 0..space.equivocations.min(witness_chains.len()) {
            let idx = rng.below(eq_chains.len() as u64) as usize;
            let witness_chain = eq_chains.swap_remove(idx);
            events.push(CampaignEvent {
                at: start + rng.below(space.horizon_ms / 2),
                fault: Fault::Equivocate { witness_chain },
            });
        }
        for _ in 0..space.bribes {
            let witness_chain = witness_chains[rng.below(witness_chains.len() as u64) as usize];
            events.push(CampaignEvent {
                at: start + rng.below(space.horizon_ms),
                fault: Fault::Bribe { witness_chain, commit: rng.coin() },
            });
        }
        // Griefing bursts run longer as the budget grows (half a
        // millisecond of extra window per budgeted fee unit, capped at the
        // horizon): a richer adversary sustains the attack, it does not
        // merely bid into the same short window.
        let grief_window = |rng: &mut CampaignRng, from: Timestamp| {
            let w = window(rng, from);
            let stretch = (space.griefing_budget / 2).min(space.horizon_ms);
            OutageWindow { from: w.from, until: w.until + stretch }
        };
        for _ in 0..space.floods {
            let chain = witness_chains[rng.below(witness_chains.len() as u64) as usize];
            let from = start + rng.below(space.horizon_ms);
            events.push(CampaignEvent {
                at: from,
                fault: Fault::FloodMempool {
                    chain,
                    window: grief_window(&mut rng, from),
                    budget: space.griefing_budget,
                },
            });
        }
        for _ in 0..space.spikes {
            let chain = witness_chains[rng.below(witness_chains.len() as u64) as usize];
            let from = start + rng.below(space.horizon_ms);
            events.push(CampaignEvent {
                at: from,
                fault: Fault::SpikeBaseFee {
                    chain,
                    window: grief_window(&mut rng, from),
                    budget: space.griefing_budget,
                },
            });
        }

        CampaignPlan { seed, name: format!("campaign-{seed:#018x}"), events }
    }

    /// Count events matching `predicate`.
    pub fn count<F: Fn(&Fault) -> bool>(&self, predicate: F) -> usize {
        self.events.iter().filter(|e| predicate(&e.fault)).count()
    }
}

// ---------------------------------------------------------------------------
// Campaign configuration
// ---------------------------------------------------------------------------

/// Everything a campaign run needs. A campaign is a pure function of this
/// configuration: same config, same [`CampaignReport::fingerprint`], at any
/// worker count.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The plan seed.
    pub seed: u64,
    /// The fault sampling space.
    pub space: CampaignSpace,
    /// Number of honest two-party swaps (protocols assigned round-robin:
    /// AC3WN, AC3TW, Herlihy, Herlihy-multi).
    pub swaps: usize,
    /// Number of shared asset chains.
    pub asset_chains: usize,
    /// Number of shared witness chains (each carries one staked
    /// witness-network bond).
    pub witness_chains: usize,
    /// Protocol depths, timeouts and fee policy for the honest machines.
    pub protocol: ProtocolConfig,
    /// Stake each witness-network operator bonds (slashed on equivocation).
    pub stake: Amount,
    /// Genesis funding per participant per chain.
    pub funding: Amount,
    /// Mempool capacity of the witness chains — small enough that
    /// eviction-flooding is affordable.
    pub witness_mempool_capacity: usize,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Scheduler time budget.
    pub max_ms: u64,
    /// Message-level network conditions for every client→chain
    /// interaction, or `None` for synchronous (direct) submission.
    pub network: Option<NetworkProfile>,
}

impl CampaignConfig {
    /// The default campaign at `seed`: 8 mixed-protocol swaps over 2 asset
    /// chains and 2 bonded witness chains, adaptive honest bidding, one
    /// fault of every class.
    pub fn new(seed: u64) -> Self {
        CampaignConfig {
            seed,
            space: CampaignSpace::default(),
            swaps: 8,
            asset_chains: 2,
            witness_chains: 2,
            protocol: ProtocolConfig {
                witness_depth: 2,
                deployment_depth: 1,
                wait_cap_deltas: 256,
                fee_policy: FeePolicy::Adaptive { margin: 1, cap: 64 },
                ..Default::default()
            },
            stake: 500,
            funding: 1 << 20,
            witness_mempool_capacity: 32,
            workers: 1,
            max_ms: 1_200_000,
            network: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Per-protocol outcome and fee aggregates of the honest lanes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolLane {
    /// Swaps run under this protocol.
    pub swaps: usize,
    /// Committed swaps.
    pub committed: usize,
    /// Cleanly aborted swaps.
    pub aborted: usize,
    /// Swaps that ended in a protocol error.
    pub failed: usize,
    /// Total fees actually paid.
    pub fees_paid: Amount,
    /// Total fees the static Section 6.2 schedule would have charged.
    pub fees_scheduled: Amount,
}

/// What a campaign produced, with enough detail for the attack-economics
/// bench and the adversarial property tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The plan that ran.
    pub plan: CampaignPlan,
    /// Honest swap count.
    pub swaps: usize,
    /// Honest commits.
    pub committed: usize,
    /// Honest clean aborts.
    pub aborted: usize,
    /// Honest protocol errors.
    pub failed: usize,
    /// Adversary machines that ended in a protocol error (must be 0 in a
    /// healthy campaign — adversaries never give up, they run out of
    /// budget or window).
    pub adversary_failures: usize,
    /// Whether every honest swap settled atomically (all-or-nothing per
    /// the per-report audit).
    pub atomic: bool,
    /// Scheduler ticks.
    pub ticks: u64,
    /// Batch makespan in simulated ms.
    pub makespan_ms: u64,
    /// Equivocation events in the plan.
    pub equivocations: usize,
    /// Slash reports accepted on-chain (canonical
    /// [`WitnessCall::ReportEquivocation`] calls against the bonds).
    pub slashes_accepted: usize,
    /// Bonds whose final decoded state is `slashed`.
    pub bonds_slashed: usize,
    /// Duplicate slash reports submitted and *not* mined.
    pub duplicate_slash_reports_rejected: usize,
    /// Bribed single-decision attestations in the plan.
    pub bribes: usize,
    /// Bribed attestations a watchdog flagged as unsupported by chain
    /// state.
    pub bribes_detected: usize,
    /// Honest fees actually paid.
    pub honest_fees_paid: Amount,
    /// Honest fees under the static schedule.
    pub honest_fees_scheduled: Amount,
    /// Net adversary fee spend, from the fee ledger's per-swap attribution
    /// (evicted flood transactions are refunded by the ledger, so this is
    /// money the adversary actually parted with).
    pub adversary_fees: Amount,
    /// Stake posted across all witness bonds.
    pub stake_posted: Amount,
    /// Stake forfeited to watchdogs.
    pub stake_slashed: Amount,
    /// Honest outcomes and fee ledger per protocol.
    pub per_protocol: BTreeMap<String, ProtocolLane>,
    /// Every machine (honest or adversary) whose driver returned an error:
    /// `(swap id, error message)`. Diagnostics for the failure counters
    /// above.
    pub failures: Vec<(u64, String)>,
    /// Hex digest over every deterministic observable of the run: outcomes
    /// in submission order, scheduler counters, the fee ledger, final
    /// chain state, and the (canonicalized) global timeline.
    pub fingerprint: String,
}

// ---------------------------------------------------------------------------
// Adversary machines
// ---------------------------------------------------------------------------

/// A terminal report for a non-protocol (adversary) machine: no decision,
/// no edges — everything interesting rides in the timeline notes.
fn adversary_report(started_at: Timestamp, finished_at: Timestamp, timeline: Timeline) -> Step {
    Step::Done(Box::new(SwapReport {
        protocol: ProtocolKind::Ac3Wn,
        decision: None,
        edges: Vec::new(),
        started_at,
        finished_at,
        delta_ms: 1,
        deployments: 0,
        calls: 0,
        fees_paid: 0,
        fees_scheduled: 0,
        fee_rebids: 0,
        timeline,
    }))
}

/// Applies the plan's world-mutating faults (crashes, partitions, forks)
/// mid-batch, at their scheduled initiation times, from *inside* the
/// scheduler loop. Its footprint names every chain it forks or partitions
/// and every participant it crashes, so the shard partitioner serializes it
/// with every machine that could observe the fault.
struct FaultInjector {
    events: Vec<CampaignEvent>,
    victims: Vec<Address>,
    idx: usize,
    started_at: Option<Timestamp>,
    timeline: Timeline,
}

impl FaultInjector {
    /// Build from the plan's non-behavioral events plus forks. `victims`
    /// must hold the address of every crash target (resolved before the
    /// batch so the footprint is complete).
    fn new(mut events: Vec<CampaignEvent>, victims: Vec<Address>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultInjector { events, victims, idx: 0, started_at: None, timeline: Timeline::new() }
    }
}

impl SwapMachine for FaultInjector {
    fn poll(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Step, ProtocolError> {
        let now = world.now();
        let started = *self.started_at.get_or_insert(now);
        while self.idx < self.events.len() && self.events[self.idx].at <= now {
            let event = &self.events[self.idx];
            match &event.fault {
                Fault::Crash { participant, window } => {
                    if let Some(p) = participants.get_mut(participant) {
                        p.schedule_crash(*window);
                    }
                    self.timeline.record(
                        now,
                        EventKind::Note(format!(
                            "fault: crash {participant} [{}, {})",
                            window.from, window.until
                        )),
                    );
                }
                Fault::Partition { chain, window } => {
                    world.schedule_outage(*chain, *window)?;
                    self.timeline.record(
                        now,
                        EventKind::Note(format!(
                            "fault: partition {chain} [{}, {})",
                            window.from, window.until
                        )),
                    );
                }
                Fault::Fork { chain, fork_depth, length } => {
                    let note = match world.inject_fork(*chain, *fork_depth, *length) {
                        Ok(branch) => format!(
                            "fault: fork {chain} depth {fork_depth} length {} mined",
                            branch.len()
                        ),
                        // A fork below genesis (chain still too short) is a
                        // failed attack, not a broken campaign.
                        Err(e) => format!("fault: fork {chain} failed: {e}"),
                    };
                    self.timeline.record(now, EventKind::Note(note));
                }
                behavioral => {
                    return Err(ProtocolError::World(format!(
                        "behavioral fault {behavioral:?} routed to the fault injector"
                    )))
                }
            }
            self.idx += 1;
        }
        if self.idx >= self.events.len() {
            return Ok(adversary_report(started, now, std::mem::take(&mut self.timeline)));
        }
        Ok(Step::Waiting { not_before: self.events[self.idx].at })
    }

    fn phase_name(&self) -> &'static str {
        "fault-injection"
    }

    fn footprint(&self) -> MachineFootprint {
        let mut chains: Vec<ChainId> = self.events.iter().filter_map(|e| e.fault.chain()).collect();
        chains.sort();
        chains.dedup();
        MachineFootprint { chains, actors: self.victims.clone() }
    }
}

enum EquivocatorPhase {
    Armed,
    AwaitInclusion,
    AwaitDuplicate,
}

/// A Byzantine witness operator that signs *both* decisions for its bond's
/// graph digest, and the honest watchdog that catches it: the watchdog's
/// [`TestimonyLog`] assembles the [`EquivocationProof`], submits it, waits
/// for canonical inclusion (the accepted slash), then submits a duplicate
/// report to demonstrate the contract slashes exactly once.
struct Equivocator {
    at: Timestamp,
    witness_chain: ChainId,
    operator: KeyPair,
    bond: ContractId,
    graph_digest: Hash256,
    watchdog: Address,
    phase: EquivocatorPhase,
    /// The watchdog's escalating bid book: a slasher stands to win the
    /// bond's stake, so it rationally outbids any griefing floor up to
    /// that prize — a fixed-fee report could be priced out forever by a
    /// mempool flood.
    book: BidBook,
    proof: Option<EquivocationProof>,
    report_tx: Option<TxId>,
    dup_tx: Option<TxId>,
    dup_deadline: Timestamp,
    started_at: Option<Timestamp>,
    timeline: Timeline,
}

impl Equivocator {
    #[allow(clippy::too_many_arguments)]
    fn new(
        at: Timestamp,
        witness_chain: ChainId,
        operator: KeyPair,
        bond: ContractId,
        graph_digest: Hash256,
        watchdog: Address,
        stake: Amount,
    ) -> Self {
        Equivocator {
            at,
            witness_chain,
            operator,
            bond,
            graph_digest,
            watchdog,
            phase: EquivocatorPhase::Armed,
            book: BidBook::new(FeePolicy::Adaptive { margin: 1, cap: stake }),
            proof: None,
            report_tx: None,
            dup_tx: None,
            dup_deadline: 0,
            started_at: None,
            timeline: Timeline::new(),
        }
    }

    fn submit_report(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Option<TxId>, ProtocolError> {
        let proof = self.proof.expect("proof assembled before submission");
        Ok(self
            .book
            .submit_call(
                world,
                participants,
                &self.watchdog,
                self.witness_chain,
                self.bond,
                &ContractCall::Witness(WitnessCall::ReportEquivocation { proof }),
            )?
            .map(|(txid, _)| txid))
    }
}

impl SwapMachine for Equivocator {
    fn poll(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Step, ProtocolError> {
        let now = world.now();
        let started = *self.started_at.get_or_insert(now);
        match self.phase {
            EquivocatorPhase::Armed => {
                if now < self.at {
                    return Ok(Step::Waiting { not_before: self.at });
                }
                if self.proof.is_none() {
                    // The Byzantine act: one key, one digest, two decisions.
                    let mut log = TestimonyLog::new();
                    let redeem = SignedDecision::sign(
                        &self.operator,
                        self.graph_digest,
                        WitnessDecision::Redeem,
                    );
                    let refund = SignedDecision::sign(
                        &self.operator,
                        self.graph_digest,
                        WitnessDecision::Refund,
                    );
                    assert!(log.observe(redeem).is_none());
                    let proof = log
                        .observe(refund)
                        .expect("conflicting decisions assemble an equivocation proof");
                    self.timeline.record(
                        now,
                        EventKind::Note(format!(
                            "equivocation: operator on {} signed both decisions",
                            self.witness_chain
                        )),
                    );
                    self.proof = Some(proof);
                }
                // The watchdog may itself be unreachable or priced out for a
                // while (`Ok(None)`); the proof does not expire — retry.
                match self.submit_report(world, participants)? {
                    Some(txid) => {
                        self.report_tx = Some(txid);
                        self.phase = EquivocatorPhase::AwaitInclusion;
                        self.timeline
                            .record(now, EventKind::Note("fraud proof submitted".to_string()));
                        Ok(Step::Waiting { not_before: now + RETRY_MS })
                    }
                    None => Ok(Step::Waiting { not_before: now + RETRY_MS }),
                }
            }
            EquivocatorPhase::AwaitInclusion => {
                let txid = self.report_tx.expect("report submitted");
                if world.chain(self.witness_chain)?.tx_depth(&txid).is_some() {
                    self.timeline
                        .record(now, EventKind::Note("slash accepted on-chain".to_string()));
                    match self.submit_report(world, participants)? {
                        Some(dup) => {
                            self.dup_tx = Some(dup);
                            self.dup_deadline = now + 4 * RETRY_MS;
                            self.phase = EquivocatorPhase::AwaitDuplicate;
                            Ok(Step::Waiting { not_before: self.dup_deadline })
                        }
                        None => Ok(Step::Waiting { not_before: now + RETRY_MS }),
                    }
                } else if now > self.at + SLASH_INCLUSION_CAP_MS {
                    Err(ProtocolError::World(format!(
                        "slash report on {} not included within {SLASH_INCLUSION_CAP_MS} ms",
                        self.witness_chain
                    )))
                } else {
                    // Re-bid a stuck report over whatever floor the
                    // griefers have raised, and follow the replace-by-fee
                    // id rewrites — the superseded transaction will never
                    // confirm.
                    for change in self.book.poll(world, participants)? {
                        if let Some(tx) = self.report_tx.as_mut() {
                            change.rewrite_txid(tx);
                        }
                    }
                    Ok(Step::Waiting { not_before: now + RETRY_MS })
                }
            }
            EquivocatorPhase::AwaitDuplicate => {
                if now < self.dup_deadline {
                    // Give the duplicate fair admission — escalate it like
                    // any honest bid (rewriting its id on replace-by-fee),
                    // so its rejection below is the contract refusing a
                    // second slash, not the mempool refusing the fee.
                    for change in self.book.poll(world, participants)? {
                        if let Some(tx) = self.dup_tx.as_mut() {
                            change.rewrite_txid(tx);
                        }
                    }
                    return Ok(Step::Waiting { not_before: now + RETRY_MS });
                }
                let dup = self.dup_tx.expect("duplicate submitted");
                // An already-slashed bond makes the duplicate call fail at
                // execution, so miners never include it: it must still be
                // non-canonical after the deadline's worth of blocks.
                let note = if world.chain(self.witness_chain)?.tx_depth(&dup).is_none() {
                    "duplicate slash report rejected"
                } else {
                    "duplicate slash report accepted (double slash!)"
                };
                self.timeline.record(now, EventKind::Note(note.to_string()));
                Ok(adversary_report(started, now, std::mem::take(&mut self.timeline)))
            }
        }
    }

    fn phase_name(&self) -> &'static str {
        match self.phase {
            EquivocatorPhase::Armed => "equivocate",
            EquivocatorPhase::AwaitInclusion => "await-slash",
            EquivocatorPhase::AwaitDuplicate => "await-duplicate",
        }
    }

    fn footprint(&self) -> MachineFootprint {
        MachineFootprint { chains: vec![self.witness_chain], actors: vec![self.watchdog] }
    }
}

/// A bribed witness operator signs a single decision against observed
/// evidence; the watchdog's testimony log flags it as unsupported by chain
/// state. One signature is not self-incriminating: detectable, not
/// slashable.
struct Briber {
    at: Timestamp,
    witness_chain: ChainId,
    commit: bool,
    operator: KeyPair,
    bond: ContractId,
    graph_digest: Hash256,
    started_at: Option<Timestamp>,
    timeline: Timeline,
}

impl SwapMachine for Briber {
    fn poll(
        &mut self,
        world: &mut dyn ChainApi,
        _participants: &mut ParticipantSet,
    ) -> Result<Step, ProtocolError> {
        let now = world.now();
        let started = *self.started_at.get_or_insert(now);
        if now < self.at {
            return Ok(Step::Waiting { not_before: self.at });
        }
        let decision = if self.commit { WitnessDecision::Redeem } else { WitnessDecision::Refund };
        let attestation = SignedDecision::sign(&self.operator, self.graph_digest, decision);
        self.timeline.record(
            now,
            EventKind::Note(format!(
                "bribe: operator on {} attested {decision:?} off-chain",
                self.witness_chain
            )),
        );
        let mut log = TestimonyLog::new();
        assert!(log.observe(attestation).is_none(), "a single decision is not equivocation");
        // The bond sits in "P": *any* decision attestation is unsupported.
        let unsupported = log.unsupported_by(world, self.witness_chain, self.bond);
        if !unsupported.is_empty() {
            self.timeline.record(
                now,
                EventKind::Note(
                    "bribed attestation detected: unsupported by chain state".to_string(),
                ),
            );
        }
        Ok(adversary_report(started, now, std::mem::take(&mut self.timeline)))
    }

    fn phase_name(&self) -> &'static str {
        "bribe"
    }

    fn footprint(&self) -> MachineFootprint {
        MachineFootprint { chains: vec![self.witness_chain], actors: Vec::new() }
    }
}

/// Which griefing campaign a [`Griefer`] wages.
enum GriefMode {
    /// Keep the bounded mempool full of just-above-floor bids.
    Flood,
    /// Fill every block to drive the dynamic base fee up.
    Spike { split_tx: Option<TxId>, chunks: Vec<OutPoint>, next_chunk: usize },
}

/// Value of each pre-split UTXO a base-fee spiker burns per transaction —
/// generous headroom over any base fee the short spike window can reach.
const SPIKE_CHUNK_VALUE: Amount = 64;
/// How many chunk UTXOs the spiker pre-splits. Spending pre-split chunks
/// (rather than re-planning inputs every block) keeps every spike
/// transaction conflict-free and the whole burst deterministic.
const SPIKE_CHUNKS: u32 = 192;

/// A fee-market griefer: a funded adversary identity waging one
/// eviction-flooding or base-fee-spiking burst against one chain. Both
/// modes spend through the scheduler's fee-attribution bracket, so the
/// ledger pins every unit of adversary spend to this machine's [`SwapId`].
struct Griefer {
    name: String,
    addr: Address,
    chain: ChainId,
    window: OutageWindow,
    budget: Amount,
    spent: Amount,
    txs: u64,
    seq: u64,
    mode: GriefMode,
    started_at: Option<Timestamp>,
    timeline: Timeline,
}

impl Griefer {
    fn flood(
        name: String,
        addr: Address,
        chain: ChainId,
        window: OutageWindow,
        budget: Amount,
    ) -> Self {
        Griefer {
            name,
            addr,
            chain,
            window,
            budget,
            spent: 0,
            txs: 0,
            seq: 0,
            mode: GriefMode::Flood,
            started_at: None,
            timeline: Timeline::new(),
        }
    }

    fn spike(
        name: String,
        addr: Address,
        chain: ChainId,
        window: OutageWindow,
        budget: Amount,
    ) -> Self {
        Griefer {
            name,
            addr,
            chain,
            window,
            budget,
            spent: 0,
            txs: 0,
            seq: 0,
            mode: GriefMode::Spike { split_tx: None, chunks: Vec::new(), next_chunk: 0 },
            started_at: None,
            timeline: Timeline::new(),
        }
    }

    /// A unique, deterministic phantom outpoint for flood transaction
    /// `seq`. Phantom inputs are admitted to the mempool (admission is
    /// fee-based) but never execute, so flood transactions hold their slots
    /// until evicted by a higher bid — exactly the attack.
    fn phantom(&self, seq: u64) -> OutPoint {
        let mut bytes = self.addr.to_bytes().to_vec();
        bytes.extend_from_slice(&seq.to_le_bytes());
        bytes.extend_from_slice(b"ac3wn/campaign/flood");
        OutPoint::new(TxId(Hash256::digest(&bytes)), 0)
    }

    fn finish(&mut self, now: Timestamp, started: Timestamp, what: &str) -> Step {
        self.timeline.record(
            now,
            EventKind::Note(format!(
                "{what} burst on {} done: {} fee units over {} txs",
                self.chain, self.spent, self.txs
            )),
        );
        adversary_report(started, now, std::mem::take(&mut self.timeline))
    }
}

impl SwapMachine for Griefer {
    fn poll(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Step, ProtocolError> {
        let now = world.now();
        let started = *self.started_at.get_or_insert(now);
        if now < self.window.from {
            return Ok(Step::Waiting { not_before: self.window.from });
        }
        match &mut self.mode {
            GriefMode::Flood => {
                if now >= self.window.until || self.spent >= self.budget {
                    return Ok(self.finish(now, started, "flood"));
                }
                let cong = match world.congestion(self.chain) {
                    Ok(c) => c,
                    // The chain may itself be partitioned; wait it out.
                    Err(_) => return Ok(Step::Waiting { not_before: now + RETRY_MS }),
                };
                // Above the guaranteed-admission price, with a budget-scaled
                // overbid: a richer adversary bids higher per slot, not just
                // longer, so the floor it leaves under honest opening bids
                // rises with the griefing budget.
                let overbid = self.budget / (cong.capacity.max(1) as Amount * 16);
                let fee = cong.fee_floor + 1 + overbid;
                // Fill whatever room is left plus a couple of evictions.
                let want = cong.capacity.saturating_sub(cong.depth) + 2;
                for _ in 0..want {
                    if self.spent + fee > self.budget {
                        break;
                    }
                    let seq = self.seq;
                    let phantom = self.phantom(seq);
                    let tx = match participants.get_mut(&self.name) {
                        Some(p) => p.builder(self.chain).transfer(vec![phantom], vec![], fee),
                        None => break,
                    };
                    match world.submit(self.chain, tx) {
                        Ok(_) => {
                            self.spent += fee;
                            self.txs += 1;
                            self.seq += 1;
                        }
                        Err(e) if is_soft_submit_error(&e) => break,
                        Err(e) => return Err(e.into()),
                    }
                }
                Ok(Step::Waiting { not_before: now + RETRY_MS })
            }
            GriefMode::Spike { split_tx, chunks, next_chunk } => {
                if now >= self.window.until || self.spent >= self.budget {
                    return Ok(self.finish(now, started, "spike"));
                }
                let cong = match world.congestion(self.chain) {
                    Ok(c) => c,
                    Err(_) => return Ok(Step::Waiting { not_before: now + RETRY_MS }),
                };
                match split_tx {
                    None => {
                        // Pre-split funding into independent chunk UTXOs so
                        // every spike transaction spends a distinct input.
                        let amount = SPIKE_CHUNK_VALUE * SPIKE_CHUNKS as Amount;
                        let fee = cong.fee_floor + 1;
                        let Some((inputs, mut outputs)) = world
                            .chain(self.chain)?
                            .plan_payment(&self.addr, &self.addr, amount, fee)
                        else {
                            self.timeline.record(
                                now,
                                EventKind::Note("spike unfunded: split not plannable".to_string()),
                            );
                            return Ok(self.finish(now, started, "spike"));
                        };
                        // Replace the single self-payment with the chunks,
                        // keeping any change outputs behind them.
                        outputs.remove(0);
                        let mut split_outputs: Vec<TxOutput> = (0..SPIKE_CHUNKS)
                            .map(|_| TxOutput::new(self.addr, SPIKE_CHUNK_VALUE))
                            .collect();
                        split_outputs.append(&mut outputs);
                        let tx = match participants.get_mut(&self.name) {
                            Some(p) => p.builder(self.chain).transfer(inputs, split_outputs, fee),
                            None => return Ok(Step::Waiting { not_before: now + RETRY_MS }),
                        };
                        match world.submit(self.chain, tx) {
                            Ok(txid) => {
                                self.spent += fee;
                                *split_tx = Some(txid);
                                *chunks =
                                    (0..SPIKE_CHUNKS).map(|j| OutPoint::new(txid, j)).collect();
                            }
                            Err(e) if is_soft_submit_error(&e) => {}
                            Err(e) => return Err(e.into()),
                        }
                        Ok(Step::Waiting { not_before: now + RETRY_MS })
                    }
                    Some(txid) => {
                        if world.chain(self.chain)?.tx_depth(txid).is_none() {
                            // Split not yet canonical; nothing to spend.
                            return Ok(Step::Waiting { not_before: now + RETRY_MS });
                        }
                        // Fill the next block: one transaction per budget
                        // slot, priced above the current admission fee plus a
                        // budget-scaled overbid, so a richer spiker burns more
                        // per mined chunk and drags the admission price honest
                        // bidders observe up with it.
                        let overbid = self.budget / SPIKE_CHUNKS as Amount;
                        let fee = cong
                            .base_fee
                            .max(cong.fee_floor)
                            .max(1)
                            .saturating_add(1 + overbid)
                            .min(SPIKE_CHUNK_VALUE - 1);
                        for _ in 0..cong.block_budget {
                            if self.spent + fee > self.budget || *next_chunk >= chunks.len() {
                                break;
                            }
                            let input = chunks[*next_chunk];
                            let outputs = vec![TxOutput::new(self.addr, SPIKE_CHUNK_VALUE - fee)];
                            let tx = match participants.get_mut(&self.name) {
                                Some(p) => {
                                    p.builder(self.chain).transfer(vec![input], outputs, fee)
                                }
                                None => break,
                            };
                            match world.submit(self.chain, tx) {
                                Ok(_) => {
                                    self.spent += fee;
                                    self.txs += 1;
                                    *next_chunk += 1;
                                }
                                Err(e) if is_soft_submit_error(&e) => break,
                                Err(e) => return Err(e.into()),
                            }
                        }
                        if *next_chunk >= chunks.len() {
                            return Ok(self.finish(now, started, "spike"));
                        }
                        Ok(Step::Waiting { not_before: now + RETRY_MS })
                    }
                }
            }
        }
    }

    fn phase_name(&self) -> &'static str {
        match self.mode {
            GriefMode::Flood => "flood",
            GriefMode::Spike { .. } => "spike",
        }
    }

    fn footprint(&self) -> MachineFootprint {
        MachineFootprint { chains: vec![self.chain], actors: vec![self.addr] }
    }
}

// ---------------------------------------------------------------------------
// The campaign scenario and runner
// ---------------------------------------------------------------------------

/// One witness-network bond: the operator's attestation keypair and its
/// staked on-chain contract.
pub struct WitnessBond {
    /// The witness chain the bond lives on.
    pub chain: ChainId,
    /// The operator's off-chain attestation keypair (deterministic from the
    /// chain index, so campaigns are seed-reproducible).
    pub operator: KeyPair,
    /// The graph digest the bond covers.
    pub graph_digest: Hash256,
    /// The deployed, staked contract.
    pub contract: ContractId,
}

/// A fully built campaign: the shared world and cast, the honest batch, the
/// staked bonds, and the plan.
pub struct Campaign {
    /// The honest scenario (world, participants, swaps, chains).
    pub scenario: MultiSwapScenario,
    /// The watchdog identity that reports fraud proofs.
    pub watchdog: Address,
    /// One staked bond per witness chain.
    pub bonds: Vec<WitnessBond>,
    /// The griefing identities, one per potential burst.
    pub griefers: Vec<(String, Address)>,
    /// The drawn plan.
    pub plan: CampaignPlan,
}

/// The honest machine mix: swap `i` runs under protocol `i mod 4`
/// (AC3WN, AC3TW, Herlihy, Herlihy-multi), as in the determinism suite.
pub(crate) fn honest_machines(
    cfg: &CampaignConfig,
    scenario: &MultiSwapScenario,
) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    let ac3wn = Ac3wn::new(cfg.protocol.clone());
    let ac3tw = Ac3tw::new(cfg.protocol.clone());
    let herlihy = Herlihy::new(cfg.protocol.clone());
    let herlihy_multi = HerlihyMulti::new(cfg.protocol.clone());
    scenario
        .swaps
        .iter()
        .enumerate()
        .map(|(i, swap)| {
            let machine: Box<dyn SwapMachine> = match i % 4 {
                0 => Box::new(ac3wn.machine(swap.graph.clone(), swap.witness)),
                1 => Box::new(ac3tw.machine(swap.graph.clone())),
                2 => Box::new(herlihy.machine(swap.graph.clone()).expect("two-party has a leader")),
                _ => Box::new(herlihy_multi.machine(swap.graph.clone()).expect("valid graph")),
            };
            (swap.id, machine)
        })
        .collect()
}

/// Build the adversary machines a plan calls for, with ids above
/// [`ADVERSARY_ID_BASE`].
pub(crate) fn adversary_machines(
    campaign: &Campaign,
    stake: Amount,
) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    let mut machines: Vec<(SwapId, Box<dyn SwapMachine>)> = Vec::new();
    let mut next_id = ADVERSARY_ID_BASE;
    let mut id = || {
        let id = SwapId(next_id);
        next_id += 1;
        id
    };
    let bond_on = |chain: ChainId| {
        campaign
            .bonds
            .iter()
            .find(|b| b.chain == chain)
            .expect("plans only target bonded witness chains")
    };

    // World-mutating faults ride in one injector.
    let injected: Vec<CampaignEvent> = campaign
        .plan
        .events
        .iter()
        .filter(|e| {
            matches!(e.fault, Fault::Crash { .. } | Fault::Partition { .. } | Fault::Fork { .. })
        })
        .cloned()
        .collect();
    if !injected.is_empty() {
        let victims: Vec<Address> = injected
            .iter()
            .filter_map(|e| match &e.fault {
                Fault::Crash { participant, .. } => {
                    campaign.scenario.participants.get(participant).map(|p| p.address())
                }
                _ => None,
            })
            .collect();
        machines.push((id(), Box::new(FaultInjector::new(injected, victims))));
    }

    let mut griefer_slot = 0usize;
    for event in &campaign.plan.events {
        match &event.fault {
            Fault::Equivocate { witness_chain } => {
                let bond = bond_on(*witness_chain);
                machines.push((
                    id(),
                    Box::new(Equivocator::new(
                        event.at,
                        *witness_chain,
                        bond.operator,
                        bond.contract,
                        bond.graph_digest,
                        campaign.watchdog,
                        stake,
                    )),
                ));
            }
            Fault::Bribe { witness_chain, commit } => {
                let bond = bond_on(*witness_chain);
                machines.push((
                    id(),
                    Box::new(Briber {
                        at: event.at,
                        witness_chain: *witness_chain,
                        commit: *commit,
                        operator: bond.operator,
                        bond: bond.contract,
                        graph_digest: bond.graph_digest,
                        started_at: None,
                        timeline: Timeline::new(),
                    }),
                ));
            }
            Fault::FloodMempool { chain, window, budget } => {
                let (name, addr) = campaign.griefers[griefer_slot].clone();
                griefer_slot += 1;
                machines
                    .push((id(), Box::new(Griefer::flood(name, addr, *chain, *window, *budget))));
            }
            Fault::SpikeBaseFee { chain, window, budget } => {
                let (name, addr) = campaign.griefers[griefer_slot].clone();
                griefer_slot += 1;
                machines
                    .push((id(), Box::new(Griefer::spike(name, addr, *chain, *window, *budget))));
            }
            _ => {}
        }
    }
    machines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let a: Vec<u64> = {
            let mut rng = CampaignRng::new(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = CampaignRng::new(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut rng = CampaignRng::new(7);
        for _ in 0..100 {
            assert!(rng.below(13) < 13);
        }
        assert_eq!(CampaignRng::new(9).below(0), 0);
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let chains = [ChainId(0), ChainId(1)];
        let witnesses = [ChainId(2)];
        let names = ["s0a".to_string(), "s0b".to_string()];
        let space = CampaignSpace::default();
        let a = CampaignPlan::random(99, &space, 10_000, &chains, &witnesses, &names);
        let b = CampaignPlan::random(99, &space, 10_000, &chains, &witnesses, &names);
        let c = CampaignPlan::random(100, &space, 10_000, &chains, &witnesses, &names);
        assert_eq!(a, b);
        assert_ne!(a.events, c.events);
        // Every fault class the space requested is present.
        assert_eq!(a.count(|f| matches!(f, Fault::Crash { .. })), space.crashes);
        assert_eq!(a.count(|f| matches!(f, Fault::Partition { .. })), space.partitions);
        assert_eq!(a.count(|f| matches!(f, Fault::Fork { .. })), space.forks);
        // Only one witness chain, so at most one equivocation.
        assert_eq!(a.count(|f| matches!(f, Fault::Equivocate { .. })), 1);
        assert_eq!(a.count(|f| matches!(f, Fault::FloodMempool { .. })), space.floods);
        assert_eq!(a.count(|f| matches!(f, Fault::SpikeBaseFee { .. })), space.spikes);
    }

    #[test]
    fn equivocations_land_on_distinct_witness_chains() {
        let witnesses = [ChainId(5), ChainId(6), ChainId(7)];
        let space = CampaignSpace { equivocations: 3, ..CampaignSpace::quiet() };
        let plan = CampaignPlan::random(3, &space, 0, &[], &witnesses, &[]);
        let mut chains: Vec<ChainId> = plan
            .events
            .iter()
            .filter_map(|e| match e.fault {
                Fault::Equivocate { witness_chain } => Some(witness_chain),
                _ => None,
            })
            .collect();
        assert_eq!(chains.len(), 3);
        chains.sort();
        chains.dedup();
        assert_eq!(chains.len(), 3, "each equivocation targets its own bond");
    }
}
