//! The concurrent swap scheduler: N AC2Ts in flight over one shared world.
//!
//! The paper's throughput claim (Section 6.4 / Table 1) is about *many*
//! AC2Ts running at once — aggregate commitment throughput bounded by
//! `min(tps)` over the involved chains. The blocking drivers could never
//! exercise that claim because each `execute` call monopolised simulated
//! time. The [`Scheduler`] drives a batch of [`SwapMachine`]s instead: it
//! advances world time **once per tick** and polls every in-flight machine
//! at each tick, so hundreds of swaps share block space, mempools and the
//! witness chain(s) rather than each owning the clock. The Section 5.2
//! scalability experiment builds on this: k real witness chains in one
//! world, with swaps assigned round-robin
//! (see [`crate::scenario::concurrent_swaps_multi_witness`]).
//!
//! Per-swap attribution: each machine keeps its own timeline (part of its
//! [`SwapReport`]), and the scheduler brackets every poll with
//! [`World::set_fee_attribution`] so the world's [`ac3_sim::FeeLedger`]
//! records which swap paid which fees.
//!
//! # Example: two machines through one scheduler
//!
//! Any [`SwapMachine`] can join a batch — the AC3 protocols and both
//! Herlihy baselines (including the multi-leader
//! [`crate::herlihy_multi::HerlihyMultiMachine`]) decompose into machines:
//!
//! ```
//! use ac3_core::scenario::{concurrent_swaps_scenario, ScenarioConfig};
//! use ac3_core::{Ac3wn, ProtocolConfig, Scheduler, SwapMachine};
//!
//! // Two two-party AC2Ts over two shared asset chains + a shared witness.
//! let mut s = concurrent_swaps_scenario(2, 2, &ScenarioConfig::default());
//! let driver = Ac3wn::new(ProtocolConfig::default());
//! let machines = s.machines_with(|swap| {
//!     Box::new(driver.machine(swap.graph.clone(), swap.witness)) as Box<dyn SwapMachine>
//! });
//!
//! let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);
//! assert_eq!(batch.committed(), 2);
//! assert!(batch.all_atomic());
//! // Fees were billed per swap while the machines shared one world.
//! assert!(s.swaps.iter().all(|swap| s.world.fees.fees_for_swap(swap.id) > 0));
//! ```

use crate::driver::{Step, SwapMachine};
use crate::protocol::{ProtocolError, SwapReport};
use ac3_chain::Timestamp;
use ac3_sim::{ParticipantSet, SwapId, World};

/// Drives a batch of swap state machines over one shared world.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Upper bound on simulated time spent after the batch starts; swaps
    /// still unfinished when it is exhausted fail with a timeout error
    /// (protects callers from a livelocked machine).
    pub max_ms: u64,
}

impl Default for Scheduler {
    fn default() -> Self {
        // One simulated day — far beyond any protocol wait cap, so the
        // budget only triggers on genuine livelock.
        Scheduler { max_ms: 86_400_000 }
    }
}

/// The terminal result of one swap in a scheduled batch.
#[derive(Debug)]
pub struct SwapOutcome {
    /// The swap's id (also the key for fee attribution in the world
    /// ledger).
    pub id: SwapId,
    /// The swap's report, or the protocol error that ended it.
    pub result: Result<SwapReport, ProtocolError>,
}

/// The result of scheduling a batch of concurrent swaps.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-swap outcomes, in submission order.
    pub outcomes: Vec<SwapOutcome>,
    /// Simulated time at which the batch started.
    pub started_at: Timestamp,
    /// Simulated time at which the last swap finished (or the budget ran
    /// out).
    pub finished_at: Timestamp,
    /// Number of scheduler ticks (time advances) taken.
    pub ticks: u64,
}

impl BatchReport {
    /// Reports of the swaps that finished without a protocol error.
    pub fn reports(&self) -> impl Iterator<Item = (&SwapId, &SwapReport)> {
        self.outcomes.iter().filter_map(|o| o.result.as_ref().ok().map(|r| (&o.id, r)))
    }

    /// The report of one swap, if it finished without error.
    pub fn report_for(&self, id: SwapId) -> Option<&SwapReport> {
        self.outcomes.iter().find(|o| o.id == id).and_then(|o| o.result.as_ref().ok())
    }

    /// Number of swaps that committed (decision `Some(true)`).
    pub fn committed(&self) -> usize {
        self.reports().filter(|(_, r)| r.decision == Some(true)).count()
    }

    /// Number of swaps that aborted cleanly (decision `Some(false)`).
    pub fn aborted(&self) -> usize {
        self.reports().filter(|(_, r)| r.decision == Some(false)).count()
    }

    /// Number of swaps that ended in a protocol error.
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_err()).count()
    }

    /// Whether every finished swap preserved all-or-nothing atomicity.
    pub fn all_atomic(&self) -> bool {
        self.reports().all(|(_, r)| r.is_atomic())
    }

    /// Wall-to-wall simulated duration of the batch.
    pub fn makespan_ms(&self) -> u64 {
        self.finished_at.saturating_sub(self.started_at)
    }

    /// Aggregate commitment throughput: committed AC2Ts per simulated
    /// second over the whole batch.
    pub fn commits_per_sec(&self) -> f64 {
        let ms = self.makespan_ms();
        if ms == 0 {
            return 0.0;
        }
        self.committed() as f64 * 1_000.0 / ms as f64
    }
}

struct Slot {
    id: SwapId,
    machine: Box<dyn SwapMachine>,
    not_before: Timestamp,
    done: Option<Result<SwapReport, ProtocolError>>,
}

impl Scheduler {
    /// A scheduler with the given simulated-time budget.
    pub fn new(max_ms: u64) -> Self {
        Scheduler { max_ms }
    }

    /// Run `machines` to completion over the shared `world`, interleaving
    /// their polls tick by tick.
    ///
    /// Each tick polls every in-flight machine whose `not_before` has
    /// passed, then advances world time to the earliest instant any machine
    /// asked to be polled again. Machines submit transactions into shared
    /// mempools; block production happens inside [`World::advance`] exactly
    /// as it does for a single swap, so an N = 1 batch reproduces
    /// [`crate::driver::drive`] tick for tick.
    pub fn run(
        &self,
        world: &mut World,
        participants: &mut ParticipantSet,
        machines: Vec<(SwapId, Box<dyn SwapMachine>)>,
    ) -> BatchReport {
        let started_at = world.now();
        let mut slots: Vec<Slot> = machines
            .into_iter()
            .map(|(id, machine)| Slot { id, machine, not_before: started_at, done: None })
            .collect();
        let mut ticks = 0u64;

        loop {
            let now = world.now();
            for slot in slots.iter_mut().filter(|s| s.done.is_none()) {
                if now < slot.not_before {
                    continue;
                }
                world.set_fee_attribution(Some(slot.id));
                match slot.machine.poll(world, participants) {
                    Ok(Step::Done(report)) => slot.done = Some(Ok(*report)),
                    Ok(Step::Waiting { not_before }) => slot.not_before = not_before,
                    Err(e) => slot.done = Some(Err(e)),
                }
                world.set_fee_attribution(None);
            }

            if slots.iter().all(|s| s.done.is_some()) {
                break;
            }
            if world.now().saturating_sub(started_at) >= self.max_ms {
                for slot in slots.iter_mut().filter(|s| s.done.is_none()) {
                    slot.done = Some(Err(ProtocolError::World(format!(
                        "scheduler budget of {} ms exhausted in phase {}",
                        self.max_ms,
                        slot.machine.phase_name()
                    ))));
                }
                break;
            }

            // One tick: advance to the earliest instant any pending machine
            // wants to be polled again.
            let next = slots
                .iter()
                .filter(|s| s.done.is_none())
                .map(|s| s.not_before)
                .min()
                .expect("pending slots exist");
            let now = world.now();
            world.advance(next.saturating_sub(now).max(1));
            ticks += 1;
        }

        BatchReport {
            outcomes: slots
                .into_iter()
                .map(|s| SwapOutcome { id: s.id, result: s.done.expect("loop ran to completion") })
                .collect(),
            started_at,
            finished_at: world.now(),
            ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{concurrent_swaps_scenario, ScenarioConfig};
    use crate::{Ac3wn, ProtocolConfig};

    fn protocol_cfg() -> ProtocolConfig {
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
    }

    #[test]
    fn small_batch_commits_concurrently() {
        let mut s = concurrent_swaps_scenario(4, 2, &ScenarioConfig::default());
        let driver = Ac3wn::new(protocol_cfg());
        let machines =
            s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)));
        let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);
        assert_eq!(batch.committed(), 4, "all four swaps commit");
        assert_eq!(batch.failed(), 0);
        assert!(batch.all_atomic());
        // Concurrency: four swaps of ~4Δ each complete in far less than
        // 4 × the single-swap latency.
        let single = batch.report_for(s.swaps[0].id).unwrap().latency_ms();
        assert!(
            batch.makespan_ms() < single * 3,
            "batch of 4 took {} ms vs single latency {} ms — swaps did not interleave",
            batch.makespan_ms(),
            single
        );
        // Fees were attributed per swap and sum to the world ledger total.
        let attributed: u64 = s.swaps.iter().map(|swap| s.world.fees.fees_for_swap(swap.id)).sum();
        assert_eq!(attributed, s.world.fees.total_fees());
        s.world.assert_state_integrity();
    }

    #[test]
    fn budget_exhaustion_fails_remaining_swaps() {
        let mut s = concurrent_swaps_scenario(2, 2, &ScenarioConfig::default());
        let driver = Ac3wn::new(protocol_cfg());
        let machines =
            s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)));
        // A 1 ms budget cannot even finish registration.
        let batch = Scheduler::new(1).run(&mut s.world, &mut s.participants, machines);
        assert_eq!(batch.failed(), 2);
        assert!(!batch.outcomes.iter().any(|o| o.result.is_ok()), "nothing can finish in 1 ms");
    }
}
