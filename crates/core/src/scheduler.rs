//! The concurrent swap scheduler: N AC2Ts in flight over one shared world.
//!
//! The paper's throughput claim (Section 6.4 / Table 1) is about *many*
//! AC2Ts running at once — aggregate commitment throughput bounded by
//! `min(tps)` over the involved chains. The blocking drivers could never
//! exercise that claim because each `execute` call monopolised simulated
//! time. The [`Scheduler`] drives a batch of [`SwapMachine`]s instead: it
//! advances world time **once per tick** and polls every in-flight machine
//! at each tick, so hundreds of swaps share block space, mempools and the
//! witness chain(s) rather than each owning the clock. The Section 5.2
//! scalability experiment builds on this: k real witness chains in one
//! world, with swaps assigned round-robin
//! (see [`crate::scenario::concurrent_swaps_multi_witness`]).
//!
//! Per-swap attribution: each machine keeps its own timeline (part of its
//! [`SwapReport`]), and the scheduler brackets every poll with
//! [`World::set_fee_attribution`] so the world's [`ac3_sim::FeeLedger`]
//! records which swap paid which fees.
//!
//! # Example: two machines through one scheduler
//!
//! Any [`SwapMachine`] can join a batch — the AC3 protocols and both
//! Herlihy baselines (including the multi-leader
//! [`crate::herlihy_multi::HerlihyMultiMachine`]) decompose into machines:
//!
//! ```
//! use ac3_core::scenario::{concurrent_swaps_scenario, ScenarioConfig};
//! use ac3_core::{Ac3wn, ProtocolConfig, Scheduler, SwapMachine};
//!
//! // Two two-party AC2Ts over two shared asset chains + a shared witness.
//! let mut s = concurrent_swaps_scenario(2, 2, &ScenarioConfig::default());
//! let driver = Ac3wn::new(ProtocolConfig::default());
//! let machines = s.machines_with(|swap| {
//!     Box::new(driver.machine(swap.graph.clone(), swap.witness)) as Box<dyn SwapMachine>
//! });
//!
//! let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);
//! assert_eq!(batch.committed(), 2);
//! assert!(batch.all_atomic());
//! // Fees were billed per swap while the machines shared one world.
//! assert!(s.swaps.iter().all(|swap| s.world.fees.fees_for_swap(swap.id) > 0));
//! ```

use crate::driver::{MachineFootprint, Step, SwapMachine};
use crate::partition::partition_batch;
use crate::protocol::{ProtocolError, SwapReport};
use ac3_chain::{Amount, ChainId, Timestamp};
use ac3_sim::{NetworkProfile, ParticipantSet, SwapId, World};
use std::collections::BTreeMap;

/// Drives a batch of swap state machines over one shared world.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Upper bound on simulated time spent after the batch starts; swaps
    /// still unfinished when it is exhausted fail with a timeout error
    /// (protects callers from a livelocked machine).
    pub max_ms: u64,
    /// Worker threads for [`Scheduler::run`]: 1 polls every machine on the
    /// calling thread (the serial reference loop); above 1 the batch is
    /// partitioned into data-disjoint shards (see [`crate::partition`])
    /// polled concurrently, with results bitwise identical to the serial
    /// loop at any worker count.
    pub workers: usize,
    /// Message-level network conditions attached to the world before the
    /// batch starts (see [`ac3_sim::World::attach_network`]): every machine
    /// submission routes through a per-chain link with seeded delivery
    /// delay and loss. `None` (the default) polls machines through the
    /// synchronous [`ac3_sim::DirectApi`]. Results remain bitwise
    /// deterministic at any worker count either way.
    pub network: Option<NetworkProfile>,
    /// Run every machine poll behind the footprint-audit sanitizer
    /// ([`ac3_sim::AuditApi`]): touching a chain or actor outside the
    /// machine's declared [`MachineFootprint`] panics with the machine id,
    /// phase and offending resource instead of silently aliasing state the
    /// serial path happens to have in reach. Defaults to the
    /// `AC3_FOOTPRINT_AUDIT` environment variable
    /// ([`crate::driver::footprint_audit_enabled`]); audited runs that
    /// don't panic are bitwise identical to unaudited ones.
    pub audit: bool,
}

impl Default for Scheduler {
    fn default() -> Self {
        // One simulated day — far beyond any protocol wait cap, so the
        // budget only triggers on genuine livelock.
        Scheduler {
            max_ms: 86_400_000,
            workers: 1,
            network: None,
            audit: crate::driver::footprint_audit_enabled(),
        }
    }
}

/// How the scheduler assigns a witness chain to each swap of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WitnessAssignment {
    /// Swap `i` is coordinated by witness chain `i mod k` — the static
    /// split the Section 5.2 experiment uses.
    #[default]
    RoundRobin,
    /// Each swap is assigned, at launch time, to the witness chain with
    /// the lowest *predicted cost of coordination*: the chain's dynamic
    /// base fee (floored at 1 so fee-free chains still rank by queue)
    /// times its mempool depth (plus one, so an empty queue still prices
    /// the base fee in). Ties break by fewest assignments so far, then
    /// chain order. Routes new swaps away from witness networks that are
    /// *expensive* — deep-queued, base-fee-spiked, or both — not merely
    /// deep ones.
    LeastLoaded,
}

/// Deferred machine construction: called with the assigned witness chain
/// when the swap is launched (see [`Scheduler::run_assigned`]).
pub type MachineSeed = Box<dyn FnOnce(ChainId) -> Box<dyn SwapMachine>>;

/// The terminal result of one swap in a scheduled batch.
#[derive(Debug)]
pub struct SwapOutcome {
    /// The swap's id (also the key for fee attribution in the world
    /// ledger).
    pub id: SwapId,
    /// The witness chain the scheduler assigned (only for batches run via
    /// [`Scheduler::run_assigned`]).
    pub witness: Option<ChainId>,
    /// The swap's report, or the protocol error that ended it.
    pub result: Result<SwapReport, ProtocolError>,
}

/// The result of scheduling a batch of concurrent swaps.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-swap outcomes, in submission order.
    pub outcomes: Vec<SwapOutcome>,
    /// Simulated time at which the batch started.
    pub started_at: Timestamp,
    /// Simulated time at which the last swap finished (or the budget ran
    /// out).
    pub finished_at: Timestamp,
    /// Number of scheduler ticks (time advances) taken.
    pub ticks: u64,
}

impl BatchReport {
    /// Reports of the swaps that finished without a protocol error.
    pub fn reports(&self) -> impl Iterator<Item = (&SwapId, &SwapReport)> {
        self.outcomes.iter().filter_map(|o| o.result.as_ref().ok().map(|r| (&o.id, r)))
    }

    /// The report of one swap, if it finished without error.
    pub fn report_for(&self, id: SwapId) -> Option<&SwapReport> {
        self.outcomes.iter().find(|o| o.id == id).and_then(|o| o.result.as_ref().ok())
    }

    /// Number of swaps that committed (decision `Some(true)`).
    pub fn committed(&self) -> usize {
        self.reports().filter(|(_, r)| r.decision == Some(true)).count()
    }

    /// Number of swaps that aborted cleanly (decision `Some(false)`).
    pub fn aborted(&self) -> usize {
        self.reports().filter(|(_, r)| r.decision == Some(false)).count()
    }

    /// Number of swaps that ended in a protocol error.
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_err()).count()
    }

    /// Whether every finished swap preserved all-or-nothing atomicity.
    pub fn all_atomic(&self) -> bool {
        self.reports().all(|(_, r)| r.is_atomic())
    }

    /// Wall-to-wall simulated duration of the batch.
    pub fn makespan_ms(&self) -> u64 {
        self.finished_at.saturating_sub(self.started_at)
    }

    /// Aggregate commitment throughput: committed AC2Ts per simulated
    /// second over the whole batch.
    pub fn commits_per_sec(&self) -> f64 {
        let ms = self.makespan_ms();
        if ms == 0 {
            return 0.0;
        }
        self.committed() as f64 * 1_000.0 / ms as f64
    }

    /// Per-swap fee-inflation statistics over the finished swaps — what
    /// the batch actually paid for block space versus the paper's static
    /// Section 6.2 schedule.
    pub fn fee_stats(&self) -> FeeMarketStats {
        let mut stats = FeeMarketStats::default();
        let mut inflation_sum = 0.0;
        let mut txs = 0u64;
        for (_, r) in self.reports() {
            stats.swaps += 1;
            stats.fees_paid += r.fees_paid;
            stats.fees_scheduled += r.fees_scheduled;
            stats.rebids += r.fee_rebids;
            txs += r.deployments + r.calls;
            let inflation = r.fee_inflation();
            inflation_sum += inflation;
            if inflation > stats.max_inflation {
                stats.max_inflation = inflation;
            }
        }
        if stats.swaps > 0 {
            stats.mean_inflation = inflation_sum / stats.swaps as f64;
        }
        if txs > 0 {
            stats.mean_fee_per_tx = stats.fees_paid as f64 / txs as f64;
        }
        stats
    }

    /// Witness chains assigned by [`Scheduler::run_assigned`], with how
    /// many swaps each received.
    pub fn witness_assignments(&self) -> BTreeMap<ChainId, usize> {
        let mut counts = BTreeMap::new();
        for outcome in &self.outcomes {
            if let Some(witness) = outcome.witness {
                *counts.entry(witness).or_insert(0) += 1;
            }
        }
        counts
    }
}

/// Aggregate fee-market statistics of a scheduled batch (see
/// [`BatchReport::fee_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FeeMarketStats {
    /// Number of finished swaps the stats cover.
    pub swaps: usize,
    /// Total fees actually paid (final bids of every accepted transaction).
    pub fees_paid: Amount,
    /// What the static fd/ffc schedule prices the same operations at.
    pub fees_scheduled: Amount,
    /// Total replace-by-fee escalations across the batch.
    pub rebids: u64,
    /// Mean per-swap `fees_paid / fees_scheduled`.
    pub mean_inflation: f64,
    /// Worst per-swap fee inflation.
    pub max_inflation: f64,
    /// Mean fee per accepted transaction (deployments + calls).
    pub mean_fee_per_tx: f64,
}

enum SlotMachine {
    /// Machine not yet built: the seed runs with the assigned witness
    /// chain at launch (first poll), so the assignment can observe the
    /// mempool depths left by the swaps launched before it.
    Deferred(Option<MachineSeed>),
    Live(Box<dyn SwapMachine>),
}

struct Slot {
    id: SwapId,
    machine: SlotMachine,
    witness: Option<ChainId>,
    not_before: Timestamp,
    done: Option<Result<SwapReport, ProtocolError>>,
}

impl Slot {
    fn phase_name(&self) -> &'static str {
        match &self.machine {
            SlotMachine::Deferred(_) => "unlaunched",
            SlotMachine::Live(machine) => machine.phase_name(),
        }
    }
}

impl Scheduler {
    /// A scheduler with the given simulated-time budget.
    pub fn new(max_ms: u64) -> Self {
        Scheduler { max_ms, ..Scheduler::default() }
    }

    /// This scheduler with its worker-thread count set (see
    /// [`Scheduler::workers`]).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// This scheduler with a network profile set (see
    /// [`Scheduler::network`]).
    pub fn with_network(mut self, profile: NetworkProfile) -> Self {
        self.network = Some(profile);
        self
    }

    /// This scheduler with the footprint-audit sanitizer forced on or off
    /// (see [`Scheduler::audit`]), overriding the environment default.
    pub fn with_footprint_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Attach the configured network profile to the world, once, before
    /// the first poll — so both batch entry points and the parallel path's
    /// shard splitting all see the links in place.
    fn attach_network(&self, world: &mut World) {
        if let Some(profile) = self.network {
            if !world.network_attached() {
                world.attach_network(profile);
            }
        }
    }

    /// Run `machines` to completion over the shared `world`, interleaving
    /// their polls tick by tick.
    ///
    /// Each tick polls every in-flight machine whose `not_before` has
    /// passed, then advances world time to the earliest instant any machine
    /// asked to be polled again. Machines submit transactions into shared
    /// mempools; block production happens inside [`World::advance`] exactly
    /// as it does for a single swap, so an N = 1 batch reproduces
    /// [`crate::driver::drive`] tick for tick.
    ///
    /// With [`Scheduler::workers`] above 1 the batch runs through
    /// [`Scheduler::run_parallel`] instead; swap outcomes, fee ledgers and
    /// tick counts are identical either way.
    pub fn run(
        &self,
        world: &mut World,
        participants: &mut ParticipantSet,
        machines: Vec<(SwapId, Box<dyn SwapMachine>)>,
    ) -> BatchReport {
        self.attach_network(world);
        if self.workers > 1 {
            return self.run_parallel(world, participants, machines, self.workers);
        }
        let slots = machines
            .into_iter()
            .map(|(id, machine)| Slot {
                id,
                machine: SlotMachine::Live(machine),
                witness: None,
                not_before: world.now(),
                done: None,
            })
            .collect();
        self.run_slots(world, participants, slots, &[], WitnessAssignment::RoundRobin)
    }

    /// Like [`Scheduler::run`], but the scheduler itself assigns each swap
    /// a witness chain at launch time according to `strategy`, then builds
    /// the machine from its seed. Under
    /// [`WitnessAssignment::LeastLoaded`] each launch observes the witness
    /// mempool depths left by every previously launched swap, so a batch
    /// self-balances across the k witness networks instead of splitting
    /// statically.
    pub fn run_assigned(
        &self,
        world: &mut World,
        participants: &mut ParticipantSet,
        witness_chains: &[ChainId],
        strategy: WitnessAssignment,
        seeds: Vec<(SwapId, MachineSeed)>,
    ) -> BatchReport {
        assert!(!witness_chains.is_empty(), "witness assignment needs at least one witness chain");
        self.attach_network(world);
        let slots = seeds
            .into_iter()
            .map(|(id, seed)| Slot {
                id,
                machine: SlotMachine::Deferred(Some(seed)),
                witness: None,
                not_before: world.now(),
                done: None,
            })
            .collect();
        self.run_slots(world, participants, slots, witness_chains, strategy)
    }

    /// Pick the witness chain for the `index`-th launched swap.
    fn pick_witness(
        world: &World,
        witness_chains: &[ChainId],
        strategy: WitnessAssignment,
        index: usize,
        assigned: &BTreeMap<ChainId, usize>,
    ) -> ChainId {
        match strategy {
            WitnessAssignment::RoundRobin => witness_chains[index % witness_chains.len()],
            WitnessAssignment::LeastLoaded => witness_chains
                .iter()
                .copied()
                .min_by_key(|c| {
                    // Predicted coordination cost: base fee × queue depth.
                    // A deep queue on a cheap chain and a shallow queue on
                    // an expensive one both price worse than a shallow
                    // cheap one.
                    let cost = world
                        .chain(*c)
                        .map(|chain| {
                            let depth = chain.mempool_len() as u128 + 1;
                            let base_fee = (chain.base_fee() as u128).max(1);
                            base_fee.saturating_mul(depth)
                        })
                        .unwrap_or(u128::MAX);
                    (cost, assigned.get(c).copied().unwrap_or(0))
                })
                .expect("witness chain list is non-empty"),
        }
    }

    fn run_slots(
        &self,
        world: &mut World,
        participants: &mut ParticipantSet,
        mut slots: Vec<Slot>,
        witness_chains: &[ChainId],
        strategy: WitnessAssignment,
    ) -> BatchReport {
        let started_at = world.now();
        let mut ticks = 0u64;
        let mut launched = 0usize;
        let mut assigned: BTreeMap<ChainId, usize> = BTreeMap::new();

        loop {
            let now = world.now();
            for slot in slots.iter_mut().filter(|s| s.done.is_none()) {
                if now < slot.not_before {
                    continue;
                }
                if let SlotMachine::Deferred(seed) = &mut slot.machine {
                    let witness =
                        Self::pick_witness(world, witness_chains, strategy, launched, &assigned);
                    launched += 1;
                    *assigned.entry(witness).or_insert(0) += 1;
                    slot.witness = Some(witness);
                    let seed = seed.take().expect("deferred seed consumed once");
                    slot.machine = SlotMachine::Live(seed(witness));
                }
                let SlotMachine::Live(machine) = &mut slot.machine else { unreachable!() };
                world.set_fee_attribution(Some(slot.id));
                match crate::driver::poll_machine_audited(
                    machine.as_mut(),
                    world,
                    participants,
                    self.audit,
                    Some(slot.id.0),
                ) {
                    Ok(Step::Done(report)) => slot.done = Some(Ok(*report)),
                    Ok(Step::Waiting { not_before }) => slot.not_before = not_before,
                    Err(e) => slot.done = Some(Err(e)),
                }
                world.set_fee_attribution(None);
            }

            if slots.iter().all(|s| s.done.is_some()) {
                break;
            }
            if world.now().saturating_sub(started_at) >= self.max_ms {
                for slot in slots.iter_mut().filter(|s| s.done.is_none()) {
                    slot.done = Some(Err(ProtocolError::World(format!(
                        "scheduler budget of {} ms exhausted in phase {}",
                        self.max_ms,
                        slot.phase_name()
                    ))));
                }
                break;
            }

            // One tick: advance to the earliest instant any pending machine
            // wants to be polled again.
            let next = slots
                .iter()
                .filter(|s| s.done.is_none())
                .map(|s| s.not_before)
                .min()
                .expect("pending slots exist");
            let now = world.now();
            world.advance(next.saturating_sub(now).max(1));
            ticks += 1;
        }

        BatchReport {
            outcomes: slots
                .into_iter()
                .map(|s| SwapOutcome {
                    id: s.id,
                    witness: s.witness,
                    result: s.done.expect("loop ran to completion"),
                })
                .collect(),
            started_at,
            finished_at: world.now(),
            ticks,
        }
    }

    /// Run a batch across `workers` threads by splitting it into
    /// data-disjoint shards.
    ///
    /// Machines are grouped into connected components of footprint overlap
    /// ([`crate::partition::partition_batch`]); each component's chains,
    /// actors, and fee-ledger slices are *moved* out of the world
    /// ([`World::split_shard`]) into a shard a worker owns outright. Every
    /// tick has two phases in lockstep:
    ///
    /// 1. **Parallel phase** — each worker advances its shards' clocks by
    ///    the batch-wide `dt` (mining, base-fee updates, and mempool
    ///    maintenance run concurrently across shards, and chains that no
    ///    machine touches mine on the scheduler thread), then polls its
    ///    shards' due machines in submission order.
    /// 2. **Merge barrier** — the scheduler thread joins the scope, folds
    ///    the per-shard done flags and wake-up times, and picks the next
    ///    batch-wide `dt` exactly as the serial loop does.
    ///
    /// **Determinism.** Within a shard, machines poll in submission order
    /// against state only they can reach — the same instruction stream the
    /// serial loop would execute for those machines. Across shards there
    /// is no shared state at all, so thread interleaving has nothing to
    /// observe. Swap reports, fee ledgers, tick counts, and outcome order
    /// are therefore bitwise identical at *any* worker count, and identical
    /// to [`Scheduler::run`]'s serial loop; the one permitted difference
    /// from the serial loop is the relative order of *same-timestamp*
    /// events from unrelated shards in the world's global timeline (shards
    /// are absorbed in first-machine order, not poll-interleaving order).
    ///
    /// A footprint naming a chain the world does not hold falls back to
    /// the serial loop, which surfaces the error per machine.
    pub fn run_parallel(
        &self,
        world: &mut World,
        participants: &mut ParticipantSet,
        machines: Vec<(SwapId, Box<dyn SwapMachine>)>,
        workers: usize,
    ) -> BatchReport {
        let footprints: Vec<MachineFootprint> =
            machines.iter().map(|(_, m)| m.footprint()).collect();
        if footprints.iter().flat_map(|f| f.chains.iter()).any(|c| world.chain(*c).is_err()) {
            let serial = Scheduler { workers: 1, ..self.clone() };
            return serial.run(world, participants, machines);
        }
        let components = partition_batch(&footprints);

        // Carve one shard task per component out of the world.
        let mut machines: Vec<Option<(SwapId, Box<dyn SwapMachine>)>> =
            machines.into_iter().map(Some).collect();
        let started_at = world.now();
        let mut tasks: Vec<ShardTask> = Vec::with_capacity(components.len());
        for component in &components {
            let swaps: Vec<SwapId> = component
                .machines
                .iter()
                .map(|&i| machines[i].as_ref().expect("each machine joins one shard").0)
                .collect();
            let shard_world = world
                .split_shard(&component.chains, &swaps)
                .expect("footprint chains verified above");
            let shard_participants = participants.split_off(&component.actors);
            let slots = component
                .machines
                .iter()
                .map(|&i| {
                    let (id, machine) = machines[i].take().expect("each machine joins one shard");
                    ParSlot { index: i, id, machine, not_before: started_at, done: None }
                })
                .collect();
            tasks.push(ShardTask {
                world: shard_world,
                participants: shard_participants,
                slots,
                audit: self.audit,
            });
        }

        let mut ticks = 0u64;
        let mut dt = 0u64;
        loop {
            // Parallel phase: advance every shard by the batch-wide dt,
            // then poll due machines — shard-local serial order inside,
            // no shared state across.
            let stripe = tasks.len().div_ceil(workers.max(1).min(tasks.len().max(1)));
            std::thread::scope(|scope| {
                let mut chunks = tasks.chunks_mut(stripe.max(1));
                // Run the first stripe on the scheduler thread (alongside
                // the residual, machine-free chains) instead of parking it
                // at the join barrier.
                let local = chunks.next();
                for chunk in chunks {
                    scope.spawn(move || {
                        for task in chunk {
                            task.step(dt);
                        }
                    });
                }
                if dt > 0 {
                    world.advance(dt);
                }
                if let Some(chunk) = local {
                    for task in chunk {
                        task.step(dt);
                    }
                }
            });
            if dt > 0 {
                ticks += 1;
            }

            // Merge barrier: fold shard summaries, decide the next dt —
            // the same decisions, in the same order, as the serial loop.
            if tasks.iter().all(|t| t.slots.iter().all(|s| s.done.is_some())) {
                break;
            }
            if world.now().saturating_sub(started_at) >= self.max_ms {
                for task in &mut tasks {
                    for slot in task.slots.iter_mut().filter(|s| s.done.is_none()) {
                        slot.done = Some(Err(ProtocolError::World(format!(
                            "scheduler budget of {} ms exhausted in phase {}",
                            self.max_ms,
                            slot.machine.phase_name()
                        ))));
                    }
                }
                break;
            }
            let next = tasks
                .iter()
                .flat_map(|t| t.slots.iter())
                .filter(|s| s.done.is_none())
                .map(|s| s.not_before)
                .min()
                .expect("pending slots exist");
            dt = next.saturating_sub(world.now()).max(1);
        }

        // Reassemble: absorb shards in deterministic component order and
        // restore the original outcome order.
        let finished_at = world.now();
        let mut outcomes: Vec<Option<SwapOutcome>> = Vec::new();
        outcomes.resize_with(machines.len(), || None);
        for task in tasks {
            world.absorb_shard(task.world);
            participants.absorb(task.participants);
            for slot in task.slots {
                outcomes[slot.index] = Some(SwapOutcome {
                    id: slot.id,
                    witness: None,
                    result: slot.done.expect("loop ran to completion"),
                });
            }
        }
        BatchReport {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every machine joined exactly one shard"))
                .collect(),
            started_at,
            finished_at,
            ticks,
        }
    }
}

/// A slot of the parallel scheduler: one machine, owned by exactly one
/// shard (no deferred seeds — witness assignment is a global decision the
/// serial launcher makes; see [`Scheduler::run_assigned`]).
struct ParSlot {
    /// Index in the batch's submission order, to restore outcome order
    /// after shards complete out of order.
    index: usize,
    id: SwapId,
    machine: Box<dyn SwapMachine>,
    not_before: Timestamp,
    done: Option<Result<SwapReport, ProtocolError>>,
}

/// One worker-owned shard: a split-off world, the participants its
/// machines sign for, and the machines themselves. `Send` because every
/// constituent is (`World` and `ParticipantSet` own their data; machines
/// carry the `SwapMachine: Send` supertrait bound).
struct ShardTask {
    world: World,
    participants: ParticipantSet,
    slots: Vec<ParSlot>,
    /// Whether polls run behind the footprint-audit sanitizer (see
    /// [`Scheduler::audit`]).
    audit: bool,
}

impl ShardTask {
    /// One lockstep tick of this shard: advance the shard clock by the
    /// batch-wide `dt`, then poll due machines in submission order —
    /// verbatim the serial loop's poll pass restricted to this shard.
    fn step(&mut self, dt: u64) {
        if dt > 0 {
            self.world.advance(dt);
        }
        let now = self.world.now();
        for slot in self.slots.iter_mut().filter(|s| s.done.is_none()) {
            if now < slot.not_before {
                continue;
            }
            self.world.set_fee_attribution(Some(slot.id));
            match crate::driver::poll_machine_audited(
                slot.machine.as_mut(),
                &mut self.world,
                &mut self.participants,
                self.audit,
                Some(slot.id.0),
            ) {
                Ok(Step::Done(report)) => slot.done = Some(Ok(*report)),
                Ok(Step::Waiting { not_before }) => slot.not_before = not_before,
                Err(e) => slot.done = Some(Err(e)),
            }
            self.world.set_fee_attribution(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{concurrent_swaps_scenario, ScenarioConfig};
    use crate::{Ac3wn, ProtocolConfig};

    fn protocol_cfg() -> ProtocolConfig {
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
    }

    #[test]
    fn small_batch_commits_concurrently() {
        let mut s = concurrent_swaps_scenario(4, 2, &ScenarioConfig::default());
        let driver = Ac3wn::new(protocol_cfg());
        let machines =
            s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)));
        let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);
        assert_eq!(batch.committed(), 4, "all four swaps commit");
        assert_eq!(batch.failed(), 0);
        assert!(batch.all_atomic());
        // Concurrency: four swaps of ~4Δ each complete in far less than
        // 4 × the single-swap latency.
        let single = batch.report_for(s.swaps[0].id).unwrap().latency_ms();
        assert!(
            batch.makespan_ms() < single * 3,
            "batch of 4 took {} ms vs single latency {} ms — swaps did not interleave",
            batch.makespan_ms(),
            single
        );
        // Fees were attributed per swap and sum to the world ledger total.
        let attributed: u64 = s.swaps.iter().map(|swap| s.world.fees.fees_for_swap(swap.id)).sum();
        assert_eq!(attributed, s.world.fees.total_fees());
        s.world.assert_state_integrity();
    }

    #[test]
    fn uncontended_batch_pays_exactly_the_static_schedule() {
        let mut s = concurrent_swaps_scenario(3, 3, &ScenarioConfig::default());
        let driver = Ac3wn::new(ProtocolConfig {
            fee_policy: crate::fee::FeePolicy::Exponential { cap: 64 },
            ..protocol_cfg()
        });
        let machines =
            s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)));
        let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);
        assert_eq!(batch.committed(), 3);
        let stats = batch.fee_stats();
        // Generous throughput: nothing queues, so even an aggressive
        // policy never re-bids and the Section 6.2 schedule is exact.
        assert_eq!(stats.rebids, 0);
        assert_eq!(stats.fees_paid, stats.fees_scheduled);
        assert!((stats.mean_inflation - 1.0).abs() < 1e-9);
        assert!((stats.max_inflation - 1.0).abs() < 1e-9);
    }

    #[test]
    fn contended_witness_chain_forces_fee_escalation() {
        use ac3_chain::ChainParams;
        // Eight swaps share ONE tps-starved witness chain: their SC_w
        // registrations and authorize calls queue many blocks deep, so an
        // escalating policy must re-bid — and every swap still commits.
        let asset_params =
            (0..2).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
        let witness_params = ChainParams::fast("witness", 1);
        let mut s =
            crate::scenario::concurrent_swaps_over_chains(8, asset_params, witness_params, 1_000);
        let cap = 64;
        let driver = Ac3wn::new(ProtocolConfig {
            wait_cap_deltas: 64,
            fee_policy: crate::fee::FeePolicy::Exponential { cap },
            ..protocol_cfg()
        });
        let machines =
            s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)));
        let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);
        assert_eq!(batch.failed(), 0, "queueing must delay swaps, not fail them");
        assert_eq!(batch.committed(), 8);
        assert!(batch.all_atomic());
        let stats = batch.fee_stats();
        assert!(stats.rebids > 0, "a starved witness chain must force re-bids");
        assert!(
            stats.fees_paid > stats.fees_scheduled,
            "re-bidding must show up as fee inflation ({} paid vs {} scheduled)",
            stats.fees_paid,
            stats.fees_scheduled
        );
        // The policy cap is a hard per-transaction ceiling: no canonical
        // transaction on any chain ever paid more than the cap.
        for chain in s.world.chain_ids() {
            let c = s.world.chain(chain).unwrap();
            for block in c.store().canonical_blocks() {
                for tx in &block.transactions {
                    if !tx.is_coinbase() {
                        assert!(tx.fee <= cap, "tx paid {} above the cap {cap}", tx.fee);
                    }
                }
            }
        }
        s.world.assert_state_integrity();
    }

    #[test]
    fn least_loaded_assignment_routes_around_congestion() {
        use ac3_chain::{ChainParams, TxBuilder};
        use ac3_crypto::KeyPair;

        fn scenario() -> crate::scenario::MultiSwapScenario {
            let asset_params =
                (0..2).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
            let witness_params =
                (0..2).map(|i| ChainParams::fast(&format!("witness-{i}"), 1_000)).collect();
            crate::scenario::concurrent_swaps_multi_witness(4, asset_params, witness_params, 1_000)
        }

        fn congest_first_witness(s: &mut crate::scenario::MultiSwapScenario) {
            // Pile junk (never-mineable, unfunded-input) transactions into
            // witness 0's mempool; their fee of 0 never outbids real
            // protocol traffic, but they keep the queue deep.
            let mut junk = TxBuilder::new(KeyPair::from_seed(b"spammer"), 1 << 40);
            for i in 0..50u8 {
                let input = ac3_chain::OutPoint::new(
                    ac3_chain::TxId(ac3_crypto::Hash256::digest(&[i, 0xaa])),
                    0,
                );
                let tx = junk.transfer(vec![input], vec![], 0);
                s.world.submit(s.witness_chains[0], tx).unwrap();
            }
        }

        // Round-robin ignores congestion and splits 2/2.
        let mut rr = scenario();
        congest_first_witness(&mut rr);
        let driver = Ac3wn::new(protocol_cfg());
        let d = driver.clone();
        let seeds =
            rr.seeds_with(move |swap, witness| Box::new(d.machine(swap.graph.clone(), witness)));
        let witness_chains = rr.witness_chains.clone();
        let batch = Scheduler::default().run_assigned(
            &mut rr.world,
            &mut rr.participants,
            &witness_chains,
            WitnessAssignment::RoundRobin,
            seeds,
        );
        assert_eq!(batch.committed(), 4);
        let counts = batch.witness_assignments();
        assert_eq!(counts.get(&witness_chains[0]), Some(&2));
        assert_eq!(counts.get(&witness_chains[1]), Some(&2));

        // Least-loaded sees witness 0's deep mempool and routes everything
        // to witness 1.
        let mut ll = scenario();
        congest_first_witness(&mut ll);
        let d = driver.clone();
        let seeds =
            ll.seeds_with(move |swap, witness| Box::new(d.machine(swap.graph.clone(), witness)));
        let witness_chains = ll.witness_chains.clone();
        let batch = Scheduler::default().run_assigned(
            &mut ll.world,
            &mut ll.participants,
            &witness_chains,
            WitnessAssignment::LeastLoaded,
            seeds,
        );
        assert_eq!(batch.committed(), 4);
        let counts = batch.witness_assignments();
        assert_eq!(counts.get(&witness_chains[0]), None, "congested witness receives nothing");
        assert_eq!(counts.get(&witness_chains[1]), Some(&4));
        for outcome in &batch.outcomes {
            assert_eq!(outcome.witness, Some(witness_chains[1]));
        }
    }

    #[test]
    fn least_loaded_avoids_a_base_fee_spiked_witness() {
        use ac3_chain::{BaseFeeSchedule, ChainParams};

        // Witness 0 runs an EIP-1559-like fee market; sustained full blocks
        // spike its base fee while its mempool fully drains. A depth-only
        // ranking would see two idle queues and split the batch — the
        // predicted-cost ranking must see the spiked base fee and send
        // every swap to witness 1.
        let asset_params =
            (0..2).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
        let witness_params = vec![
            ChainParams::fast("witness-0", 2).with_base_fee(BaseFeeSchedule::eip1559_like()),
            ChainParams::fast("witness-1", 1_000),
        ];
        let mut s =
            crate::scenario::concurrent_swaps_multi_witness(4, asset_params, witness_params, 5_000);
        let w0 = s.witness_chains[0];

        // Fill witness 0's two-transaction blocks for a dozen intervals:
        // the base fee climbs ~13% (min +1) per full block, and every
        // spammed transaction is mined, so the queue ends empty.
        for _ in 0..12 {
            for name in ["s0a", "s0b"] {
                let addr = s.participants.get(name).unwrap().address();
                let chain = s.world.chain(w0).unwrap();
                let fee = chain.base_fee().max(chain.mempool_fee_floor());
                let (inputs, outputs) = chain.plan_payment(&addr, &addr, 1, fee).unwrap();
                let tx = s
                    .participants
                    .get_mut(name)
                    .unwrap()
                    .builder(w0)
                    .transfer(inputs, outputs, fee);
                s.world.submit(w0, tx).unwrap();
            }
            s.world.advance(1_000);
        }
        let spiked = s.world.chain(w0).unwrap();
        assert!(spiked.base_fee() > 1, "sustained full blocks must spike the base fee");
        assert_eq!(spiked.mempool_len(), 0, "the spike is pure price, not queue depth");

        let driver = Ac3wn::new(protocol_cfg());
        let seeds = s
            .seeds_with(move |swap, witness| Box::new(driver.machine(swap.graph.clone(), witness)));
        let witness_chains = s.witness_chains.clone();
        let batch = Scheduler::default().run_assigned(
            &mut s.world,
            &mut s.participants,
            &witness_chains,
            WitnessAssignment::LeastLoaded,
            seeds,
        );
        assert_eq!(batch.committed(), 4);
        let counts = batch.witness_assignments();
        assert_eq!(counts.get(&w0), None, "base-fee-spiked witness receives zero swaps");
        assert_eq!(counts.get(&witness_chains[1]), Some(&4));
    }

    #[test]
    fn least_loaded_balances_an_idle_witness_set() {
        use ac3_chain::ChainParams;
        // With no pre-existing congestion the tie-breaks (fewest
        // assignments, then chain order) spread the batch evenly — least
        // loaded degrades to a balanced split, never to a pile-up.
        let asset_params =
            (0..2).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
        let witness_params =
            (0..2).map(|i| ChainParams::fast(&format!("witness-{i}"), 1_000)).collect();
        let mut s =
            crate::scenario::concurrent_swaps_multi_witness(4, asset_params, witness_params, 1_000);
        let driver = Ac3wn::new(protocol_cfg());
        let seeds = s
            .seeds_with(move |swap, witness| Box::new(driver.machine(swap.graph.clone(), witness)));
        let witness_chains = s.witness_chains.clone();
        let batch = Scheduler::default().run_assigned(
            &mut s.world,
            &mut s.participants,
            &witness_chains,
            WitnessAssignment::LeastLoaded,
            seeds,
        );
        assert_eq!(batch.committed(), 4);
        let counts = batch.witness_assignments();
        assert_eq!(counts.get(&witness_chains[0]), Some(&2));
        assert_eq!(counts.get(&witness_chains[1]), Some(&2));
    }

    #[test]
    fn budget_exhaustion_fails_remaining_swaps() {
        let mut s = concurrent_swaps_scenario(2, 2, &ScenarioConfig::default());
        let driver = Ac3wn::new(protocol_cfg());
        let machines =
            s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)));
        // A 1 ms budget cannot even finish registration.
        let batch = Scheduler::new(1).run(&mut s.world, &mut s.participants, machines);
        assert_eq!(batch.failed(), 2);
        assert!(!batch.outcomes.iter().any(|o| o.result.is_ok()), "nothing can finish in 1 ms");
    }
}
