//! The paper's analytical models (Section 6), reproduced as plain functions
//! so the benchmark harness can regenerate every figure and table and
//! cross-check them against measured simulations.

use serde::{Deserialize, Serialize};

/// Latency models (Section 6.1, Figures 8–10).
pub mod latency {
    /// Herlihy's single-leader protocol: `2 · Δ · Diam(D)` — a sequential
    /// deployment phase and a sequential redemption phase, each of
    /// `Diam(D)` steps of Δ.
    pub fn herlihy_deltas(diameter: u64) -> u64 {
        2 * diameter
    }

    /// AC3WN: `4 · Δ`, independent of the graph — witness registration,
    /// parallel deployment, witness state change, parallel redemption.
    pub fn ac3wn_deltas(_diameter: u64) -> u64 {
        4
    }

    /// One row of Figure 10: `(diameter, herlihy, ac3wn)` in Δ units.
    pub fn figure10_row(diameter: u64) -> (u64, u64, u64) {
        (diameter, herlihy_deltas(diameter), ac3wn_deltas(diameter))
    }

    /// The full Figure 10 series for diameters `2..=max_diameter`.
    pub fn figure10(max_diameter: u64) -> Vec<(u64, u64, u64)> {
        (2..=max_diameter).map(figure10_row).collect()
    }
}

/// Monetary cost models (Section 6.2).
pub mod cost {
    /// Herlihy's protocol fee for an AC2T with `n` contracts:
    /// `N · (fd + ffc)`.
    pub fn herlihy_fee(n: u64, deploy_fee: u64, call_fee: u64) -> u64 {
        n * (deploy_fee + call_fee)
    }

    /// AC3WN's fee: `(N + 1) · (fd + ffc)` — one extra contract (SC_w) and
    /// one extra call (the state change) on the witness network.
    pub fn ac3wn_fee(n: u64, deploy_fee: u64, call_fee: u64) -> u64 {
        (n + 1) * (deploy_fee + call_fee)
    }

    /// The relative overhead of AC3WN over Herlihy: `1 / N`.
    pub fn overhead_ratio(n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        1.0 / n as f64
    }

    /// The paper's dollar estimate of the overhead: deploying a contract
    /// with SC_w's logic plus one function call on Ethereum. The paper
    /// quotes ≈$4 at a $300 ETH/USD rate and ≈$2 at $140 (Section 6.2), and
    /// "approximately $2" + call in the conclusion. The estimate scales
    /// linearly with the ETH price.
    pub fn overhead_usd(eth_price_usd: f64) -> f64 {
        // $4 at $300/ETH ⇒ the contract costs ~0.0133 ETH to deploy + call.
        const ETH_PER_OVERHEAD: f64 = 4.0 / 300.0;
        ETH_PER_OVERHEAD * eth_price_usd
    }
}

/// Witness-network choice (Section 6.3): how deep must the decision be
/// buried so a 51% attack is uneconomical?
pub mod witness_choice {
    /// The minimum safe depth `d` satisfying `d > Va · dh / Ch`, where `Va`
    /// is the value at risk, `Ch` the hourly cost of a 51% attack on the
    /// witness network and `dh` the expected blocks per hour.
    pub fn required_depth(
        asset_value_usd: f64,
        hourly_attack_cost_usd: f64,
        blocks_per_hour: f64,
    ) -> u64 {
        if hourly_attack_cost_usd <= 0.0 {
            return u64::MAX;
        }
        let threshold = asset_value_usd * blocks_per_hour / hourly_attack_cost_usd;
        // Strictly greater than the threshold.
        (threshold.floor() as u64) + 1
    }

    /// The attack cost of sustaining a fork for `depth` blocks.
    pub fn attack_cost(depth: u64, hourly_attack_cost_usd: f64, blocks_per_hour: f64) -> f64 {
        if blocks_per_hour <= 0.0 {
            return f64::INFINITY;
        }
        depth as f64 * hourly_attack_cost_usd / blocks_per_hour
    }

    /// Whether a given depth makes the attack unprofitable.
    pub fn is_safe(
        depth: u64,
        asset_value_usd: f64,
        hourly_attack_cost_usd: f64,
        blocks_per_hour: f64,
    ) -> bool {
        attack_cost(depth, hourly_attack_cost_usd, blocks_per_hour) > asset_value_usd
    }
}

/// Cross-chain transaction throughput (Table 1 + Section 6.4).
pub mod throughput {
    /// One of the paper's Table 1 rows.
    #[derive(Debug, Clone, PartialEq)]
    pub struct ChainThroughput {
        /// Blockchain name.
        pub name: &'static str,
        /// Transactions per second.
        pub tps: u64,
    }

    /// The paper's Table 1: top-4 permissionless cryptocurrencies by market
    /// cap and their throughput.
    pub fn table1() -> Vec<ChainThroughput> {
        vec![
            ChainThroughput { name: "Bitcoin", tps: 7 },
            ChainThroughput { name: "Ethereum", tps: 25 },
            ChainThroughput { name: "Litecoin", tps: 56 },
            ChainThroughput { name: "Bitcoin Cash", tps: 61 },
        ]
    }

    /// AC2T throughput: bounded by the slowest involved chain, including
    /// the witness chain: `min(tps_i, ..., tps_w)`.
    pub fn ac2t_throughput(involved_tps: &[u64], witness_tps: u64) -> u64 {
        involved_tps.iter().copied().chain(std::iter::once(witness_tps)).min().unwrap_or(0)
    }

    /// The paper's worked example: Ethereum + Litecoin assets witnessed by
    /// Bitcoin yields 7 tps; choosing the witness among the involved chains
    /// avoids the extra bottleneck.
    pub fn section64_example() -> (u64, u64) {
        let eth_ltc = [25u64, 56];
        let witnessed_by_bitcoin = ac2t_throughput(&eth_ltc, 7);
        let witnessed_by_ethereum = ac2t_throughput(&eth_ltc, 25);
        (witnessed_by_bitcoin, witnessed_by_ethereum)
    }
}

/// A row of the Figure 10 reproduction combining the analytical model with a
/// measured simulation (filled in by the bench harness).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Graph diameter.
    pub diameter: u64,
    /// Analytical Herlihy latency in Δ.
    pub herlihy_model: u64,
    /// Analytical AC3WN latency in Δ.
    pub ac3wn_model: u64,
    /// Measured Herlihy latency in Δ (simulation).
    pub herlihy_measured: f64,
    /// Measured AC3WN latency in Δ (simulation).
    pub ac3wn_measured: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_models_match_paper_shapes() {
        assert_eq!(latency::herlihy_deltas(2), 4);
        assert_eq!(latency::herlihy_deltas(10), 20);
        assert_eq!(latency::ac3wn_deltas(2), 4);
        assert_eq!(latency::ac3wn_deltas(100), 4);
        let fig = latency::figure10(6);
        assert_eq!(fig.len(), 5);
        assert_eq!(fig[0], (2, 4, 4));
        assert_eq!(fig[4], (6, 12, 4));
    }

    #[test]
    fn crossover_is_at_diameter_two() {
        // At diameter 2 the two protocols tie; beyond that AC3WN wins.
        assert_eq!(latency::herlihy_deltas(2), latency::ac3wn_deltas(2));
        for d in 3..20 {
            assert!(latency::herlihy_deltas(d) > latency::ac3wn_deltas(d));
        }
    }

    #[test]
    fn cost_model_matches_section62() {
        // N contracts at fd + ffc each; AC3WN adds exactly one more.
        assert_eq!(cost::herlihy_fee(2, 4, 2), 12);
        assert_eq!(cost::ac3wn_fee(2, 4, 2), 18);
        assert_eq!(cost::ac3wn_fee(10, 4, 2) - cost::herlihy_fee(10, 4, 2), 6);
        assert!((cost::overhead_ratio(10) - 0.1).abs() < 1e-12);
        assert_eq!(cost::overhead_ratio(0), 0.0);
    }

    #[test]
    fn cost_in_dollars_matches_paper_quotes() {
        // ≈$4 at $300/ETH and ≈$2 (1.87) at $140/ETH.
        assert!((cost::overhead_usd(300.0) - 4.0).abs() < 1e-9);
        let at_140 = cost::overhead_usd(140.0);
        assert!(at_140 > 1.5 && at_140 < 2.5);
    }

    #[test]
    fn witness_choice_matches_papers_worked_example() {
        // Va = $1M, Ch = $300K/h, dh = 6 blocks/h ⇒ d > 20, i.e. d = 21.
        let d = witness_choice::required_depth(1_000_000.0, 300_000.0, 6.0);
        assert_eq!(d, 21);
        assert!(witness_choice::is_safe(d, 1_000_000.0, 300_000.0, 6.0));
        assert!(!witness_choice::is_safe(20, 1_000_000.0, 300_000.0, 6.0));
        // Attack cost for 20 blocks at $300K/h and 6 blocks/h is exactly $1M.
        assert!((witness_choice::attack_cost(20, 300_000.0, 6.0) - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn witness_choice_edge_cases() {
        assert_eq!(witness_choice::required_depth(0.0, 300_000.0, 6.0), 1);
        assert_eq!(witness_choice::required_depth(1.0, 0.0, 6.0), u64::MAX);
        assert_eq!(witness_choice::attack_cost(5, 300_000.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn throughput_matches_table1_and_section64() {
        let t1 = throughput::table1();
        assert_eq!(t1.iter().map(|c| c.tps).collect::<Vec<_>>(), vec![7, 25, 56, 61]);
        let (btc_witness, eth_witness) = throughput::section64_example();
        assert_eq!(btc_witness, 7, "witnessing by Bitcoin caps the AC2T at 7 tps");
        assert_eq!(
            eth_witness, 25,
            "choosing the witness among the involved chains avoids the cap"
        );
        assert_eq!(throughput::ac2t_throughput(&[], 9), 9);
    }
}
