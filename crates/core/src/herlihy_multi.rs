//! Herlihy's *multi-leader* atomic cross-chain swap protocol — the variant
//! of \[16\] that Section 5.3 of the paper credits with handling **cyclic**
//! AC2T graphs (which the single-leader protocol cannot), while still being
//! unable to express **disconnected** graphs (Figure 7b).
//!
//! The protocol generalises the single-leader construction:
//!
//! * the leader set `L` is a *feedback vertex set* of the AC2T graph —
//!   removing the leaders leaves the graph acyclic;
//! * every leader `l ∈ L` generates its own secret `s_l`; every contract is
//!   locked behind **all** the leaders' hashlocks (a
//!   [`ac3_contracts::MultiHtlcSpec`]) and can only be redeemed by
//!   presenting every preimage;
//! * deployment proceeds **sequentially** in waves of increasing directed
//!   distance from the leader set, and redemption proceeds sequentially in
//!   the reverse order, so the latency remains proportional to the depth of
//!   the wave structure (the same `O(Diam(D))` behaviour as the
//!   single-leader protocol — AC3WN's constant `4·Δ` is the contrast);
//! * timelocks still couple liveness to safety: a redeemer that crashes past
//!   its timelock loses the asset, exactly the violation the paper's
//!   Section 1 describes.
//!
//! **Modelling note.** In Herlihy's construction the leaders coordinate the
//! release of their secrets through an extra leader-level exchange. We model
//! that exchange as an off-chain step at the start of the redemption phase:
//! if every leader is available (not crashed) the secret set becomes known
//! to all leaders; the first on-chain redemption then reveals every preimage
//! to the remaining participants, as in the single-leader protocol. If any
//! leader is unavailable the exchange fails, redemption stalls, and the
//! timelock/refund path takes over. This preserves the properties the paper
//! measures (latency shape, graph coverage, crash-failure behaviour) without
//! reproducing the full leader-subprotocol message flow.
//!
//! The protocol logic lives in [`HerlihyMultiMachine`], a resumable
//! step/poll state machine (see [`crate::driver`]) that never advances the
//! simulated clock, so multi-leader complex-graph swaps can join
//! mixed-protocol [`crate::scheduler::Scheduler`] batches;
//! [`HerlihyMulti::execute`] is the single-swap [`drive`] wrapper.

use crate::actions::edge_disposition;
use crate::driver::{drive, tx_at_depth, Step, SwapMachine};
use crate::fee::{BidBook, BidChange};
use crate::graph::{SwapEdge, SwapGraph};
use crate::protocol::{
    EdgeDisposition, EdgeOutcome, ProtocolConfig, ProtocolError, ProtocolKind, SwapReport,
};
use crate::scenario::Scenario;
use ac3_chain::{Address, ChainId, ContractId, Timestamp, TxId};
use ac3_contracts::{ContractCall, ContractSpec, MultiHtlcCall, MultiHtlcSpec};
use ac3_crypto::{Hash256, Hashlock, Sha256};
use ac3_sim::{ChainApi, EventKind, ParticipantSet, Timeline};

/// The Herlihy multi-leader protocol driver.
#[derive(Debug, Clone, Default)]
pub struct HerlihyMulti {
    /// Driver configuration.
    pub config: ProtocolConfig,
}

/// Per-edge bookkeeping during a run.
#[derive(Debug, Clone)]
struct EdgeSlot {
    edge: SwapEdge,
    wave: usize,
    timelock: Timestamp,
    deploy: Option<(TxId, ContractId)>,
}

impl HerlihyMulti {
    /// Create a driver with the given configuration.
    pub fn new(config: ProtocolConfig) -> Self {
        HerlihyMulti { config }
    }

    /// Check whether the multi-leader protocol can execute `graph` and
    /// return the leader set. Cyclic graphs are fine (that is the point of
    /// the variant); disconnected graphs are still rejected because no
    /// leader set can order contracts across unrelated components.
    pub fn supports_graph(graph: &SwapGraph) -> Result<Vec<Address>, ProtocolError> {
        if !graph.is_connected() {
            return Err(ProtocolError::UnsupportedGraph(
                "multi-leader swaps cannot execute disconnected graphs (Figure 7b)".to_string(),
            ));
        }
        let mut leaders = graph.feedback_vertex_set();
        if leaders.is_empty() {
            // Acyclic graph: degenerate to a single leader — any source of
            // an edge works; pick the first for determinism.
            leaders.push(graph.edges()[0].from);
        }
        // Every edge must be reachable from the leader set, otherwise the
        // wave ordering does not protect its sender.
        let waves = graph.waves_from_set(&leaders);
        let covered: usize = waves.iter().map(|w| w.len()).sum();
        if covered != graph.contract_count() {
            return Err(ProtocolError::UnsupportedGraph(
                "some edges are unreachable from the leader set".to_string(),
            ));
        }
        Ok(leaders)
    }

    /// The per-leader secret: deterministic per (graph, leader) so runs are
    /// reproducible.
    fn leader_secret(graph_digest: &Hash256, leader: &Address) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update(b"herlihy-multi/leader-secret");
        h.update(graph_digest.as_bytes());
        h.update(&leader.to_bytes());
        h.finalize().to_vec()
    }

    /// Create a resumable state machine executing `graph` (for use under a
    /// scheduler). Fails when the graph is unsupported (disconnected, or
    /// with edges unreachable from every feedback vertex set).
    pub fn machine(&self, graph: SwapGraph) -> Result<HerlihyMultiMachine, ProtocolError> {
        let leaders = Self::supports_graph(&graph)?;
        Ok(HerlihyMultiMachine::new(self.config.clone(), graph, leaders))
    }

    /// Execute the AC2T described by the scenario's graph (single-swap
    /// wrapper around [`HerlihyMultiMachine`]).
    pub fn execute(&self, scenario: &mut Scenario) -> Result<SwapReport, ProtocolError> {
        let mut machine = self.machine(scenario.graph.clone())?;
        drive(&mut machine, &mut scenario.world, &mut scenario.participants)
    }
}

/// Phase of the multi-leader state machine.
#[derive(Debug)]
enum Phase {
    /// Nothing has happened yet; the first poll derives the per-leader
    /// secrets, the wave structure and the timelocks.
    Start,
    /// Phase A: submit the deployments of wave `k`.
    DeployWave { k: usize },
    /// Phase A: wait for wave `k`'s deployments to reach the required depth.
    AwaitWaveDeploys { k: usize, pending: Vec<(ChainId, TxId)>, deadline: Timestamp },
    /// Phase B: submit the redemptions of wave `k` (reverse order). The
    /// off-chain leader secret exchange happens on entry into the *first*
    /// redemption wave.
    RedeemWave { k: usize },
    /// Phase B: wait for wave `k`'s settlements; `(chain, txid, depth)`.
    AwaitWaveRedeems { k: usize, pending: Vec<(ChainId, TxId, u64)>, deadline: Timestamp },
    /// Phase B: nobody in wave `k` could redeem; give them one Δ.
    WaveGap { k: usize, until: Timestamp },
    /// Phase C: one round of timelock cleanup (recovered redeemers redeem,
    /// expired contracts are refunded).
    CleanupRound,
    /// Phase C: idle one Δ between cleanup rounds.
    CleanupWait { until: Timestamp },
    /// Phase C: wait for settlements submitted during cleanup to be
    /// included, so terminal dispositions are on-chain.
    AwaitCleanupInclusion { pending: Vec<(ChainId, TxId)>, deadline: Timestamp },
    /// Terminal.
    Finished,
}

/// The Herlihy multi-leader protocol as a resumable state machine (see
/// [`crate::driver`]). Structure mirrors [`crate::herlihy::HerlihyMachine`],
/// with two multi-leader differences: contracts are [`MultiHtlcSpec`]s
/// locked behind *every* leader's hashlock, and redemption is gated on the
/// off-chain leader secret exchange (all leaders available when phase A
/// completes) instead of on a single leader's knowledge.
#[derive(Debug)]
pub struct HerlihyMultiMachine {
    config: ProtocolConfig,
    graph: SwapGraph,
    leaders: Vec<Address>,
    phase: Phase,
    timeline: Timeline,
    started_at: Timestamp,
    delta: u64,
    wait_cap: u64,
    deployments: u64,
    calls: u64,
    fees: u64,
    fees_scheduled: u64,
    fee_rebids: u64,
    /// Live fee bids, escalated each poll under the configured policy.
    bids: BidBook,
    secrets: Vec<Vec<u8>>,
    hashlocks: Vec<Hash256>,
    slots: Vec<EdgeSlot>,
    waves_len: usize,
    /// Whether the off-chain leader exchange succeeded (evaluated once,
    /// when phase A completes): leaders know every secret iff it did.
    exchange_succeeded: bool,
    /// Whether some on-chain redemption has published every preimage.
    secrets_public: bool,
    deployment_failed: bool,
    cleanup_deadline: Timestamp,
    cleanup_pending: Vec<(ChainId, TxId)>,
    finished_at: Option<Timestamp>,
    report: Option<SwapReport>,
}

impl HerlihyMultiMachine {
    fn new(config: ProtocolConfig, graph: SwapGraph, leaders: Vec<Address>) -> Self {
        let bids = BidBook::new(config.fee_policy);
        HerlihyMultiMachine {
            config,
            graph,
            leaders,
            phase: Phase::Start,
            timeline: Timeline::new(),
            started_at: 0,
            delta: 0,
            wait_cap: 0,
            deployments: 0,
            calls: 0,
            fees: 0,
            fees_scheduled: 0,
            fee_rebids: 0,
            bids,
            secrets: Vec::new(),
            hashlocks: Vec::new(),
            slots: Vec::new(),
            waves_len: 0,
            exchange_succeeded: false,
            secrets_public: false,
            deployment_failed: false,
            cleanup_deadline: 0,
            cleanup_pending: Vec::new(),
            finished_at: None,
            report: None,
        }
    }

    fn record(&mut self, world: &mut dyn ChainApi, at: Timestamp, kind: EventKind) {
        self.timeline.record(at, kind.clone());
        world.record(at, kind);
    }

    fn poll_step(&self, world: &dyn ChainApi) -> Step {
        Step::Waiting { not_before: world.now() + world.min_block_interval_ms() }
    }

    /// Record the publication events for every deployed contract (once, at
    /// the end of phase A — successful or not).
    fn record_published(&mut self, world: &mut dyn ChainApi) {
        let now = world.now();
        for i in 0..self.slots.len() {
            let slot = self.slots[i].clone();
            if let Some((_, contract)) = slot.deploy {
                self.record(
                    world,
                    now,
                    EventKind::ContractPublished { chain: slot.edge.chain, contract },
                );
            }
        }
    }

    /// The off-chain leader secret exchange, evaluated once when phase A
    /// completes: it succeeds iff every leader is currently available.
    fn exchange_secrets(&mut self, world: &dyn ChainApi, participants: &ParticipantSet) {
        let now = world.now();
        self.exchange_succeeded = !self.deployment_failed
            && self
                .leaders
                .iter()
                .all(|l| participants.by_address(l).is_some_and(|p| p.is_available(now)));
    }

    /// Whether `who` can present every preimage: a leader after a successful
    /// exchange, or anyone once the preimages are public on some chain
    /// (`public` is the caller's snapshot of [`Self::secrets_public`]).
    fn knows_secrets(&self, who: &Address, public: bool) -> bool {
        (self.exchange_succeeded && self.leaders.contains(who)) || public
    }

    /// Escalate stuck bids (replace-by-fee) and rewrite every stored copy
    /// of a superseded transaction/contract id.
    fn poll_bids(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<(), ProtocolError> {
        let changes = self.bids.poll(world, participants)?;
        for change in changes {
            self.apply_bid_change(&change);
        }
        Ok(())
    }

    fn apply_bid_change(&mut self, change: &BidChange) {
        change.apply_accounting(&mut self.fees, &mut self.fee_rebids);
        let (old, new) = (change.old_txid, change.new_txid);
        if change.deploy {
            for slot in &mut self.slots {
                if let Some(deploy) = &mut slot.deploy {
                    if deploy.0 == old {
                        *deploy = (new, change.new_contract());
                    }
                }
            }
        }
        for entry in self.cleanup_pending.iter_mut() {
            change.rewrite_txid(&mut entry.1);
        }
        match &mut self.phase {
            Phase::AwaitWaveDeploys { pending, .. }
            | Phase::AwaitCleanupInclusion { pending, .. } => {
                for entry in pending.iter_mut() {
                    if entry.1 == old {
                        entry.1 = new;
                    }
                }
            }
            Phase::AwaitWaveRedeems { pending, .. } => {
                for entry in pending.iter_mut() {
                    if entry.1 == old {
                        entry.1 = new;
                    }
                }
            }
            _ => {}
        }
    }

    /// Enter phase C: the cleanup loop runs until every contract is settled
    /// or two Δ past the last timelock.
    fn enter_cleanup(&mut self) {
        self.cleanup_deadline =
            self.slots.iter().map(|s| s.timelock).max().unwrap_or(self.started_at) + 2 * self.delta;
        self.phase = Phase::CleanupRound;
    }

    fn all_settled(&self, world: &dyn ChainApi) -> bool {
        self.slots.iter().all(|s| {
            edge_disposition(world, s.edge.chain, s.deploy.map(|(_, c)| c))
                != EdgeDisposition::Locked
        })
    }

    /// Submit redemption attempts for `wave` (phase B) or every recoverable
    /// contract (`wave == None`, phase C). Returns `(chain, txid)` pairs.
    ///
    /// During phase B the secret set counts as public only if a *previous*
    /// wave's redemption published it — recipients within one wave cannot
    /// learn the preimages from each other mid-wave. During cleanup any
    /// on-chain revelation (including one made earlier in the same pass)
    /// suffices.
    fn attempt_redeems(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
        wave: Option<usize>,
    ) -> Result<Vec<(ChainId, TxId)>, ProtocolError> {
        let public_at_entry = self.secrets_public;
        let mut submitted = Vec::new();
        for i in 0..self.slots.len() {
            let slot = self.slots[i].clone();
            if wave.is_some_and(|k| slot.wave != k) {
                continue;
            }
            let Some((_, contract)) = slot.deploy else { continue };
            if wave.is_none()
                && edge_disposition(world, slot.edge.chain, Some(contract))
                    != EdgeDisposition::Locked
            {
                continue;
            }
            let public = if wave.is_some() { public_at_entry } else { self.secrets_public };
            if !self.knows_secrets(&slot.edge.to, public) {
                continue;
            }
            if world.now() >= slot.timelock {
                continue; // too late to redeem safely
            }
            let call =
                ContractCall::MultiHtlc(MultiHtlcCall::Redeem { preimages: self.secrets.clone() });
            if let Some((txid, fee)) = self.bids.submit_call(
                world,
                participants,
                &slot.edge.to,
                slot.edge.chain,
                contract,
                &call,
            )? {
                self.calls += 1;
                self.fees += fee;
                self.fees_scheduled += world.chain(slot.edge.chain)?.params().call_fee;
                self.secrets_public = true;
                let now = world.now();
                self.record(
                    world,
                    now,
                    EventKind::ContractRedeemed { chain: slot.edge.chain, contract },
                );
                submitted.push((slot.edge.chain, txid));
            }
        }
        Ok(submitted)
    }

    /// Refund every published contract whose timelock has expired, on behalf
    /// of whichever senders are currently available.
    fn refund_expired(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Vec<(ChainId, TxId)>, ProtocolError> {
        let now = world.now();
        let mut submitted = Vec::new();
        for i in 0..self.slots.len() {
            let slot = self.slots[i].clone();
            let Some((_, contract)) = slot.deploy else { continue };
            if now < slot.timelock {
                continue;
            }
            if edge_disposition(world, slot.edge.chain, Some(contract)) != EdgeDisposition::Locked {
                continue;
            }
            let call = ContractCall::MultiHtlc(MultiHtlcCall::Refund);
            if let Some((txid, fee)) = self.bids.submit_call(
                world,
                participants,
                &slot.edge.from,
                slot.edge.chain,
                contract,
                &call,
            )? {
                self.calls += 1;
                self.fees += fee;
                self.fees_scheduled += world.chain(slot.edge.chain)?.params().call_fee;
                let at = world.now();
                self.record(
                    world,
                    at,
                    EventKind::ContractRefunded { chain: slot.edge.chain, contract },
                );
                submitted.push((slot.edge.chain, txid));
            }
        }
        Ok(submitted)
    }

    /// Move to the next (lower) redemption wave, or into cleanup after the
    /// last one.
    fn next_redeem_phase(&mut self, world: &dyn ChainApi, k: usize) {
        if k == 0 {
            self.finished_at = Some(world.now());
            self.enter_cleanup();
        } else {
            self.phase = Phase::RedeemWave { k: k - 1 };
        }
    }

    fn finish(&mut self, world: &dyn ChainApi) -> Step {
        let outcomes: Vec<EdgeOutcome> = self
            .slots
            .iter()
            .map(|s| {
                let contract = s.deploy.map(|(_, c)| c);
                EdgeOutcome {
                    edge: s.edge,
                    contract,
                    disposition: edge_disposition(world, s.edge.chain, contract),
                }
            })
            .collect();
        let finished_at = match self.finished_at {
            Some(at) if !self.deployment_failed => at,
            _ => world.now(),
        };
        let report = SwapReport {
            protocol: ProtocolKind::HerlihyMulti,
            decision: None,
            edges: outcomes,
            started_at: self.started_at,
            finished_at,
            delta_ms: self.delta,
            deployments: self.deployments,
            calls: self.calls,
            fees_paid: self.fees,
            fees_scheduled: self.fees_scheduled,
            fee_rebids: self.fee_rebids,
            timeline: self.timeline.clone(),
        };
        self.report = Some(report.clone());
        self.phase = Phase::Finished;
        Step::Done(Box::new(report))
    }
}

impl SwapMachine for HerlihyMultiMachine {
    fn footprint(&self) -> crate::driver::MachineFootprint {
        // The leader set is a subset of the graph's participants, so the
        // graph alone bounds every chain and actor the machine touches.
        crate::driver::MachineFootprint {
            chains: self.graph.chains(),
            actors: self.graph.participants().to_vec(),
        }
    }

    fn poll(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Step, ProtocolError> {
        if !matches!(self.phase, Phase::Finished) {
            // Fee market: re-bid any submission stuck behind higher bids
            // before doing phase work against possibly-stale ids.
            self.poll_bids(world, participants)?;
        }
        loop {
            match &self.phase {
                Phase::Start => {
                    let now = world.now();
                    self.started_at = now;
                    self.delta = world.delta_ms();
                    self.wait_cap = self.delta * self.config.wait_cap_deltas;
                    self.record(world, now, EventKind::GraphSigned);

                    // Per-leader secrets and hashlocks: every contract is
                    // locked behind all of them.
                    let graph_digest = self.graph.digest();
                    self.secrets = self
                        .leaders
                        .iter()
                        .map(|l| HerlihyMulti::leader_secret(&graph_digest, l))
                        .collect();
                    self.hashlocks =
                        self.secrets.iter().map(|s| Hashlock::from_secret(s).lock).collect();

                    // Wave structure and timelocks mirror the single-leader
                    // machine: wave k deploys at ~k·Δ and redeems at
                    // ~(2W - k)·Δ, so earlier waves get strictly later
                    // timelocks.
                    let waves = self.graph.waves_from_set(&self.leaders);
                    let wave_count = waves.len() as u64;
                    self.waves_len = waves.len();
                    let mut slots = Vec::with_capacity(self.graph.contract_count());
                    for (k, wave) in waves.iter().enumerate() {
                        for e in wave {
                            slots.push(EdgeSlot {
                                edge: *e,
                                wave: k,
                                timelock: now + self.delta * (2 * wave_count - k as u64 + 2),
                                deploy: None,
                            });
                        }
                    }
                    self.slots = slots;
                    self.phase = Phase::DeployWave { k: 0 };
                }
                Phase::DeployWave { k } => {
                    let k = *k;
                    let mut pending = Vec::new();
                    let mut failed = false;
                    for i in 0..self.slots.len() {
                        if self.slots[i].wave != k {
                            continue;
                        }
                        let slot = self.slots[i].clone();
                        let spec = ContractSpec::MultiHtlc(MultiHtlcSpec {
                            recipient: slot.edge.to,
                            hashlocks: self.hashlocks.clone(),
                            timelock: slot.timelock,
                        });
                        match self.bids.submit_deploy(
                            world,
                            participants,
                            &slot.edge.from,
                            slot.edge.chain,
                            &spec,
                            slot.edge.amount,
                        )? {
                            Some((txid, contract, fee)) => {
                                self.slots[i].deploy = Some((txid, contract));
                                self.deployments += 1;
                                self.fees += fee;
                                self.fees_scheduled +=
                                    world.chain(slot.edge.chain)?.params().deploy_fee;
                                pending.push((slot.edge.chain, txid));
                                let now = world.now();
                                self.record(
                                    world,
                                    now,
                                    EventKind::ContractSubmitted {
                                        chain: slot.edge.chain,
                                        contract,
                                    },
                                );
                            }
                            None => {
                                // A participant declined or crashed: later
                                // waves do not deploy (their senders are no
                                // longer protected).
                                failed = true;
                                break;
                            }
                        }
                    }
                    if failed {
                        self.deployment_failed = true;
                        self.record_published(world);
                        self.enter_cleanup();
                    } else {
                        // Sequentiality: the next wave only starts once this
                        // one is publicly recognised.
                        self.phase = Phase::AwaitWaveDeploys {
                            k,
                            pending,
                            deadline: world.now() + self.wait_cap,
                        };
                    }
                }
                Phase::AwaitWaveDeploys { k, pending, deadline } => {
                    let (k, deadline) = (*k, *deadline);
                    let all_deep = pending.iter().all(|(chain, txid)| {
                        tx_at_depth(world, *chain, txid, self.config.deployment_depth)
                    });
                    if all_deep {
                        if k + 1 < self.waves_len {
                            self.phase = Phase::DeployWave { k: k + 1 };
                        } else {
                            self.record_published(world);
                            self.exchange_secrets(world, participants);
                            self.finished_at = Some(world.now());
                            self.phase = Phase::RedeemWave { k: self.waves_len - 1 };
                        }
                    } else if world.now() >= deadline {
                        self.deployment_failed = true;
                        self.record_published(world);
                        self.enter_cleanup();
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::RedeemWave { k } => {
                    let k = *k;
                    // Settle any contract whose timelock has already expired
                    // (rational senders refund as soon as they can).
                    let refunds = self.refund_expired(world, participants)?;
                    let redeems = self.attempt_redeems(world, participants, Some(k))?;
                    if !redeems.is_empty() {
                        let mut pending: Vec<(ChainId, TxId, u64)> = Vec::new();
                        for (chain, txid) in redeems {
                            let depth = world.chain(chain)?.params().stable_depth;
                            pending.push((chain, txid, depth));
                        }
                        // Refunds only need inclusion, not burial.
                        for (chain, txid) in refunds {
                            pending.push((chain, txid, 0));
                        }
                        self.phase = Phase::AwaitWaveRedeems {
                            k,
                            pending,
                            deadline: world.now() + self.wait_cap,
                        };
                    } else if self.slots.iter().any(|s| s.wave == k && s.deploy.is_some()) {
                        // Nobody in this wave could redeem (crashed or the
                        // preimages are not yet public); give them one Δ
                        // before moving on.
                        self.phase = Phase::WaveGap { k, until: world.now() + self.delta };
                    } else {
                        self.next_redeem_phase(world, k);
                    }
                }
                Phase::AwaitWaveRedeems { k, pending, deadline } => {
                    let (k, deadline) = (*k, *deadline);
                    let all_done = pending
                        .iter()
                        .all(|(chain, txid, depth)| tx_at_depth(world, *chain, txid, *depth));
                    if all_done || world.now() >= deadline {
                        self.next_redeem_phase(world, k);
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::WaveGap { k, until } => {
                    let (k, until) = (*k, *until);
                    if world.now() >= until {
                        self.next_redeem_phase(world, k);
                    } else {
                        return Ok(Step::Waiting { not_before: until });
                    }
                }
                Phase::CleanupRound => {
                    // Phase C: timelock cleanup. Crashed redeemers may
                    // recover in time; once a timelock expires the sender
                    // refunds — this is where the atomicity violation of the
                    // baselines materialises.
                    if self.all_settled(world) || world.now() >= self.cleanup_deadline {
                        let pending: Vec<(ChainId, TxId)> = self
                            .cleanup_pending
                            .iter()
                            .filter(|(chain, txid)| !tx_at_depth(world, *chain, txid, 0))
                            .copied()
                            .collect();
                        if pending.is_empty() {
                            return Ok(self.finish(world));
                        }
                        self.phase = Phase::AwaitCleanupInclusion {
                            pending,
                            deadline: world.now() + 2 * self.delta,
                        };
                    } else {
                        // Recovered redeemers still within their window
                        // redeem, and expired contracts get refunded by
                        // their senders.
                        let redeems = self.attempt_redeems(world, participants, None)?;
                        let refunds = self.refund_expired(world, participants)?;
                        self.cleanup_pending.extend(redeems);
                        self.cleanup_pending.extend(refunds);
                        self.phase = Phase::CleanupWait { until: world.now() + self.delta };
                    }
                }
                Phase::CleanupWait { until } => {
                    let until = *until;
                    if world.now() >= until {
                        self.phase = Phase::CleanupRound;
                    } else {
                        return Ok(Step::Waiting { not_before: until });
                    }
                }
                Phase::AwaitCleanupInclusion { pending, deadline } => {
                    let deadline = *deadline;
                    let all_included =
                        pending.iter().all(|(chain, txid)| tx_at_depth(world, *chain, txid, 0));
                    if all_included || world.now() >= deadline {
                        return Ok(self.finish(world));
                    }
                    return Ok(self.poll_step(world));
                }
                Phase::Finished => {
                    if let Some(report) = &self.report {
                        return Ok(Step::Done(Box::new(report.clone())));
                    }
                    return Ok(self.finish(world));
                }
            }
        }
    }

    fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Start => "start",
            Phase::DeployWave { .. } => "deploy-wave",
            Phase::AwaitWaveDeploys { .. } => "await-wave-deploys",
            Phase::RedeemWave { .. } => "redeem-wave",
            Phase::AwaitWaveRedeems { .. } => "await-wave-redeems",
            Phase::WaveGap { .. } => "wave-gap",
            Phase::CleanupRound => "cleanup-round",
            Phase::CleanupWait { .. } => "cleanup-wait",
            Phase::AwaitCleanupInclusion { .. } => "cleanup-inclusion",
            Phase::Finished => "finished",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AtomicityVerdict;
    use crate::scenario::{
        custom_scenario, figure7a_scenario, figure7b_scenario, ring_scenario, two_party_scenario,
        ScenarioConfig,
    };
    use ac3_sim::CrashWindow;

    fn driver() -> HerlihyMulti {
        HerlihyMulti::new(ProtocolConfig { deployment_depth: 3, ..Default::default() })
    }

    #[test]
    fn two_party_swap_commits() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let report = driver().execute(&mut s).unwrap();
        assert_eq!(report.protocol, ProtocolKind::HerlihyMulti);
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "{}", report.summary());
        assert_eq!(report.deployments, 2);
        assert_eq!(report.calls, 2);
    }

    #[test]
    fn cyclic_figure7a_commits_under_multi_leader() {
        // The single-leader protocol can also execute a plain 3-cycle, but
        // the multi-leader variant is the one the paper credits with cyclic
        // graphs in general; check it works here.
        let mut s = figure7a_scenario(&ScenarioConfig::default());
        let report = driver().execute(&mut s).unwrap();
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "{}", report.summary());
    }

    #[test]
    fn cyclic_graph_without_single_leader_commits() {
        // A graph where removing any single vertex leaves a residual cycle —
        // the single-leader protocol rejects it, the multi-leader one
        // executes it. Two vertex-disjoint 2-cycles joined by a bridge edge:
        // A⇄B, C⇄D, plus B→C to connect them.
        let names = ["a", "b", "c", "d"];
        let edges = [(0, 1, 10), (1, 0, 20), (2, 3, 30), (3, 2, 40), (1, 2, 50)];
        let mut s = custom_scenario(&names, &edges, &ScenarioConfig::default());
        assert!(
            crate::herlihy::Herlihy::supports_graph(&s.graph).is_err(),
            "single-leader should reject this graph"
        );
        let report = driver().execute(&mut s).unwrap();
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "{}", report.summary());
        assert_eq!(report.edges.len(), 5);
    }

    #[test]
    fn disconnected_graph_is_still_unsupported() {
        let mut s = figure7b_scenario(&ScenarioConfig::default());
        let err = driver().execute(&mut s).unwrap_err();
        assert!(matches!(err, ProtocolError::UnsupportedGraph(_)));
        // The machine constructor rejects the graph the same way.
        assert!(driver().machine(s.graph.clone()).is_err());
    }

    #[test]
    fn latency_grows_with_ring_size() {
        let mut lat2 = 0.0;
        let mut lat5 = 0.0;
        for (n, lat) in [(2usize, &mut lat2), (5usize, &mut lat5)] {
            let mut s = ring_scenario(n, 10, &ScenarioConfig::default());
            let report = driver().execute(&mut s).unwrap();
            assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "ring {n}");
            *lat = report.latency_in_deltas();
        }
        assert!(lat5 > lat2, "multi-leader latency should grow with the wave depth");
    }

    #[test]
    fn missing_counterparty_leads_to_refund_not_loss() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        // Whoever is not in the leader set crashes before deploying.
        let leaders = HerlihyMulti::supports_graph(&s.graph).unwrap();
        let non_leader_name = ["alice", "bob"]
            .iter()
            .find(|n| {
                let addr = s.participants.get(n).unwrap().address();
                !leaders.contains(&addr)
            })
            .copied()
            .unwrap_or("bob");
        s.participants.get_mut(non_leader_name).unwrap().schedule_crash(CrashWindow::permanent(0));
        let report = driver().execute(&mut s).unwrap();
        assert!(report.is_atomic(), "{}", report.verdict());
    }

    #[test]
    fn crash_past_timelock_still_violates_atomicity() {
        // The multi-leader variant inherits the timelock flaw: a redeemer
        // crashed past its timelock loses the asset.
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let leaders = HerlihyMulti::supports_graph(&s.graph).unwrap();
        // Crash the non-leader from just after the leaders' redemption until
        // far past every timelock.
        let non_leader_name = ["alice", "bob"]
            .iter()
            .find(|n| {
                let addr = s.participants.get(n).unwrap().address();
                !leaders.contains(&addr)
            })
            .copied()
            .unwrap();
        s.participants
            .get_mut(non_leader_name)
            .unwrap()
            .schedule_crash(CrashWindow { from: 9_000, until: 600_000 });
        let report = driver().execute(&mut s).unwrap();
        assert!(
            !report.is_atomic(),
            "expected an atomicity violation, got {} ({})",
            report.verdict(),
            report.summary()
        );
    }

    #[test]
    fn crashed_leader_fails_the_exchange_and_aborts() {
        // If a leader is unavailable when phase A completes, the off-chain
        // secret exchange fails: nobody can redeem, every contract times out
        // and refunds — an atomic abort, not a loss.
        let mut s = figure7a_scenario(&ScenarioConfig::default());
        let leaders = HerlihyMulti::supports_graph(&s.graph).unwrap();
        let leader_name = ["a", "b", "c"]
            .iter()
            .find(|n| leaders.contains(&s.participants.get(n).unwrap().address()))
            .copied()
            .expect("a 3-cycle has at least one leader");
        // Crash the leader after its wave-0 deployment (t = 0) but across the
        // instant phase A completes (~3 waves × ~4Δ = 12 s), so the exchange
        // fails; recover before the leader's own timelock (8Δ = 32 s) so its
        // contract refunds cleanly instead of staying locked.
        s.participants
            .get_mut(leader_name)
            .unwrap()
            .schedule_crash(CrashWindow { from: 1_000, until: 25_000 });
        let report = driver().execute(&mut s).unwrap();
        assert!(report.is_atomic(), "{}: {}", report.verdict(), report.summary());
        assert!(
            report.edges.iter().all(|e| e.disposition != EdgeDisposition::Redeemed),
            "no contract may be redeemed when the exchange fails: {}",
            report.summary()
        );
    }
}
