//! Herlihy's *multi-leader* atomic cross-chain swap protocol — the variant
//! of \[16\] that Section 5.3 of the paper credits with handling **cyclic**
//! AC2T graphs (which the single-leader protocol cannot), while still being
//! unable to express **disconnected** graphs (Figure 7b).
//!
//! The protocol generalises the single-leader construction:
//!
//! * the leader set `L` is a *feedback vertex set* of the AC2T graph —
//!   removing the leaders leaves the graph acyclic;
//! * every leader `l ∈ L` generates its own secret `s_l`; every contract is
//!   locked behind **all** the leaders' hashlocks (a
//!   [`ac3_contracts::MultiHtlcSpec`]) and can only be redeemed by
//!   presenting every preimage;
//! * deployment proceeds **sequentially** in waves of increasing directed
//!   distance from the leader set, and redemption proceeds sequentially in
//!   the reverse order, so the latency remains proportional to the depth of
//!   the wave structure (the same `O(Diam(D))` behaviour as the
//!   single-leader protocol — AC3WN's constant `4·Δ` is the contrast);
//! * timelocks still couple liveness to safety: a redeemer that crashes past
//!   its timelock loses the asset, exactly the violation the paper's
//!   Section 1 describes.
//!
//! **Modelling note.** In Herlihy's construction the leaders coordinate the
//! release of their secrets through an extra leader-level exchange. We model
//! that exchange as an off-chain step at the start of the redemption phase:
//! if every leader is available (not crashed) the secret set becomes known
//! to all leaders; the first on-chain redemption then reveals every preimage
//! to the remaining participants, as in the single-leader protocol. If any
//! leader is unavailable the exchange fails, redemption stalls, and the
//! timelock/refund path takes over. This preserves the properties the paper
//! measures (latency shape, graph coverage, crash-failure behaviour) without
//! reproducing the full leader-subprotocol message flow.

use crate::actions::{call_contract, deploy_contract, edge_disposition};
use crate::graph::{SwapEdge, SwapGraph};
use crate::protocol::{
    EdgeDisposition, EdgeOutcome, ProtocolConfig, ProtocolError, ProtocolKind, SwapReport,
};
use crate::scenario::Scenario;
use ac3_chain::{Address, ContractId, Timestamp, TxId};
use ac3_contracts::{ContractCall, ContractSpec, MultiHtlcCall, MultiHtlcSpec};
use ac3_crypto::{Hash256, Hashlock, Sha256};
use ac3_sim::EventKind;

/// The Herlihy multi-leader protocol driver.
#[derive(Debug, Clone, Default)]
pub struct HerlihyMulti {
    /// Driver configuration.
    pub config: ProtocolConfig,
}

/// Per-edge bookkeeping during a run.
#[derive(Debug, Clone)]
struct EdgeSlot {
    edge: SwapEdge,
    wave: usize,
    timelock: Timestamp,
    deploy: Option<(TxId, ContractId)>,
}

impl HerlihyMulti {
    /// Create a driver with the given configuration.
    pub fn new(config: ProtocolConfig) -> Self {
        HerlihyMulti { config }
    }

    /// Check whether the multi-leader protocol can execute `graph` and
    /// return the leader set. Cyclic graphs are fine (that is the point of
    /// the variant); disconnected graphs are still rejected because no
    /// leader set can order contracts across unrelated components.
    pub fn supports_graph(graph: &SwapGraph) -> Result<Vec<Address>, ProtocolError> {
        if !graph.is_connected() {
            return Err(ProtocolError::UnsupportedGraph(
                "multi-leader swaps cannot execute disconnected graphs (Figure 7b)".to_string(),
            ));
        }
        let mut leaders = graph.feedback_vertex_set();
        if leaders.is_empty() {
            // Acyclic graph: degenerate to a single leader — any source of
            // an edge works; pick the first for determinism.
            leaders.push(graph.edges()[0].from);
        }
        // Every edge must be reachable from the leader set, otherwise the
        // wave ordering does not protect its sender.
        let waves = graph.waves_from_set(&leaders);
        let covered: usize = waves.iter().map(|w| w.len()).sum();
        if covered != graph.contract_count() {
            return Err(ProtocolError::UnsupportedGraph(
                "some edges are unreachable from the leader set".to_string(),
            ));
        }
        Ok(leaders)
    }

    /// The per-leader secret: deterministic per (graph, leader) so runs are
    /// reproducible.
    fn leader_secret(graph_digest: &Hash256, leader: &Address) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update(b"herlihy-multi/leader-secret");
        h.update(graph_digest.as_bytes());
        h.update(&leader.to_bytes());
        h.finalize().to_vec()
    }

    /// Execute the AC2T described by the scenario's graph.
    pub fn execute(&self, scenario: &mut Scenario) -> Result<SwapReport, ProtocolError> {
        let cfg = &self.config;
        let delta = scenario.world.delta_ms();
        let wait_cap = delta * cfg.wait_cap_deltas;
        let started_at = scenario.world.now();
        let mut calls = 0u64;
        let mut deployments = 0u64;
        let mut fees = 0u64;

        let leaders = Self::supports_graph(&scenario.graph)?;
        scenario.world.timeline.record(started_at, EventKind::GraphSigned);

        let graph_digest = scenario.graph.digest();
        let secrets: Vec<Vec<u8>> =
            leaders.iter().map(|l| Self::leader_secret(&graph_digest, l)).collect();
        let hashlocks: Vec<Hash256> =
            secrets.iter().map(|s| Hashlock::from_secret(s).lock).collect();

        // Wave structure and timelocks mirror the single-leader driver: wave
        // k deploys at ~k·Δ and redeems at ~(2W - k)·Δ, so earlier waves get
        // strictly later timelocks.
        let waves = scenario.graph.waves_from_set(&leaders);
        let wave_count = waves.len() as u64;
        let mut slots: Vec<EdgeSlot> = Vec::with_capacity(scenario.graph.contract_count());
        for (k, wave) in waves.iter().enumerate() {
            for e in wave {
                slots.push(EdgeSlot {
                    edge: *e,
                    wave: k,
                    timelock: started_at + delta * (2 * wave_count - k as u64 + 2),
                    deploy: None,
                });
            }
        }

        // ------------------------------------------------------------------
        // Phase A: sequential deployment, wave by wave.
        // ------------------------------------------------------------------
        let mut deployment_failed = false;
        'waves: for k in 0..waves.len() {
            let mut wave_deploys: Vec<(usize, TxId)> = Vec::new();
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.wave != k {
                    continue;
                }
                let spec = ContractSpec::MultiHtlc(MultiHtlcSpec {
                    recipient: slot.edge.to,
                    hashlocks: hashlocks.clone(),
                    timelock: slot.timelock,
                });
                match deploy_contract(
                    &mut scenario.world,
                    &mut scenario.participants,
                    &slot.edge.from,
                    slot.edge.chain,
                    &spec,
                    slot.edge.amount,
                )? {
                    Some((txid, contract)) => {
                        slot.deploy = Some((txid, contract));
                        deployments += 1;
                        fees += scenario.world.chain(slot.edge.chain)?.params().deploy_fee;
                        wave_deploys.push((i, txid));
                        scenario.world.timeline.record(
                            scenario.world.now(),
                            EventKind::ContractSubmitted { chain: slot.edge.chain, contract },
                        );
                    }
                    None => {
                        deployment_failed = true;
                        break 'waves;
                    }
                }
            }
            let depth = cfg.deployment_depth;
            let wave_txs: Vec<(ac3_chain::ChainId, TxId)> =
                wave_deploys.iter().map(|(i, txid)| (slots[*i].edge.chain, *txid)).collect();
            if scenario
                .world
                .advance_until("wave deployments to stabilise", wait_cap, move |w| {
                    wave_txs.iter().all(|(chain, txid)| {
                        w.chain(*chain)
                            .ok()
                            .and_then(|c| c.tx_depth(txid))
                            .is_some_and(|d| d >= depth)
                    })
                })
                .is_err()
            {
                deployment_failed = true;
                break;
            }
        }
        for slot in &slots {
            if let Some((_, contract)) = slot.deploy {
                scenario.world.timeline.record(
                    scenario.world.now(),
                    EventKind::ContractPublished { chain: slot.edge.chain, contract },
                );
            }
        }

        // ------------------------------------------------------------------
        // Phase B: the off-chain leader secret exchange, then sequential
        // redemption in reverse wave order.
        // ------------------------------------------------------------------
        let now = scenario.world.now();
        let exchange_succeeded = !deployment_failed
            && leaders
                .iter()
                .all(|l| scenario.participants.by_address(l).is_some_and(|p| p.is_available(now)));
        let mut secrets_public = false;
        let mut finished_at = scenario.world.now();
        if !deployment_failed {
            for k in (0..waves.len()).rev() {
                self.refund_expired(scenario, &mut slots, &mut calls, &mut fees)?;

                let mut wave_redeems: Vec<(ac3_chain::ChainId, TxId)> = Vec::new();
                for slot in slots.iter().filter(|s| s.wave == k) {
                    let Some((_, contract)) = slot.deploy else { continue };
                    // A redeemer knows all the secrets if it is a leader
                    // after a successful exchange, or once the preimages are
                    // public on some chain.
                    let knows_secrets =
                        (exchange_succeeded && leaders.contains(&slot.edge.to)) || secrets_public;
                    if !knows_secrets {
                        continue;
                    }
                    if scenario.world.now() >= slot.timelock {
                        continue; // too late to redeem safely
                    }
                    let call = ContractCall::MultiHtlc(MultiHtlcCall::Redeem {
                        preimages: secrets.clone(),
                    });
                    if let Some(txid) = call_contract(
                        &mut scenario.world,
                        &mut scenario.participants,
                        &slot.edge.to,
                        slot.edge.chain,
                        contract,
                        &call,
                    )? {
                        calls += 1;
                        fees += scenario.world.chain(slot.edge.chain)?.params().call_fee;
                        wave_redeems.push((slot.edge.chain, txid));
                        scenario.world.timeline.record(
                            scenario.world.now(),
                            EventKind::ContractRedeemed { chain: slot.edge.chain, contract },
                        );
                    }
                }
                if !wave_redeems.is_empty() {
                    secrets_public = true;
                    let pending = wave_redeems.clone();
                    let _ = scenario.world.advance_until(
                        "wave redemptions to stabilise",
                        wait_cap,
                        move |w| {
                            pending.iter().all(|(chain, txid)| {
                                w.chain(*chain).ok().and_then(|c| c.tx_depth(txid)).is_some_and(
                                    |d| {
                                        d >= w
                                            .chain(*chain)
                                            .map(|c| c.params().stable_depth)
                                            .unwrap_or(0)
                                    },
                                )
                            })
                        },
                    );
                } else if slots.iter().any(|s| s.wave == k && s.deploy.is_some()) {
                    scenario.world.advance(delta);
                }
            }
            finished_at = scenario.world.now();
        }

        // ------------------------------------------------------------------
        // Phase C: timelock cleanup, identical in spirit to the single-leader
        // driver — recovered redeemers may still make their window, expired
        // contracts are refunded by their senders.
        // ------------------------------------------------------------------
        let max_timelock = slots.iter().map(|s| s.timelock).max().unwrap_or(started_at);
        while scenario.world.now() < max_timelock + 2 * delta {
            let all_settled = slots.iter().all(|s| {
                edge_disposition(&scenario.world, s.edge.chain, s.deploy.map(|(_, c)| c))
                    != EdgeDisposition::Locked
            });
            if all_settled {
                break;
            }
            for slot in slots.clone() {
                let Some((_, contract)) = slot.deploy else { continue };
                if edge_disposition(&scenario.world, slot.edge.chain, Some(contract))
                    != EdgeDisposition::Locked
                {
                    continue;
                }
                let knows_secrets =
                    (exchange_succeeded && leaders.contains(&slot.edge.to)) || secrets_public;
                if knows_secrets && scenario.world.now() < slot.timelock {
                    let call = ContractCall::MultiHtlc(MultiHtlcCall::Redeem {
                        preimages: secrets.clone(),
                    });
                    if let Some(txid) = call_contract(
                        &mut scenario.world,
                        &mut scenario.participants,
                        &slot.edge.to,
                        slot.edge.chain,
                        contract,
                        &call,
                    )? {
                        calls += 1;
                        fees += scenario.world.chain(slot.edge.chain)?.params().call_fee;
                        secrets_public = true;
                        let _ = scenario.world.wait_for_inclusion(slot.edge.chain, txid, delta);
                        scenario.world.timeline.record(
                            scenario.world.now(),
                            EventKind::ContractRedeemed { chain: slot.edge.chain, contract },
                        );
                    }
                }
            }
            self.refund_expired(scenario, &mut slots, &mut calls, &mut fees)?;
            scenario.world.advance(delta);
        }
        if deployment_failed {
            finished_at = scenario.world.now();
        }

        let outcomes: Vec<EdgeOutcome> = slots
            .iter()
            .map(|s| {
                let contract = s.deploy.map(|(_, c)| c);
                EdgeOutcome {
                    edge: s.edge,
                    contract,
                    disposition: edge_disposition(&scenario.world, s.edge.chain, contract),
                }
            })
            .collect();

        Ok(SwapReport {
            protocol: ProtocolKind::HerlihyMulti,
            decision: None,
            edges: outcomes,
            started_at,
            finished_at,
            delta_ms: delta,
            deployments,
            calls,
            fees_paid: fees,
            timeline: scenario.world.timeline.clone(),
        })
    }

    /// Refund every published contract whose timelock has expired, on behalf
    /// of whichever senders are currently available.
    fn refund_expired(
        &self,
        scenario: &mut Scenario,
        slots: &mut [EdgeSlot],
        calls: &mut u64,
        fees: &mut u64,
    ) -> Result<(), ProtocolError> {
        let now = scenario.world.now();
        for slot in slots.iter() {
            let Some((_, contract)) = slot.deploy else { continue };
            if now < slot.timelock {
                continue;
            }
            if edge_disposition(&scenario.world, slot.edge.chain, Some(contract))
                != EdgeDisposition::Locked
            {
                continue;
            }
            let call = ContractCall::MultiHtlc(MultiHtlcCall::Refund);
            if let Some(txid) = call_contract(
                &mut scenario.world,
                &mut scenario.participants,
                &slot.edge.from,
                slot.edge.chain,
                contract,
                &call,
            )? {
                *calls += 1;
                *fees += scenario.world.chain(slot.edge.chain)?.params().call_fee;
                let _ = scenario.world.wait_for_inclusion(
                    slot.edge.chain,
                    txid,
                    scenario.world.delta_ms(),
                );
                scenario.world.timeline.record(
                    scenario.world.now(),
                    EventKind::ContractRefunded { chain: slot.edge.chain, contract },
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AtomicityVerdict;
    use crate::scenario::{
        custom_scenario, figure7a_scenario, figure7b_scenario, ring_scenario, two_party_scenario,
        ScenarioConfig,
    };
    use ac3_sim::CrashWindow;

    fn driver() -> HerlihyMulti {
        HerlihyMulti::new(ProtocolConfig { deployment_depth: 3, ..Default::default() })
    }

    #[test]
    fn two_party_swap_commits() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let report = driver().execute(&mut s).unwrap();
        assert_eq!(report.protocol, ProtocolKind::HerlihyMulti);
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "{}", report.summary());
        assert_eq!(report.deployments, 2);
        assert_eq!(report.calls, 2);
    }

    #[test]
    fn cyclic_figure7a_commits_under_multi_leader() {
        // The single-leader protocol can also execute a plain 3-cycle, but
        // the multi-leader variant is the one the paper credits with cyclic
        // graphs in general; check it works here.
        let mut s = figure7a_scenario(&ScenarioConfig::default());
        let report = driver().execute(&mut s).unwrap();
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "{}", report.summary());
    }

    #[test]
    fn cyclic_graph_without_single_leader_commits() {
        // A graph where removing any single vertex leaves a residual cycle —
        // the single-leader protocol rejects it, the multi-leader one
        // executes it. Two vertex-disjoint 2-cycles joined by a bridge edge:
        // A⇄B, C⇄D, plus B→C to connect them.
        let names = ["a", "b", "c", "d"];
        let edges = [(0, 1, 10), (1, 0, 20), (2, 3, 30), (3, 2, 40), (1, 2, 50)];
        let mut s = custom_scenario(&names, &edges, &ScenarioConfig::default());
        assert!(
            crate::herlihy::Herlihy::supports_graph(&s.graph).is_err(),
            "single-leader should reject this graph"
        );
        let report = driver().execute(&mut s).unwrap();
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "{}", report.summary());
        assert_eq!(report.edges.len(), 5);
    }

    #[test]
    fn disconnected_graph_is_still_unsupported() {
        let mut s = figure7b_scenario(&ScenarioConfig::default());
        let err = driver().execute(&mut s).unwrap_err();
        assert!(matches!(err, ProtocolError::UnsupportedGraph(_)));
    }

    #[test]
    fn latency_grows_with_ring_size() {
        let mut lat2 = 0.0;
        let mut lat5 = 0.0;
        for (n, lat) in [(2usize, &mut lat2), (5usize, &mut lat5)] {
            let mut s = ring_scenario(n, 10, &ScenarioConfig::default());
            let report = driver().execute(&mut s).unwrap();
            assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "ring {n}");
            *lat = report.latency_in_deltas();
        }
        assert!(lat5 > lat2, "multi-leader latency should grow with the wave depth");
    }

    #[test]
    fn missing_counterparty_leads_to_refund_not_loss() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        // Whoever is not in the leader set crashes before deploying.
        let leaders = HerlihyMulti::supports_graph(&s.graph).unwrap();
        let non_leader_name = ["alice", "bob"]
            .iter()
            .find(|n| {
                let addr = s.participants.get(n).unwrap().address();
                !leaders.contains(&addr)
            })
            .copied()
            .unwrap_or("bob");
        s.participants.get_mut(non_leader_name).unwrap().schedule_crash(CrashWindow::permanent(0));
        let report = driver().execute(&mut s).unwrap();
        assert!(report.is_atomic(), "{}", report.verdict());
    }

    #[test]
    fn crash_past_timelock_still_violates_atomicity() {
        // The multi-leader variant inherits the timelock flaw: a redeemer
        // crashed past its timelock loses the asset.
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let leaders = HerlihyMulti::supports_graph(&s.graph).unwrap();
        // Crash the non-leader from just after the leaders' redemption until
        // far past every timelock.
        let non_leader_name = ["alice", "bob"]
            .iter()
            .find(|n| {
                let addr = s.participants.get(n).unwrap().address();
                !leaders.contains(&addr)
            })
            .copied()
            .unwrap();
        s.participants
            .get_mut(non_leader_name)
            .unwrap()
            .schedule_crash(CrashWindow { from: 9_000, until: 600_000 });
        let report = driver().execute(&mut s).unwrap();
        assert!(
            !report.is_atomic(),
            "expected an atomicity violation, got {} ({})",
            report.verdict(),
            report.summary()
        );
    }
}
