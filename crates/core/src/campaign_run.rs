//! The campaign *harness*: the half of the Section 6.3-extended campaign
//! machinery that legitimately owns an [`ac3_sim::World`].
//!
//! [`crate::campaign`] defines the plan space, the adversary
//! [`SwapMachine`](crate::driver::SwapMachine)s and the report types; like
//! every protocol module it speaks only the [`ac3_sim::ChainApi`] seam and
//! is checked by `ac3-lint`'s `chainapi-seam` rule. This module is the
//! deliberately unchecked counterpart: it constructs the shared `World`,
//! funds the cast, stakes the witness bonds, drives the batch through one
//! [`Scheduler`], and then reads the chains back out to account for the
//! damage. Nothing here runs *inside* a machine poll.

use crate::actions::deploy_contract;
use crate::campaign::{
    adversary_machines, honest_machines, Campaign, CampaignConfig, CampaignPlan, CampaignReport,
    ProtocolLane, WitnessBond, ADVERSARY_ID_BASE,
};
use crate::graph::{SwapEdge, SwapGraph};
use crate::protocol::{ProtocolError, ProtocolKind};
use crate::scenario::{MultiSwapScenario, SwapSpec};
use crate::scheduler::{BatchReport, Scheduler};
use ac3_chain::{Address, Amount, BaseFeeSchedule, ChainParams, TxKind};
use ac3_contracts::{
    codec, ContractCall, ContractSpec, ContractState, ExpectedContract, WitnessCall, WitnessSpec,
};
use ac3_crypto::{Hash256, KeyPair};
use ac3_sim::{EventKind, Fault, ParticipantSet, SwapId, World};
use serde::Serialize;
use std::collections::BTreeMap;

/// Build the campaign world: honest cast and chains (as in
/// [`crate::scenario::concurrent_swaps_multi_witness`], plus watchdog,
/// operator and griefer identities), deploy one staked witness bond per
/// witness chain, and draw the plan.
pub fn build_campaign(cfg: &CampaignConfig) -> Result<Campaign, ProtocolError> {
    let mut participants = ParticipantSet::new();
    let pairs: Vec<(Address, Address)> = (0..cfg.swaps)
        .map(|i| (participants.add(&format!("s{i}a")), participants.add(&format!("s{i}b"))))
        .collect();
    let honest_names: Vec<String> =
        (0..cfg.swaps).flat_map(|i| [format!("s{i}a"), format!("s{i}b")]).collect();
    let watchdog = participants.add("watchdog");
    let operator_addr = participants.add("operator");
    let griefers: Vec<(String, Address)> = (0..cfg.space.griefing_slots())
        .map(|j| {
            let name = format!("griefer{j}");
            let addr = participants.add(&name);
            (name, addr)
        })
        .collect();
    let genesis: Vec<(Address, Amount)> =
        participants.addresses().into_iter().map(|a| (a, cfg.funding)).collect();

    let mut world = World::new();
    let asset_chains: Vec<ac3_chain::ChainId> = (0..cfg.asset_chains)
        .map(|i| world.add_chain(ChainParams::fast(&format!("asset-{i}"), 16), &genesis))
        .collect();
    let witness_chains: Vec<ac3_chain::ChainId> = (0..cfg.witness_chains)
        .map(|i| {
            let mut params =
                ChainParams::fast(&format!("witness-{i}"), 6).with_base_fee(BaseFeeSchedule {
                    floor: 1,
                    target_utilisation_pct: 50,
                    max_change_pct: 25,
                });
            params.mempool_capacity = cfg.witness_mempool_capacity;
            world.add_chain(params, &genesis)
        })
        .collect();

    // Let every chain mine a few blocks so stable anchors exist.
    world.advance(4_000);

    // Bond one witness-network operator per witness chain. The bond's
    // graph digest stands for the witness network's current coordination
    // duty; its stake is what equivocation forfeits.
    let mut bonds = Vec::with_capacity(witness_chains.len());
    for (i, &wc) in witness_chains.iter().enumerate() {
        let operator = KeyPair::from_seed(format!("campaign-operator-{i}").as_bytes());
        let graph_digest = Hash256::digest(format!("ac3wn/campaign-bond/{i}").as_bytes());
        let spec = ContractSpec::Witness(WitnessSpec {
            participants: vec![operator_addr],
            graph_digest,
            expected_contracts: vec![ExpectedContract {
                chain: wc,
                sender: operator_addr,
                recipient: operator_addr,
                amount: 1,
                anchor: world.anchor(wc)?,
                required_depth: 1,
            }],
            operator: Some(operator.public()),
            stake: cfg.stake,
        });
        let (_, contract) =
            deploy_contract(&mut world, &mut participants, &operator_addr, wc, &spec, cfg.stake)?
                .ok_or_else(|| {
                ProtocolError::World(format!("bond deployment on {wc} not submitted"))
            })?;
        bonds.push(WitnessBond { chain: wc, operator, graph_digest, contract });
    }
    // Confirm the bonds before any honest machine or adversary runs.
    world.advance(3_000);
    for bond in &bonds {
        if world.chain(bond.chain)?.contract(&bond.contract).is_none() {
            return Err(ProtocolError::World(format!(
                "bond on {} not deployed after confirmation window",
                bond.chain
            )));
        }
    }

    let plan = CampaignPlan::random(
        cfg.seed,
        &cfg.space,
        world.now() + 2_000,
        &asset_chains,
        &witness_chains,
        &honest_names,
    );

    let m = asset_chains.len();
    let k = witness_chains.len();
    let swaps = pairs
        .iter()
        .enumerate()
        .map(|(i, (a, b))| {
            let edges = vec![
                SwapEdge { from: *a, to: *b, amount: 50, chain: asset_chains[i % m] },
                SwapEdge { from: *b, to: *a, amount: 80, chain: asset_chains[(i + 1) % m] },
            ];
            SwapSpec {
                id: SwapId(i as u64),
                graph: SwapGraph::new(edges, i as u64 + 1).expect("two-party graphs are valid"),
                witness: witness_chains[i % k],
            }
        })
        .collect();

    Ok(Campaign {
        scenario: MultiSwapScenario { world, participants, swaps, witness_chains, asset_chains },
        watchdog,
        bonds,
        griefers,
        plan,
    })
}

/// Count canonical [`WitnessCall::ReportEquivocation`] calls against one
/// bond. Miners never include a failing call (it stays pending without
/// consuming block budget), so canonical inclusion *is* acceptance.
fn accepted_slash_calls(world: &World, bond: &WitnessBond) -> Result<usize, ProtocolError> {
    let chain = world.chain(bond.chain)?;
    let mut accepted = 0;
    for block in chain.store().canonical_blocks() {
        for tx in &block.transactions {
            if let TxKind::Call { contract, payload } = &tx.kind {
                if *contract == bond.contract
                    && matches!(
                        codec::decode::<ContractCall>(payload),
                        Ok(ContractCall::Witness(WitnessCall::ReportEquivocation { .. }))
                    )
                {
                    accepted += 1;
                }
            }
        }
    }
    Ok(accepted)
}

/// Whether a bond's final decoded state is slashed.
fn bond_is_slashed(world: &World, bond: &WitnessBond) -> Result<bool, ProtocolError> {
    let Some(record) = world.chain(bond.chain)?.contract(&bond.contract) else {
        return Ok(false);
    };
    match codec::decode::<ContractState>(&record.state) {
        Ok(ContractState::Witness(s)) => Ok(s.slashed),
        _ => Ok(false),
    }
}

/// Everything the batch observably produced, serialized for bitwise
/// comparison across worker counts and store backends (mirrors the
/// determinism suite's fingerprint).
#[derive(Serialize)]
struct FingerprintParts {
    outcomes: Vec<(u64, String)>,
    ticks: u64,
    started_at: u64,
    finished_at: u64,
    fees: String,
    chains: Vec<String>,
    timeline: Vec<String>,
    slashes: usize,
    bonds_slashed: usize,
}

fn count_notes(batch: &BatchReport, needle: &str) -> usize {
    batch
        .reports()
        .map(|(_, r)| r.timeline.count(|k| matches!(k, EventKind::Note(s) if s.contains(needle))))
        .sum()
}

/// Run a full campaign: build the world and bonds, draw the plan, drive the
/// honest batch and every adversary through one [`Scheduler`], and account
/// for the damage.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, ProtocolError> {
    let mut campaign = build_campaign(cfg)?;
    let mut machines = honest_machines(cfg, &campaign.scenario);
    machines.extend(adversary_machines(&campaign, cfg.stake));

    let scheduler = Scheduler {
        max_ms: cfg.max_ms,
        workers: cfg.workers,
        network: cfg.network,
        ..Scheduler::default()
    };
    let batch =
        scheduler.run(&mut campaign.scenario.world, &mut campaign.scenario.participants, machines);
    let world = &campaign.scenario.world;

    let honest = |id: &SwapId| id.0 < ADVERSARY_ID_BASE;
    let committed =
        batch.reports().filter(|(id, r)| honest(id) && r.decision == Some(true)).count();
    let aborted = batch.reports().filter(|(id, r)| honest(id) && r.decision == Some(false)).count();
    let failed = batch.outcomes.iter().filter(|o| honest(&o.id) && o.result.is_err()).count();
    let adversary_failures =
        batch.outcomes.iter().filter(|o| !honest(&o.id) && o.result.is_err()).count();
    let atomic = batch.all_atomic();

    let mut per_protocol: BTreeMap<String, ProtocolLane> = BTreeMap::new();
    for o in batch.outcomes.iter().filter(|o| honest(&o.id)) {
        if let Ok(r) = &o.result {
            let lane = per_protocol.entry(format!("{:?}", r.protocol)).or_default();
            lane.swaps += 1;
            match r.decision {
                Some(true) => lane.committed += 1,
                Some(false) => lane.aborted += 1,
                None => {}
            }
            lane.fees_paid += r.fees_paid;
            lane.fees_scheduled += r.fees_scheduled;
        }
    }
    for o in batch.outcomes.iter().filter(|o| honest(&o.id)) {
        if let Err(e) = &o.result {
            // A failed machine still belongs to a lane; attribute by the
            // protocol its index implies (the mix is positional).
            let kind = match o.id.0 % 4 {
                0 => ProtocolKind::Ac3Wn,
                1 => ProtocolKind::Ac3Tw,
                2 => ProtocolKind::Herlihy,
                _ => ProtocolKind::HerlihyMulti,
            };
            let lane = per_protocol.entry(format!("{kind:?}")).or_default();
            lane.swaps += 1;
            lane.failed += 1;
            let _ = e;
        }
    }
    let failures: Vec<(u64, String)> = batch
        .outcomes
        .iter()
        .filter_map(|o| o.result.as_ref().err().map(|e| (o.id.0, format!("{e}"))))
        .collect();

    let honest_fees_paid: Amount =
        batch.reports().filter(|(id, _)| honest(id)).map(|(_, r)| r.fees_paid).sum();
    let honest_fees_scheduled: Amount =
        batch.reports().filter(|(id, _)| honest(id)).map(|(_, r)| r.fees_scheduled).sum();
    let adversary_fees: Amount = batch
        .outcomes
        .iter()
        .filter(|o| !honest(&o.id))
        .map(|o| world.fees.fees_for_swap(o.id))
        .sum();

    let mut slashes_accepted = 0;
    let mut bonds_slashed = 0;
    for bond in &campaign.bonds {
        slashes_accepted += accepted_slash_calls(world, bond)?;
        if bond_is_slashed(world, bond)? {
            bonds_slashed += 1;
        }
    }

    let equivocations = campaign.plan.count(|f| matches!(f, Fault::Equivocate { .. }));
    let bribes = campaign.plan.count(|f| matches!(f, Fault::Bribe { .. }));
    let duplicate_slash_reports_rejected = count_notes(&batch, "duplicate slash report rejected");
    let bribes_detected = count_notes(&batch, "bribed attestation detected");

    // --- fingerprint -----------------------------------------------------
    let outcomes = batch
        .outcomes
        .iter()
        .map(|o| {
            let result = match &o.result {
                Ok(report) => serde_json::to_string(report).expect("reports serialize"),
                Err(e) => format!("{e:?}"),
            };
            (o.id.0, result)
        })
        .collect();
    let chains = world
        .chain_ids()
        .into_iter()
        .map(|cid| {
            let c = world.chain(cid).expect("listed chain exists");
            format!(
                "{cid}: tip={:?} height={} mempool={} base_fee={}",
                c.tip(),
                c.height(),
                c.mempool_len(),
                c.base_fee()
            )
        })
        .collect();
    // Same-timestamp events from unrelated shards may interleave either
    // way; canonicalize by sorting serialized events (each embeds its
    // timestamp).
    let mut timeline: Vec<String> = world
        .timeline
        .events()
        .iter()
        .map(|e| serde_json::to_string(e).expect("events serialize"))
        .collect();
    timeline.sort();
    let parts = FingerprintParts {
        outcomes,
        ticks: batch.ticks,
        started_at: batch.started_at,
        finished_at: batch.finished_at,
        fees: serde_json::to_string(&world.fees).expect("ledger serializes"),
        chains,
        timeline,
        slashes: slashes_accepted,
        bonds_slashed,
    };
    let fingerprint =
        Hash256::digest(serde_json::to_string(&parts).expect("parts serialize").as_bytes())
            .to_hex();

    Ok(CampaignReport {
        plan: campaign.plan,
        swaps: cfg.swaps,
        committed,
        aborted,
        failed,
        adversary_failures,
        atomic,
        ticks: batch.ticks,
        makespan_ms: batch.finished_at.saturating_sub(batch.started_at),
        equivocations,
        slashes_accepted,
        bonds_slashed,
        duplicate_slash_reports_rejected,
        bribes,
        bribes_detected,
        honest_fees_paid,
        honest_fees_scheduled,
        adversary_fees,
        stake_posted: cfg.stake * campaign.bonds.len() as Amount,
        stake_slashed: cfg.stake * bonds_slashed as Amount,
        per_protocol,
        failures,
        fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignSpace;

    #[test]
    fn quiet_campaign_commits_everything_and_slashes_nothing() {
        let cfg =
            CampaignConfig { space: CampaignSpace::quiet(), swaps: 4, ..CampaignConfig::new(11) };
        let report = run_campaign(&cfg).expect("campaign runs");
        // The two AC3 lanes reach explicit commit decisions; the Herlihy
        // baselines have no decision step (`decision: None`) and show up
        // through the atomicity audit instead.
        assert_eq!(report.committed, 2);
        assert_eq!(report.aborted, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.adversary_failures, 0);
        assert!(report.atomic);
        assert_eq!(report.slashes_accepted, 0);
        assert_eq!(report.bonds_slashed, 0);
        assert_eq!(report.stake_slashed, 0);
        assert_eq!(report.adversary_fees, 0);
        // All four protocols ran one swap each.
        assert_eq!(report.per_protocol.len(), 4);
        assert!(report.per_protocol.values().all(|lane| lane.swaps == 1 && lane.failed == 0));
    }

    #[test]
    fn equivocation_campaign_slashes_each_bond_exactly_once() {
        let cfg = CampaignConfig {
            space: CampaignSpace { equivocations: 2, bribes: 1, ..CampaignSpace::quiet() },
            swaps: 4,
            ..CampaignConfig::new(23)
        };
        let report = run_campaign(&cfg).expect("campaign runs");
        assert_eq!(report.equivocations, 2);
        assert_eq!(report.slashes_accepted, 2, "one accepted slash per equivocation");
        assert_eq!(report.bonds_slashed, 2);
        assert_eq!(report.duplicate_slash_reports_rejected, 2);
        assert_eq!(report.stake_slashed, 2 * cfg.stake);
        assert_eq!(report.bribes, 1);
        assert_eq!(report.bribes_detected, 1);
        assert_eq!(report.failed, 0);
        assert_eq!(report.adversary_failures, 0);
        assert!(report.atomic);
    }

    #[test]
    fn full_campaign_is_reproducible_from_its_seed() {
        let cfg = CampaignConfig { swaps: 4, ..CampaignConfig::new(5) };
        let a = run_campaign(&cfg).expect("campaign runs");
        let b = run_campaign(&cfg).expect("campaign runs");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.adversary_failures, 0);
        // Griefers actually spent money the ledger attributed to them.
        assert!(a.adversary_fees > 0, "griefing bursts spend attributed fees");
    }
}
