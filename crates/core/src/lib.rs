//! # ac3-core
//!
//! The heart of the reproduction of *Atomic Commitment Across Blockchains*
//! (Zakhary, Agrawal, El Abbadi — VLDB 2020): the AC3WN protocol, the AC3TW
//! centralized-witness variant, the Nolan and Herlihy hashlock/timelock
//! baselines, the transaction-graph model, the cross-chain evidence
//! validation strategies and the paper's analytical models.
//!
//! | Paper | Module |
//! |---|---|
//! | Section 3 — AC2T graph model `D = (V, E)`, `ms(D)` | [`graph`] |
//! | Section 4.1 — AC3TW (centralized trusted witness) | [`ac3tw`] |
//! | Section 4.2 — AC3WN (permissionless witness network) | [`ac3wn`] |
//! | Section 4.3 — cross-chain evidence validation strategies | [`evidence`] |
//! | Section 1 / \[23\] — Nolan's two-party atomic swap | [`nolan`] |
//! | \[16\] — Herlihy's multi-party atomic swap (baseline) | [`herlihy`] |
//! | \[16\] / Section 5.3 — Herlihy's multi-leader variant | [`herlihy_multi`] |
//! | Section 5 — atomicity audit | [`audit`] |
//! | Section 6 — latency / cost / witness-choice / throughput models | [`analysis`] |
//! | Section 6.3 — executed 51%-fork attack on the witness chain | [`attack`] |
//! | Sections 5.2 / 6.4 — concurrent AC2Ts over shared chains | [`driver`], [`scheduler`] |
//!
//! Every protocol is decomposed into a resumable step/poll state machine
//! ([`driver::SwapMachine`]) that never advances the simulated clock, so N
//! swaps — of any protocol mix — can interleave over one shared world under
//! the [`scheduler::Scheduler`]; the blocking `execute` entry points are
//! thin [`driver::drive`] wrappers over the machines.
//!
//! The protocol drivers execute against the `ac3-sim` discrete-event world;
//! [`scenario`] assembles standard worlds (two-party swaps, rings of
//! configurable diameter, the Figure 7 complex graphs) shared by the
//! examples, tests and the benchmark harness.
//!
//! ## Quick start
//!
//! ```
//! use ac3_core::{Ac3wn, ProtocolConfig};
//! use ac3_core::scenario::{two_party_scenario, ScenarioConfig};
//!
//! // Alice swaps 50 units on chain A for Bob's 80 units on chain B.
//! let mut scenario = two_party_scenario(50, 80, &ScenarioConfig::default());
//! let report = Ac3wn::new(ProtocolConfig::default())
//!     .execute(&mut scenario)
//!     .expect("swap executes");
//! assert!(report.is_atomic());
//! assert_eq!(report.decision, Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ac3tw;
pub mod ac3wn;
pub mod actions;
pub mod analysis;
pub mod attack;
pub mod audit;
pub mod campaign;
pub mod campaign_run;
pub mod driver;
pub mod evidence;
pub mod fee;
pub mod graph;
pub mod herlihy;
pub mod herlihy_multi;
pub mod nolan;
pub mod partition;
pub mod protocol;
pub mod scenario;
pub mod scheduler;

pub use ac3tw::{Ac3tw, Ac3twMachine, Trent, TrentError};
pub use ac3wn::{Ac3wn, Ac3wnMachine};
pub use attack::{execute_fork_attack, ForkAttackConfig, ForkAttackReport};
pub use audit::AtomicityVerdict;
pub use campaign::{
    Campaign, CampaignConfig, CampaignEvent, CampaignPlan, CampaignReport, CampaignRng,
    CampaignSpace, ProtocolLane, WitnessBond,
};
pub use campaign_run::{build_campaign, run_campaign};
pub use driver::{drive, MachineFootprint, Step, SwapMachine};
pub use evidence::{
    validate_tx, validate_with_all, ValidationCost, ValidationReport, ValidationStrategy,
};
pub use fee::{BidBook, BidChange, FeePolicy};
pub use graph::{
    figure7_cyclic, figure7_disconnected, ring_graph, GraphShape, SwapEdge, SwapGraph,
};
pub use herlihy::{Herlihy, HerlihyMachine};
pub use herlihy_multi::{HerlihyMulti, HerlihyMultiMachine};
pub use nolan::Nolan;
pub use partition::{partition_batch, Shard};
pub use protocol::{
    EdgeDisposition, EdgeOutcome, ProtocolConfig, ProtocolError, ProtocolKind, SwapReport,
};
pub use scenario::{
    clustered_swaps_scenario, concurrent_custom_swaps, concurrent_swaps_multi_witness,
    concurrent_swaps_over_chains, concurrent_swaps_scenario, custom_scenario, figure7a_scenario,
    figure7b_scenario, ring_scenario, two_party_scenario, MultiSwapScenario, Scenario,
    ScenarioConfig, SwapSpec,
};
pub use scheduler::{
    BatchReport, FeeMarketStats, MachineSeed, Scheduler, SwapOutcome, WitnessAssignment,
};
