//! Common types shared by every atomic cross-chain commitment protocol
//! driver: per-edge outcomes, the execution report, and the protocol
//! configuration knobs.

use crate::audit::AtomicityVerdict;
use crate::graph::SwapEdge;
use ac3_chain::{Amount, ChainId, ContractId, Timestamp};
use ac3_sim::Timeline;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The terminal disposition of one sub-transaction (edge) after a protocol
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeDisposition {
    /// The contract was never published (participant declined or crashed
    /// before deployment).
    Unpublished,
    /// The contract is still in state `P` (asset locked, no outcome yet).
    Locked,
    /// The contract was redeemed: the asset moved to the recipient.
    Redeemed,
    /// The contract was refunded: the asset returned to the sender.
    Refunded,
}

impl EdgeDisposition {
    /// Parse a contract state tag ("P", "RD", "RF").
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "P" => Some(EdgeDisposition::Locked),
            "RD" => Some(EdgeDisposition::Redeemed),
            "RF" => Some(EdgeDisposition::Refunded),
            _ => None,
        }
    }
}

impl fmt::Display for EdgeDisposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeDisposition::Unpublished => "unpublished",
            EdgeDisposition::Locked => "locked (P)",
            EdgeDisposition::Redeemed => "redeemed (RD)",
            EdgeDisposition::Refunded => "refunded (RF)",
        };
        write!(f, "{s}")
    }
}

/// The outcome of one edge of the AC2T graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeOutcome {
    /// The edge this outcome describes.
    pub edge: SwapEdge,
    /// The deployed contract, if any.
    pub contract: Option<ContractId>,
    /// Its terminal disposition.
    pub disposition: EdgeDisposition,
}

/// Which protocol produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Nolan's two-party hashlock/timelock swap.
    Nolan,
    /// Herlihy's multi-party single-leader swap.
    Herlihy,
    /// Herlihy's multi-leader swap (cyclic-graph variant).
    HerlihyMulti,
    /// AC3TW: centralized trusted witness.
    Ac3Tw,
    /// AC3WN: permissionless witness network.
    Ac3Wn,
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolKind::Nolan => "Nolan",
            ProtocolKind::Herlihy => "Herlihy",
            ProtocolKind::HerlihyMulti => "Herlihy-multi",
            ProtocolKind::Ac3Tw => "AC3TW",
            ProtocolKind::Ac3Wn => "AC3WN",
        };
        write!(f, "{s}")
    }
}

/// The result of executing an AC2T under some protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwapReport {
    /// The protocol that ran.
    pub protocol: ProtocolKind,
    /// Whether the protocol reached a commit decision (`true`), an abort
    /// decision (`false`), or no decision (`None` — e.g. a baseline
    /// protocol that has no explicit decision step).
    pub decision: Option<bool>,
    /// Per-edge outcomes.
    pub edges: Vec<EdgeOutcome>,
    /// Simulated time at which the swap started (graph agreement).
    pub started_at: Timestamp,
    /// Simulated time at which the last asset transfer completed (or the
    /// run gave up).
    pub finished_at: Timestamp,
    /// The world's Δ at execution time, for normalising latency.
    pub delta_ms: u64,
    /// Number of contract deployments performed (including the witness
    /// contract for AC3WN / the registration for AC3TW when applicable).
    pub deployments: u64,
    /// Number of contract function calls performed.
    pub calls: u64,
    /// Total fees paid, in asset units. Under an escalating
    /// [`crate::fee::FeePolicy`] this includes every re-bid surcharge; only
    /// the final bid of a replaced transaction counts.
    pub fees_paid: Amount,
    /// Fees the static fd/ffc schedule (Section 6.2) prices the same
    /// operations at — the fee-market baseline. `fees_paid /
    /// fees_scheduled` is the swap's fee inflation under contention.
    pub fees_scheduled: Amount,
    /// Number of replace-by-fee escalations (and eviction re-submissions)
    /// the swap's participants performed.
    pub fee_rebids: u64,
    /// The protocol-level event timeline.
    pub timeline: Timeline,
}

impl SwapReport {
    /// End-to-end latency in simulated milliseconds.
    pub fn latency_ms(&self) -> u64 {
        self.finished_at.saturating_sub(self.started_at)
    }

    /// End-to-end latency in Δ units (the unit of the paper's Figure 10).
    pub fn latency_in_deltas(&self) -> f64 {
        if self.delta_ms == 0 {
            return 0.0;
        }
        self.latency_ms() as f64 / self.delta_ms as f64
    }

    /// The atomicity verdict over the per-edge outcomes.
    pub fn verdict(&self) -> AtomicityVerdict {
        AtomicityVerdict::from_outcomes(&self.edges)
    }

    /// Whether the run preserved all-or-nothing atomicity.
    pub fn is_atomic(&self) -> bool {
        self.verdict().is_atomic()
    }

    /// Fee inflation under contention: `fees_paid / fees_scheduled`
    /// (1.0 when every bid cleared at the static schedule price).
    pub fn fee_inflation(&self) -> f64 {
        if self.fees_scheduled == 0 {
            return 1.0;
        }
        self.fees_paid as f64 / self.fees_scheduled as f64
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} edges, decision={:?}, verdict={}, latency={:.2}Δ ({} ms), {} deployments, {} calls, fees={} ({} rebids)",
            self.protocol,
            self.edges.len(),
            self.decision,
            self.verdict(),
            self.latency_in_deltas(),
            self.latency_ms(),
            self.deployments,
            self.calls,
            self.fees_paid,
            self.fee_rebids,
        )
    }
}

/// Configuration knobs shared by the protocol drivers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Burial depth `d` required of witness-chain decisions before asset
    /// contracts accept them (AC3WN; Section 4.2).
    pub witness_depth: u64,
    /// Burial depth required of asset-contract deployments before the
    /// witness authorizes redemption.
    pub deployment_depth: u64,
    /// How long (in Δ units) a protocol waits for missing deployments
    /// before requesting an abort.
    pub abort_after_deltas: u64,
    /// Upper bound, in Δ units, on any single awaited condition inside a
    /// machine (the deadline attached to each waiting phase) — protects
    /// tests from livelock if a condition can never become true. Raise it
    /// for contended scheduler batches, where submissions can queue many
    /// blocks behind other swaps' transactions.
    pub wait_cap_deltas: u64,
    /// Whether recovered participants get a post-run chance to redeem
    /// (exercises the *commitment* property: decisions must eventually take
    /// effect).
    pub allow_recovery_redemption: bool,
    /// How participants bid for block space when their submissions queue
    /// (see [`crate::fee::FeePolicy`]). The default
    /// [`Fixed`](crate::fee::FeePolicy::Fixed) policy reproduces the
    /// paper's static fee schedule exactly;
    /// [`Adaptive`](crate::fee::FeePolicy::Adaptive) reads the chain's
    /// congestion snapshot (dynamic base fee, marginal next-block price)
    /// instead of climbing a blind escalation ladder.
    pub fee_policy: crate::fee::FeePolicy,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            witness_depth: 3,
            deployment_depth: 1,
            abort_after_deltas: 4,
            wait_cap_deltas: 12,
            allow_recovery_redemption: true,
            fee_policy: crate::fee::FeePolicy::Fixed,
        }
    }
}

/// Errors surfaced by protocol drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The graph cannot be executed by this protocol (e.g. disconnected
    /// graph under Herlihy's single-leader protocol).
    UnsupportedGraph(String),
    /// A required participant is unknown to the scenario.
    UnknownParticipant(String),
    /// A participant lacks the balance to lock its asset or pay fees.
    InsufficientFunds {
        /// The participant.
        who: String,
        /// The chain on which funds are missing.
        chain: ChainId,
    },
    /// An interaction with the simulated world failed.
    World(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnsupportedGraph(m) => write!(f, "unsupported graph: {m}"),
            ProtocolError::UnknownParticipant(m) => write!(f, "unknown participant: {m}"),
            ProtocolError::InsufficientFunds { who, chain } => {
                write!(f, "{who} has insufficient funds on {chain}")
            }
            ProtocolError::World(m) => write!(f, "world error: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ac3_sim::WorldError> for ProtocolError {
    fn from(e: ac3_sim::WorldError) -> Self {
        ProtocolError::World(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_chain::Address;
    use ac3_crypto::KeyPair;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn edge() -> SwapEdge {
        SwapEdge { from: addr(b"a"), to: addr(b"b"), amount: 5, chain: ChainId(0) }
    }

    fn report_with(dispositions: &[EdgeDisposition]) -> SwapReport {
        SwapReport {
            protocol: ProtocolKind::Ac3Wn,
            decision: Some(true),
            edges: dispositions
                .iter()
                .map(|d| EdgeOutcome { edge: edge(), contract: None, disposition: *d })
                .collect(),
            started_at: 1_000,
            finished_at: 9_000,
            delta_ms: 2_000,
            deployments: 3,
            calls: 3,
            fees_paid: 18,
            fees_scheduled: 18,
            fee_rebids: 0,
            timeline: Timeline::new(),
        }
    }

    #[test]
    fn latency_conversions() {
        let r = report_with(&[EdgeDisposition::Redeemed]);
        assert_eq!(r.latency_ms(), 8_000);
        assert!((r.latency_in_deltas() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disposition_parsing() {
        assert_eq!(EdgeDisposition::from_tag("P"), Some(EdgeDisposition::Locked));
        assert_eq!(EdgeDisposition::from_tag("RD"), Some(EdgeDisposition::Redeemed));
        assert_eq!(EdgeDisposition::from_tag("RF"), Some(EdgeDisposition::Refunded));
        assert_eq!(EdgeDisposition::from_tag("RDauth"), None);
    }

    #[test]
    fn atomic_and_violated_reports() {
        assert!(report_with(&[EdgeDisposition::Redeemed, EdgeDisposition::Redeemed]).is_atomic());
        assert!(report_with(&[EdgeDisposition::Refunded, EdgeDisposition::Refunded]).is_atomic());
        assert!(!report_with(&[EdgeDisposition::Redeemed, EdgeDisposition::Refunded]).is_atomic());
    }

    #[test]
    fn summary_mentions_protocol_and_verdict() {
        let s = report_with(&[EdgeDisposition::Redeemed]).summary();
        assert!(s.contains("AC3WN"));
        assert!(s.contains("deployments"));
    }

    #[test]
    fn default_config_is_sane() {
        let c = ProtocolConfig::default();
        assert!(c.witness_depth >= 1);
        assert!(c.wait_cap_deltas > c.abort_after_deltas);
    }

    #[test]
    fn zero_delta_latency_is_zero() {
        let mut r = report_with(&[EdgeDisposition::Redeemed]);
        r.delta_ms = 0;
        assert_eq!(r.latency_in_deltas(), 0.0);
    }
}
