//! The atomic cross-chain transaction graph `D = (V, E)` (Section 3).
//!
//! Vertices are participants, and a directed edge `e = (u, v)` is a
//! sub-transaction transferring asset `e.a` from `u` to `v` on blockchain
//! `e.BC`. The graph is what all participants multisign (`ms(D)`,
//! Equation 1) and what the witness contract stores. Its *diameter* governs
//! the latency of Herlihy's protocol (Section 6.1), and its shape —
//! cyclic or even disconnected (Figure 7) — determines whether the
//! baseline protocols can execute it at all (Section 5.3).

use ac3_chain::{Address, Amount, ChainId};
use ac3_crypto::{GraphMultisig, Hash256, KeyPair, MultisigError, PublicKey, Sha256};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// One sub-transaction: transfer `amount` from `from` to `to` on `chain`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapEdge {
    /// The source participant `u` (who locks the asset).
    pub from: Address,
    /// The recipient participant `v`.
    pub to: Address,
    /// The asset value `e.a`.
    pub amount: Amount,
    /// The blockchain `e.BC` the asset lives on.
    pub chain: ChainId,
}

/// Errors raised while constructing or signing a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no edges.
    Empty,
    /// An edge references a participant that is not in the vertex set.
    UnknownParticipant(Address),
    /// An edge transfers a zero-valued asset.
    ZeroAmount,
    /// A self-loop (a participant transferring to itself).
    SelfLoop(Address),
    /// Multisignature assembly/verification failed.
    Multisig(MultisigError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no edges"),
            GraphError::UnknownParticipant(a) => {
                write!(f, "edge references unknown participant {a}")
            }
            GraphError::ZeroAmount => write!(f, "edge transfers a zero-valued asset"),
            GraphError::SelfLoop(a) => write!(f, "self-loop at {a}"),
            GraphError::Multisig(e) => write!(f, "multisignature error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<MultisigError> for GraphError {
    fn from(e: MultisigError) -> Self {
        GraphError::Multisig(e)
    }
}

/// Structural classification of a graph (Figure 7 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphShape {
    /// Weakly connected and acyclic.
    Acyclic,
    /// Weakly connected and containing a directed cycle (Figure 7a).
    Cyclic,
    /// Not even weakly connected (Figure 7b).
    Disconnected,
}

/// The AC2T graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapGraph {
    /// The participants `V`, in deterministic order.
    participants: Vec<Address>,
    /// The sub-transactions `E`.
    edges: Vec<SwapEdge>,
    /// The agreement timestamp `t` that distinguishes otherwise-identical
    /// AC2Ts among the same participants (Equation 1).
    timestamp: u64,
}

impl SwapGraph {
    /// Build and validate a graph. The participant set is derived from the
    /// edges; `timestamp` is the agreement time `t`.
    pub fn new(edges: Vec<SwapEdge>, timestamp: u64) -> Result<Self, GraphError> {
        if edges.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut participants = BTreeSet::new();
        for e in &edges {
            if e.amount == 0 {
                return Err(GraphError::ZeroAmount);
            }
            if e.from == e.to {
                return Err(GraphError::SelfLoop(e.from));
            }
            participants.insert(e.from);
            participants.insert(e.to);
        }
        Ok(SwapGraph { participants: participants.into_iter().collect(), edges, timestamp })
    }

    /// The paper's running example (Figure 4): Alice swaps `x` on `chain_a`
    /// for Bob's `y` on `chain_b`.
    pub fn two_party(
        alice: Address,
        bob: Address,
        x: Amount,
        chain_a: ChainId,
        y: Amount,
        chain_b: ChainId,
        timestamp: u64,
    ) -> Result<Self, GraphError> {
        SwapGraph::new(
            vec![
                SwapEdge { from: alice, to: bob, amount: x, chain: chain_a },
                SwapEdge { from: bob, to: alice, amount: y, chain: chain_b },
            ],
            timestamp,
        )
    }

    /// The participants, in deterministic order.
    pub fn participants(&self) -> &[Address] {
        &self.participants
    }

    /// The participants' public keys (for multisignature verification).
    pub fn participant_keys(&self) -> Vec<PublicKey> {
        self.participants.iter().map(|a| a.public_key()).collect()
    }

    /// The edges.
    pub fn edges(&self) -> &[SwapEdge] {
        &self.edges
    }

    /// The agreement timestamp.
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// Number of edges `N = |E|` (the number of smart contracts to deploy).
    pub fn contract_count(&self) -> usize {
        self.edges.len()
    }

    /// The distinct chains the AC2T spans.
    pub fn chains(&self) -> Vec<ChainId> {
        let set: BTreeSet<ChainId> = self.edges.iter().map(|e| e.chain).collect();
        set.into_iter().collect()
    }

    /// Canonical byte encoding of `(D, t)` — the message every participant
    /// signs.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.edges.len() * 32);
        out.extend_from_slice(b"ac3wn/graph/v1");
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        out.extend_from_slice(&(self.participants.len() as u32).to_be_bytes());
        for p in &self.participants {
            out.extend_from_slice(&p.to_bytes());
        }
        out.extend_from_slice(&(self.edges.len() as u32).to_be_bytes());
        for e in &self.edges {
            out.extend_from_slice(&e.from.to_bytes());
            out.extend_from_slice(&e.to.to_bytes());
            out.extend_from_slice(&e.amount.to_be_bytes());
            out.extend_from_slice(&e.chain.as_u32().to_be_bytes());
        }
        out
    }

    /// Digest of the canonical encoding — a compact identifier for the
    /// graph, used before signatures are collected.
    pub fn digest(&self) -> Hash256 {
        let mut h = Sha256::new();
        h.update(&self.canonical_bytes());
        Hash256::from(h.finalize())
    }

    /// Start a multisignature over `(D, t)`.
    pub fn start_multisig(&self) -> GraphMultisig {
        GraphMultisig::new(self.canonical_bytes())
    }

    /// Convenience: have every provided key pair sign, producing a complete
    /// `ms(D)`. Fails if the key set does not cover all participants.
    pub fn multisign(&self, keypairs: &[KeyPair]) -> Result<GraphMultisig, GraphError> {
        let mut ms = self.start_multisig();
        for kp in keypairs {
            ms.sign_with(kp)?;
        }
        ms.verify(&self.participant_keys())?;
        Ok(ms)
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    fn index_of(&self, a: &Address) -> usize {
        self.participants.binary_search(a).expect("participants derived from edges")
    }

    /// Adjacency list over participant indices (directed).
    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.participants.len()];
        for e in &self.edges {
            adj[self.index_of(&e.from)].push(self.index_of(&e.to));
        }
        adj
    }

    /// The diameter of `D`: the length of the longest shortest directed path
    /// between any pair of mutually reachable vertices (the quantity in the
    /// Section 6.1 latency formulas). A single-edge graph has diameter 1;
    /// the paper's smallest two-party swap (Figure 4) has diameter 2? No —
    /// the paper plots diameters starting at 2 for the two-node, two-edge
    /// graph, which is the longest path A→B→A.
    pub fn diameter(&self) -> u64 {
        let adj = self.adjacency();
        let n = self.participants.len();
        let mut best = 0u64;
        for start in 0..n {
            // BFS from `start`.
            let mut dist = vec![None; n];
            dist[start] = Some(0u64);
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                let du = dist[u].expect("visited");
                for &v in &adj[u] {
                    if dist[v].is_none() {
                        dist[v] = Some(du + 1);
                        queue.push_back(v);
                    } else if v == start {
                        // Returning to the start closes a cycle; the path
                        // length counts (longest path "to any other vertex
                        // ... including itself").
                    }
                }
                // Handle the "including itself" case: a directed edge back
                // to start means the round-trip distance is du + 1.
                if adj[u].contains(&start) {
                    best = best.max(du + 1);
                }
            }
            best = best.max(dist.iter().flatten().copied().max().unwrap_or(0));
        }
        best
    }

    /// Whether the directed graph contains a cycle.
    pub fn is_cyclic(&self) -> bool {
        let adj = self.adjacency();
        let n = self.participants.len();
        // 0 = unvisited, 1 = on stack, 2 = done.
        let mut colour = vec![0u8; n];
        fn dfs(u: usize, adj: &[Vec<usize>], colour: &mut [u8]) -> bool {
            colour[u] = 1;
            for &v in &adj[u] {
                if colour[v] == 1 {
                    return true;
                }
                if colour[v] == 0 && dfs(v, adj, colour) {
                    return true;
                }
            }
            colour[u] = 2;
            false
        }
        (0..n).any(|u| colour[u] == 0 && dfs(u, &adj, &mut colour))
    }

    /// Whether the graph is weakly connected (ignoring edge direction).
    pub fn is_connected(&self) -> bool {
        let n = self.participants.len();
        if n == 0 {
            return true;
        }
        let mut undirected = vec![BTreeSet::new(); n];
        for e in &self.edges {
            let u = self.index_of(&e.from);
            let v = self.index_of(&e.to);
            undirected[u].insert(v);
            undirected[v].insert(u);
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &undirected[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == n
    }

    /// Classify the graph shape (Figure 7 taxonomy).
    pub fn shape(&self) -> GraphShape {
        if !self.is_connected() {
            GraphShape::Disconnected
        } else if self.is_cyclic() {
            GraphShape::Cyclic
        } else {
            GraphShape::Acyclic
        }
    }

    /// Whether removing `leader` leaves an acyclic graph — the feasibility
    /// condition for the single-leader Nolan/Herlihy protocols
    /// (Section 5.3: "require the AC2T graph to be acyclic once the leader
    /// node is removed").
    pub fn acyclic_without(&self, leader: &Address) -> bool {
        let filtered: Vec<SwapEdge> =
            self.edges.iter().filter(|e| e.from != *leader && e.to != *leader).copied().collect();
        if filtered.is_empty() {
            return true;
        }
        // Rebuild a reduced graph; reuse the cycle check.
        match SwapGraph::new(filtered, self.timestamp) {
            Ok(g) => !g.is_cyclic(),
            Err(_) => true,
        }
    }

    /// A feedback vertex set of the directed graph: a set of participants
    /// whose removal leaves the graph acyclic. Herlihy's *multi-leader*
    /// protocol (the cyclic-graph variant of \[16\] referenced in Section
    /// 5.3) uses such a set as its leader set — every leader contributes a
    /// hashlock secret and every contract is locked behind all of them.
    ///
    /// The computation is a greedy heuristic (repeatedly remove the vertex
    /// on the most cycles); minimality is not required for correctness, only
    /// that the residual graph is acyclic.
    pub fn feedback_vertex_set(&self) -> Vec<Address> {
        let mut removed: BTreeSet<Address> = BTreeSet::new();
        loop {
            let remaining: Vec<SwapEdge> = self
                .edges
                .iter()
                .filter(|e| !removed.contains(&e.from) && !removed.contains(&e.to))
                .copied()
                .collect();
            if remaining.is_empty() {
                break;
            }
            let residual = SwapGraph::new(remaining, self.timestamp).expect("non-empty residual");
            if !residual.is_cyclic() {
                break;
            }
            // Greedy choice: the vertex with the highest degree in the
            // residual graph (ties broken by address order for determinism).
            let mut degree: BTreeMap<Address, usize> = BTreeMap::new();
            for e in residual.edges() {
                *degree.entry(e.from).or_default() += 1;
                *degree.entry(e.to).or_default() += 1;
            }
            let victim = degree
                .iter()
                .max_by_key(|(addr, d)| (**d, std::cmp::Reverse(**addr)))
                .map(|(a, _)| *a)
                .expect("cyclic residual has vertices");
            removed.insert(victim);
        }
        removed.into_iter().collect()
    }

    /// Sequential deployment waves from a *set* of leaders: wave `k`
    /// contains the edges whose source is at directed distance `k` from the
    /// nearest leader (multi-source BFS). Edges unreachable from every
    /// leader form a final synthetic wave. This drives the Herlihy
    /// multi-leader baseline's sequential phases.
    pub fn waves_from_set(&self, leaders: &[Address]) -> Vec<Vec<SwapEdge>> {
        let adj = self.adjacency();
        let n = self.participants.len();
        let mut dist = vec![None; n];
        let mut queue = VecDeque::new();
        for leader in leaders {
            if let Ok(i) = self.participants.binary_search(leader) {
                if dist[i].is_none() {
                    dist[i] = Some(0u64);
                    queue.push_back(i);
                }
            }
        }
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("visited");
            for &v in &adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        let mut by_wave: BTreeMap<u64, Vec<SwapEdge>> = BTreeMap::new();
        let mut unreachable = Vec::new();
        for e in &self.edges {
            match dist[self.index_of(&e.from)] {
                Some(d) => by_wave.entry(d).or_default().push(*e),
                None => unreachable.push(*e),
            }
        }
        let mut waves: Vec<Vec<SwapEdge>> = by_wave.into_values().collect();
        if !unreachable.is_empty() {
            waves.push(unreachable);
        }
        waves
    }

    /// Number of sequential deployment waves from `leader`: the BFS level
    /// count over the directed graph starting at the leader. This drives the
    /// Herlihy baseline's sequential phases.
    pub fn waves_from(&self, leader: &Address) -> Vec<Vec<SwapEdge>> {
        // Wave k contains edges whose source is at directed distance k from
        // the leader (unreachable sources are appended as a final wave).
        let adj = self.adjacency();
        let n = self.participants.len();
        let start = self.index_of(leader);
        let mut dist = vec![None; n];
        dist[start] = Some(0u64);
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("visited");
            for &v in &adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        let mut by_wave: BTreeMap<u64, Vec<SwapEdge>> = BTreeMap::new();
        let mut unreachable = Vec::new();
        for e in &self.edges {
            match dist[self.index_of(&e.from)] {
                Some(d) => by_wave.entry(d).or_default().push(*e),
                None => unreachable.push(*e),
            }
        }
        let mut waves: Vec<Vec<SwapEdge>> = by_wave.into_values().collect();
        if !unreachable.is_empty() {
            waves.push(unreachable);
        }
        waves
    }
}

/// Construct the cyclic three-party example of Figure 7a:
/// A → B → C → A, each edge on its own chain.
pub fn figure7_cyclic(a: Address, b: Address, c: Address, chains: [ChainId; 3]) -> SwapGraph {
    SwapGraph::new(
        vec![
            SwapEdge { from: a, to: b, amount: 10, chain: chains[0] },
            SwapEdge { from: b, to: c, amount: 20, chain: chains[1] },
            SwapEdge { from: c, to: a, amount: 30, chain: chains[2] },
        ],
        1,
    )
    .expect("valid graph")
}

/// Construct the disconnected example of Figure 7b: two independent pairs
/// (A ⇄ B and C ⇄ D) committed as one atomic transaction.
pub fn figure7_disconnected(
    a: Address,
    b: Address,
    c: Address,
    d: Address,
    chains: [ChainId; 4],
) -> SwapGraph {
    SwapGraph::new(
        vec![
            SwapEdge { from: a, to: b, amount: 10, chain: chains[0] },
            SwapEdge { from: b, to: a, amount: 20, chain: chains[1] },
            SwapEdge { from: c, to: d, amount: 30, chain: chains[2] },
            SwapEdge { from: d, to: c, amount: 40, chain: chains[3] },
        ],
        1,
    )
    .expect("valid graph")
}

/// Build a ring graph of `n` participants (P0 → P1 → ... → Pn-1 → P0), each
/// edge on its own chain — the workload used to sweep the graph diameter in
/// the Figure 10 reproduction.
pub fn ring_graph(participants: &[Address], chains: &[ChainId], amount: Amount) -> SwapGraph {
    assert!(participants.len() >= 2, "a ring needs at least two participants");
    assert!(chains.len() >= participants.len(), "need one chain per edge");
    let edges = (0..participants.len())
        .map(|i| SwapEdge {
            from: participants[i],
            to: participants[(i + 1) % participants.len()],
            amount,
            chain: chains[i],
        })
        .collect();
    SwapGraph::new(edges, 1).expect("valid ring")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn names(n: usize) -> Vec<Address> {
        (0..n).map(|i| addr(format!("p{i}").as_bytes())).collect()
    }

    #[test]
    fn two_party_swap_shape() {
        let g =
            SwapGraph::two_party(addr(b"alice"), addr(b"bob"), 10, ChainId(0), 20, ChainId(1), 7)
                .unwrap();
        assert_eq!(g.participants().len(), 2);
        assert_eq!(g.contract_count(), 2);
        assert_eq!(g.diameter(), 2);
        assert_eq!(g.shape(), GraphShape::Cyclic);
        assert_eq!(g.chains(), vec![ChainId(0), ChainId(1)]);
    }

    #[test]
    fn invalid_graphs_rejected() {
        assert_eq!(SwapGraph::new(vec![], 1).unwrap_err(), GraphError::Empty);
        let a = addr(b"a");
        let b = addr(b"b");
        assert_eq!(
            SwapGraph::new(vec![SwapEdge { from: a, to: b, amount: 0, chain: ChainId(0) }], 1)
                .unwrap_err(),
            GraphError::ZeroAmount
        );
        assert_eq!(
            SwapGraph::new(vec![SwapEdge { from: a, to: a, amount: 5, chain: ChainId(0) }], 1)
                .unwrap_err(),
            GraphError::SelfLoop(a)
        );
    }

    #[test]
    fn canonical_bytes_distinguish_timestamp_and_edges() {
        let a = addr(b"a");
        let b = addr(b"b");
        let g1 = SwapGraph::two_party(a, b, 10, ChainId(0), 20, ChainId(1), 1).unwrap();
        let g2 = SwapGraph::two_party(a, b, 10, ChainId(0), 20, ChainId(1), 2).unwrap();
        let g3 = SwapGraph::two_party(a, b, 11, ChainId(0), 20, ChainId(1), 1).unwrap();
        assert_ne!(g1.digest(), g2.digest());
        assert_ne!(g1.digest(), g3.digest());
        assert_eq!(g1.digest(), g1.clone().digest());
    }

    #[test]
    fn multisign_requires_all_participants() {
        let alice = KeyPair::from_seed(b"alice");
        let bob = KeyPair::from_seed(b"bob");
        let g = SwapGraph::two_party(
            Address::from(alice.public()),
            Address::from(bob.public()),
            10,
            ChainId(0),
            20,
            ChainId(1),
            1,
        )
        .unwrap();
        assert!(g.multisign(&[alice, bob]).is_ok());
        assert!(matches!(
            g.multisign(&[alice]).unwrap_err(),
            GraphError::Multisig(MultisigError::MissingSigner(_))
        ));
    }

    #[test]
    fn figure7_cyclic_classification() {
        let g = figure7_cyclic(
            addr(b"a"),
            addr(b"b"),
            addr(b"c"),
            [ChainId(0), ChainId(1), ChainId(2)],
        );
        assert_eq!(g.shape(), GraphShape::Cyclic);
        assert!(g.is_cyclic());
        assert!(g.is_connected());
        // Removing any single vertex still leaves ... actually removing a
        // vertex from a 3-cycle leaves a path, which is acyclic; the paper's
        // Figure 7a is a more complex multi-cycle graph. What matters for
        // our reproduction: the full cycle exists.
        assert_eq!(g.diameter(), 3);
    }

    #[test]
    fn figure7_disconnected_classification() {
        let g = figure7_disconnected(
            addr(b"a"),
            addr(b"b"),
            addr(b"c"),
            addr(b"d"),
            [ChainId(0), ChainId(1), ChainId(2), ChainId(3)],
        );
        assert_eq!(g.shape(), GraphShape::Disconnected);
        assert!(!g.is_connected());
        assert_eq!(g.contract_count(), 4);
    }

    #[test]
    fn ring_diameter_equals_participant_count() {
        for n in 2..8usize {
            let ps = names(n);
            let chains: Vec<ChainId> = (0..n as u32).map(ChainId).collect();
            let g = ring_graph(&ps, &chains, 5);
            assert_eq!(g.diameter(), n as u64, "ring of {n}");
            assert_eq!(g.shape(), GraphShape::Cyclic);
        }
    }

    #[test]
    fn acyclic_chain_graph() {
        // A -> B -> C is acyclic with diameter 2.
        let ps = names(3);
        let g = SwapGraph::new(
            vec![
                SwapEdge { from: ps[0], to: ps[1], amount: 1, chain: ChainId(0) },
                SwapEdge { from: ps[1], to: ps[2], amount: 1, chain: ChainId(1) },
            ],
            1,
        )
        .unwrap();
        assert_eq!(g.shape(), GraphShape::Acyclic);
        assert_eq!(g.diameter(), 2);
        assert!(g.acyclic_without(&ps[0]));
    }

    #[test]
    fn acyclic_without_leader_detects_residual_cycles() {
        // Two-party swap: removing either participant removes all edges.
        let g =
            SwapGraph::two_party(addr(b"a"), addr(b"b"), 1, ChainId(0), 2, ChainId(1), 1).unwrap();
        assert!(g.acyclic_without(&addr(b"a")));
        // A 4-cycle with an extra 2-cycle not touching the leader stays
        // cyclic after removing the leader.
        let ps = names(4);
        let g = SwapGraph::new(
            vec![
                SwapEdge { from: ps[0], to: ps[1], amount: 1, chain: ChainId(0) },
                SwapEdge { from: ps[1], to: ps[2], amount: 1, chain: ChainId(1) },
                SwapEdge { from: ps[2], to: ps[1], amount: 1, chain: ChainId(2) },
                SwapEdge { from: ps[2], to: ps[3], amount: 1, chain: ChainId(3) },
            ],
            1,
        )
        .unwrap();
        assert!(!g.acyclic_without(&ps[0]), "B⇄C cycle survives removing A");
    }

    #[test]
    fn feedback_vertex_set_breaks_every_cycle() {
        // A 3-cycle needs at least one removal.
        let g = figure7_cyclic(
            addr(b"a"),
            addr(b"b"),
            addr(b"c"),
            [ChainId(0), ChainId(1), ChainId(2)],
        );
        let fvs = g.feedback_vertex_set();
        assert!(!fvs.is_empty());
        let residual: Vec<SwapEdge> = g
            .edges()
            .iter()
            .filter(|e| !fvs.contains(&e.from) && !fvs.contains(&e.to))
            .copied()
            .collect();
        if !residual.is_empty() {
            assert!(!SwapGraph::new(residual, 1).unwrap().is_cyclic());
        }
        // An acyclic chain needs no removals.
        let ps = names(3);
        let acyclic = SwapGraph::new(
            vec![
                SwapEdge { from: ps[0], to: ps[1], amount: 1, chain: ChainId(0) },
                SwapEdge { from: ps[1], to: ps[2], amount: 1, chain: ChainId(1) },
            ],
            1,
        )
        .unwrap();
        assert!(acyclic.feedback_vertex_set().is_empty());
    }

    #[test]
    fn feedback_vertex_set_handles_disconnected_multi_cycle_graphs() {
        // Two disjoint 2-cycles: one removal per component.
        let g = figure7_disconnected(
            addr(b"a"),
            addr(b"b"),
            addr(b"c"),
            addr(b"d"),
            [ChainId(0), ChainId(1), ChainId(2), ChainId(3)],
        );
        let fvs = g.feedback_vertex_set();
        assert_eq!(fvs.len(), 2, "one leader per 2-cycle: {fvs:?}");
    }

    #[test]
    fn waves_from_set_cover_all_edges_of_a_ring() {
        let ps = names(5);
        let chains: Vec<ChainId> = (0..5).map(ChainId).collect();
        let g = ring_graph(&ps, &chains, 5);
        let leaders = g.feedback_vertex_set();
        let waves = g.waves_from_set(&leaders);
        let total: usize = waves.iter().map(|w| w.len()).sum();
        assert_eq!(total, g.contract_count());
        // The first wave contains exactly the leaders' outgoing edges.
        assert!(waves[0].iter().all(|e| leaders.contains(&e.from)));
    }

    #[test]
    fn waves_from_set_mark_unreachable_edges_as_final_wave() {
        // Two disjoint 2-cycles with leaders from only one component.
        let g = figure7_disconnected(
            addr(b"a"),
            addr(b"b"),
            addr(b"c"),
            addr(b"d"),
            [ChainId(0), ChainId(1), ChainId(2), ChainId(3)],
        );
        let only_first_component = vec![addr(b"a")];
        let waves = g.waves_from_set(&only_first_component);
        let total: usize = waves.iter().map(|w| w.len()).sum();
        assert_eq!(total, 4, "every edge is placed in some wave");
        // The other component's edges are unreachable and land in the final wave.
        assert_eq!(waves.last().unwrap().len(), 2);
    }

    #[test]
    fn waves_partition_all_edges() {
        let ps = names(4);
        let chains: Vec<ChainId> = (0..4).map(ChainId).collect();
        let g = ring_graph(&ps, &chains, 5);
        let waves = g.waves_from(&ps[0]);
        let total: usize = waves.iter().map(|w| w.len()).sum();
        assert_eq!(total, g.contract_count());
        // The first wave contains exactly the leader's outgoing edge.
        assert_eq!(waves[0].len(), 1);
        assert_eq!(waves[0][0].from, ps[0]);
    }

    proptest! {
        #[test]
        fn prop_ring_graphs_are_valid_and_cyclic(n in 2usize..10) {
            let ps = names(n);
            let chains: Vec<ChainId> = (0..n as u32).map(ChainId).collect();
            let g = ring_graph(&ps, &chains, 1);
            prop_assert_eq!(g.contract_count(), n);
            prop_assert!(g.is_cyclic());
            prop_assert!(g.is_connected());
            prop_assert_eq!(g.diameter(), n as u64);
            // Every participant appears exactly once as a source.
            let sources: BTreeSet<Address> = g.edges().iter().map(|e| e.from).collect();
            prop_assert_eq!(sources.len(), n);
        }

        #[test]
        fn prop_digest_is_stable_under_reconstruction(n in 2usize..8, ts in 0u64..1000) {
            let ps = names(n);
            let chains: Vec<ChainId> = (0..n as u32).map(ChainId).collect();
            let edges: Vec<SwapEdge> = (0..n).map(|i| SwapEdge {
                from: ps[i],
                to: ps[(i + 1) % n],
                amount: (i + 1) as u64,
                chain: chains[i],
            }).collect();
            let g1 = SwapGraph::new(edges.clone(), ts).unwrap();
            let g2 = SwapGraph::new(edges, ts).unwrap();
            prop_assert_eq!(g1.digest(), g2.digest());
        }
    }
}
