//! The atomicity auditor: classifies the outcome of an AC2T run.
//!
//! The paper's correctness property (Section 3) is *all-or-nothing*: either
//! every sub-transaction's asset transfer takes place (every contract
//! redeemed) or none does (every published contract refunded, unpublished
//! contracts moot). The auditor inspects the terminal per-edge dispositions
//! and decides whether the property held — this is what experiment E6 counts
//! across fault scenarios.

use crate::protocol::{EdgeDisposition, EdgeOutcome};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The atomicity classification of a completed run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtomicityVerdict {
    /// Every edge's contract was redeemed: the AC2T committed atomically.
    AllRedeemed,
    /// Every published contract was refunded (and none redeemed): the AC2T
    /// aborted atomically.
    AllRefunded,
    /// Nothing was redeemed, but the abort has not fully settled either:
    /// some contracts are still locked in `P` (or were never published).
    /// Not a violation — no asset ended up on the "wrong" side — but not a
    /// completed swap either.
    Incomplete {
        /// Number of edges already refunded.
        refunded: usize,
        /// Number of edges still locked in state `P`.
        locked: usize,
        /// Number of edges never published.
        unpublished: usize,
    },
    /// The commit decision has taken effect on some edges while others are
    /// still locked (their recipients are crashed or partitioned away).
    /// Because AC3WN and AC3TW have no timelock, the locked assets remain
    /// redeemable by their rightful recipients — nothing is lost, so the
    /// all-or-nothing property still holds; the swap just has not finished.
    CommitPending {
        /// Number of edges already redeemed.
        redeemed: usize,
        /// Number of edges still locked in state `P`.
        locked: usize,
        /// Number of edges never published.
        unpublished: usize,
    },
    /// Conflicting terminal outcomes exist: some assets were redeemed while
    /// others were refunded — the all-or-nothing property was violated
    /// (somebody's asset ended up on the wrong side for good).
    Violated {
        /// Indices of redeemed edges.
        redeemed: Vec<usize>,
        /// Indices of refunded edges.
        refunded: Vec<usize>,
        /// Indices of edges still locked in `P`.
        locked: Vec<usize>,
        /// Indices of edges never published.
        unpublished: Vec<usize>,
    },
}

impl AtomicityVerdict {
    /// Classify a set of per-edge outcomes.
    pub fn from_outcomes(outcomes: &[EdgeOutcome]) -> Self {
        let mut redeemed = Vec::new();
        let mut refunded = Vec::new();
        let mut locked = Vec::new();
        let mut unpublished = Vec::new();
        for (i, o) in outcomes.iter().enumerate() {
            match o.disposition {
                EdgeDisposition::Redeemed => redeemed.push(i),
                EdgeDisposition::Refunded => refunded.push(i),
                EdgeDisposition::Locked => locked.push(i),
                EdgeDisposition::Unpublished => unpublished.push(i),
            }
        }
        let n = outcomes.len();
        if n > 0 && redeemed.len() == n {
            AtomicityVerdict::AllRedeemed
        } else if redeemed.is_empty() && !refunded.is_empty() && locked.is_empty() {
            // Every published contract was refunded; unpublished edges never
            // locked anything so nothing is lost.
            AtomicityVerdict::AllRefunded
        } else if redeemed.is_empty() {
            // Nothing redeemed: no asset can be on the wrong side, so this
            // is at worst an unfinished abort, never a violation.
            AtomicityVerdict::Incomplete {
                refunded: refunded.len(),
                locked: locked.len(),
                unpublished: unpublished.len(),
            }
        } else if refunded.is_empty() {
            // Something redeemed, nothing refunded: the remaining assets are
            // still locked and redeemable — a commit in progress.
            AtomicityVerdict::CommitPending {
                redeemed: redeemed.len(),
                locked: locked.len(),
                unpublished: unpublished.len(),
            }
        } else {
            AtomicityVerdict::Violated { redeemed, refunded, locked, unpublished }
        }
    }

    /// Whether the all-or-nothing property held. `Incomplete` counts as
    /// atomic (nothing irreversible happened), a `Violated` verdict does
    /// not.
    pub fn is_atomic(&self) -> bool {
        !matches!(self, AtomicityVerdict::Violated { .. })
    }

    /// Whether the swap actually completed (all assets changed hands).
    pub fn is_committed(&self) -> bool {
        matches!(self, AtomicityVerdict::AllRedeemed)
    }

    /// Whether the swap aborted cleanly.
    pub fn is_aborted(&self) -> bool {
        matches!(self, AtomicityVerdict::AllRefunded)
    }
}

impl fmt::Display for AtomicityVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicityVerdict::AllRedeemed => write!(f, "all-redeemed (committed)"),
            AtomicityVerdict::AllRefunded => write!(f, "all-refunded (aborted)"),
            AtomicityVerdict::Incomplete { refunded, locked, unpublished } => {
                write!(f, "incomplete ({refunded} refunded, {locked} locked, {unpublished} unpublished)")
            }
            AtomicityVerdict::CommitPending { redeemed, locked, unpublished } => write!(
                f,
                "commit pending ({redeemed} redeemed, {locked} still locked, {unpublished} unpublished)"
            ),
            AtomicityVerdict::Violated { redeemed, refunded, locked, unpublished } => write!(
                f,
                "ATOMICITY VIOLATED ({} redeemed, {} refunded, {} locked, {} unpublished)",
                redeemed.len(),
                refunded.len(),
                locked.len(),
                unpublished.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SwapEdge;
    use ac3_chain::{Address, ChainId};
    use ac3_crypto::KeyPair;
    use proptest::prelude::*;

    fn outcome(d: EdgeDisposition) -> EdgeOutcome {
        let a = Address::from(KeyPair::from_seed(b"a").public());
        let b = Address::from(KeyPair::from_seed(b"b").public());
        EdgeOutcome {
            edge: SwapEdge { from: a, to: b, amount: 1, chain: ChainId(0) },
            contract: None,
            disposition: d,
        }
    }

    #[test]
    fn all_redeemed_is_committed() {
        let v = AtomicityVerdict::from_outcomes(&[
            outcome(EdgeDisposition::Redeemed),
            outcome(EdgeDisposition::Redeemed),
        ]);
        assert_eq!(v, AtomicityVerdict::AllRedeemed);
        assert!(v.is_atomic());
        assert!(v.is_committed());
        assert!(!v.is_aborted());
    }

    #[test]
    fn all_refunded_is_aborted_even_with_unpublished() {
        let v = AtomicityVerdict::from_outcomes(&[
            outcome(EdgeDisposition::Refunded),
            outcome(EdgeDisposition::Unpublished),
        ]);
        assert_eq!(v, AtomicityVerdict::AllRefunded);
        assert!(v.is_atomic());
        assert!(v.is_aborted());
    }

    #[test]
    fn mixed_redeem_refund_is_violation() {
        let v = AtomicityVerdict::from_outcomes(&[
            outcome(EdgeDisposition::Redeemed),
            outcome(EdgeDisposition::Refunded),
        ]);
        assert!(!v.is_atomic());
        assert!(v.to_string().contains("VIOLATED"));
    }

    #[test]
    fn redeem_plus_locked_is_a_pending_commit_not_a_violation() {
        // One asset moved while another is still locked: nothing is on the
        // wrong side — the locked asset is still redeemable by its rightful
        // recipient (AC3WN has no timelock), so atomicity holds.
        let v = AtomicityVerdict::from_outcomes(&[
            outcome(EdgeDisposition::Redeemed),
            outcome(EdgeDisposition::Locked),
        ]);
        assert_eq!(v, AtomicityVerdict::CommitPending { redeemed: 1, locked: 1, unpublished: 0 });
        assert!(v.is_atomic());
        assert!(!v.is_committed());
        assert!(v.to_string().contains("commit pending"));
    }

    #[test]
    fn nothing_terminal_is_incomplete() {
        let v = AtomicityVerdict::from_outcomes(&[
            outcome(EdgeDisposition::Locked),
            outcome(EdgeDisposition::Unpublished),
        ]);
        assert_eq!(v, AtomicityVerdict::Incomplete { refunded: 0, locked: 1, unpublished: 1 });
        assert!(v.is_atomic());
        assert!(!v.is_committed());
    }

    #[test]
    fn partial_abort_is_incomplete_not_violated() {
        // A refund decision that has not yet reached every contract: no
        // asset moved to the wrong side, so atomicity still holds.
        let v = AtomicityVerdict::from_outcomes(&[
            outcome(EdgeDisposition::Refunded),
            outcome(EdgeDisposition::Locked),
        ]);
        assert_eq!(v, AtomicityVerdict::Incomplete { refunded: 1, locked: 1, unpublished: 0 });
        assert!(v.is_atomic());
        assert!(!v.is_aborted());
    }

    #[test]
    fn empty_outcome_list_is_incomplete() {
        let v = AtomicityVerdict::from_outcomes(&[]);
        assert_eq!(v, AtomicityVerdict::Incomplete { refunded: 0, locked: 0, unpublished: 0 });
    }

    proptest! {
        #[test]
        fn prop_verdict_is_atomic_iff_not_mixed(dispositions in proptest::collection::vec(0u8..4, 1..12)) {
            let outcomes: Vec<EdgeOutcome> = dispositions.iter().map(|d| outcome(match d {
                0 => EdgeDisposition::Unpublished,
                1 => EdgeDisposition::Locked,
                2 => EdgeDisposition::Redeemed,
                _ => EdgeDisposition::Refunded,
            })).collect();
            let redeemed = dispositions.iter().filter(|d| **d == 2).count();
            let refunded = dispositions.iter().filter(|d| **d == 3).count();
            let v = AtomicityVerdict::from_outcomes(&outcomes);
            // A violation is exactly the coexistence of conflicting terminal
            // outcomes: something redeemed AND something refunded.
            let expected_atomic = redeemed == 0 || refunded == 0;
            prop_assert_eq!(v.is_atomic(), expected_atomic);
        }
    }
}
