//! The AC3WN protocol (Section 4.2): atomic cross-chain commitment
//! coordinated by a permissionless witness network.
//!
//! The driver executes the paper's protocol steps over a simulated
//! [`Scenario`]:
//!
//! 1. all participants multisign the AC2T graph `(D, t)`;
//! 2. one participant registers `ms(D)` in a witness contract `SC_w`
//!    (Algorithm 3) on the witness chain and waits for the registration to
//!    be publicly recognised;
//! 3. **all participants deploy their asset contracts in parallel**
//!    (Algorithm 4 contracts conditioned on `SC_w`) — the key difference
//!    from the sequential baselines;
//! 4. once every deployment is stable, any participant submits
//!    `AuthorizeRedeem` with deployment evidence (or `AuthorizeRefund` if
//!    deployments are missing after a timeout) and waits until the decision
//!    block is buried under `d` blocks;
//! 5. all participants redeem (or refund) in parallel, presenting evidence
//!    of the witness decision.
//!
//! A final *recovery pass* lets participants who were crashed during step 5
//! complete their redemption later — the commitment property: once decided,
//! the outcome eventually takes effect, with no timelock to race against.

use crate::actions::{call_contract, deploy_contract, edge_disposition};
use crate::graph::GraphError;
use crate::protocol::{
    EdgeDisposition, EdgeOutcome, ProtocolConfig, ProtocolError, ProtocolKind, SwapReport,
};
use crate::scenario::Scenario;
use ac3_chain::{Address, ChainId, ContractId, TxId};
use ac3_contracts::{
    ContractCall, ContractSpec, ExpectedContract, PermissionlessCall, PermissionlessSpec,
    WitnessCall, WitnessSpec, WitnessStateEvidence,
};
use ac3_crypto::{KeyPair, WitnessState};
use ac3_sim::EventKind;

impl From<GraphError> for ProtocolError {
    fn from(e: GraphError) -> Self {
        ProtocolError::UnsupportedGraph(e.to_string())
    }
}

/// The AC3WN protocol driver.
#[derive(Debug, Clone, Default)]
pub struct Ac3wn {
    /// Driver configuration (depths, timeouts).
    pub config: ProtocolConfig,
}

impl Ac3wn {
    /// Create a driver with the given configuration.
    pub fn new(config: ProtocolConfig) -> Self {
        Ac3wn { config }
    }

    /// Execute the AC2T described by the scenario's graph.
    pub fn execute(&self, scenario: &mut Scenario) -> Result<SwapReport, ProtocolError> {
        let cfg = &self.config;
        let delta = scenario.world.delta_ms();
        let wait_cap = delta * cfg.wait_cap_deltas;
        let witness_chain = scenario.witness_chain;
        let started_at = scenario.world.now();
        let mut deployments = 0u64;
        let mut calls = 0u64;
        let mut fees = 0u64;

        // ------------------------------------------------------------------
        // Step 1: multisign the graph.
        // ------------------------------------------------------------------
        let keypairs: Vec<KeyPair> = scenario
            .graph
            .participants()
            .iter()
            .filter_map(|a| scenario.participants.by_address(a).map(|p| p.keypair()))
            .collect();
        let ms = scenario.graph.multisign(&keypairs)?;
        scenario.world.timeline.record(started_at, EventKind::GraphSigned);

        // ------------------------------------------------------------------
        // Step 2: register ms(D) in SC_w on the witness chain.
        // ------------------------------------------------------------------
        let mut expected = Vec::with_capacity(scenario.graph.contract_count());
        for e in scenario.graph.edges() {
            expected.push(ExpectedContract {
                chain: e.chain,
                sender: e.from,
                recipient: e.to,
                amount: e.amount,
                anchor: scenario.world.anchor(e.chain)?,
                required_depth: cfg.deployment_depth,
            });
        }
        let witness_spec = ContractSpec::Witness(WitnessSpec {
            participants: scenario.graph.participants().to_vec(),
            graph_digest: ms.digest(),
            expected_contracts: expected.clone(),
        });

        let Some(registrant) = self.first_available(scenario) else {
            return Ok(self.report(
                scenario,
                started_at,
                scenario.world.now(),
                None,
                &[],
                delta,
                0,
                0,
                0,
            ));
        };
        let Some((reg_txid, scw)) = deploy_contract(
            &mut scenario.world,
            &mut scenario.participants,
            &registrant,
            witness_chain,
            &witness_spec,
            0,
        )?
        else {
            return Ok(self.report(
                scenario,
                started_at,
                scenario.world.now(),
                None,
                &[],
                delta,
                0,
                0,
                0,
            ));
        };
        deployments += 1;
        fees += scenario.world.chain(witness_chain)?.params().deploy_fee;
        scenario.world.wait_for_depth(witness_chain, reg_txid, cfg.witness_depth, wait_cap)?;
        let registered_at = scenario.world.now();
        scenario.world.timeline.record(registered_at, EventKind::WitnessRegistered);

        // The stable witness-chain block every asset contract stores as its
        // evidence anchor. It precedes the authorize call by construction.
        let witness_anchor = scenario.world.anchor(witness_chain)?;

        // ------------------------------------------------------------------
        // Step 3: deploy all asset contracts in parallel.
        // ------------------------------------------------------------------
        let edges: Vec<_> = scenario.graph.edges().to_vec();
        let mut edge_deploys: Vec<Option<(TxId, ContractId)>> = Vec::with_capacity(edges.len());
        for e in &edges {
            let spec = ContractSpec::Permissionless(PermissionlessSpec {
                recipient: e.to,
                witness_chain,
                witness_contract: scw,
                min_depth: cfg.witness_depth,
                witness_anchor,
            });
            let deployed = deploy_contract(
                &mut scenario.world,
                &mut scenario.participants,
                &e.from,
                e.chain,
                &spec,
                e.amount,
            )?;
            if let Some((_, contract)) = &deployed {
                deployments += 1;
                fees += scenario.world.chain(e.chain)?.params().deploy_fee;
                scenario.world.timeline.record(
                    scenario.world.now(),
                    EventKind::ContractSubmitted { chain: e.chain, contract: *contract },
                );
            }
            edge_deploys.push(deployed);
        }

        // Wait for every submitted deployment to reach the required depth.
        let all_submitted = edge_deploys.iter().all(Option::is_some);
        let commit = if all_submitted {
            let deploys = edge_deploys.clone();
            let edges_for_wait = edges.clone();
            let depth = cfg.deployment_depth;
            scenario
                .world
                .advance_until("asset contract deployments to stabilise", wait_cap, move |w| {
                    deploys.iter().zip(&edges_for_wait).all(|(d, e)| match d {
                        Some((txid, _)) => w
                            .chain(e.chain)
                            .ok()
                            .and_then(|c| c.tx_depth(txid))
                            .is_some_and(|got| got >= depth),
                        None => false,
                    })
                })
                .is_ok()
        } else {
            // Someone declined or crashed before publishing: give the
            // configured grace period, then abort.
            scenario.world.advance(cfg.abort_after_deltas * delta);
            false
        };
        for (deployed, e) in edge_deploys.iter().zip(&edges) {
            if let Some((_, contract)) = deployed {
                scenario.world.timeline.record(
                    scenario.world.now(),
                    EventKind::ContractPublished { chain: e.chain, contract: *contract },
                );
            }
        }

        // ------------------------------------------------------------------
        // Step 4: change SC_w's state (the commit / abort decision).
        // ------------------------------------------------------------------
        let authorize_call = if commit {
            let mut evidence = Vec::with_capacity(edges.len());
            for (i, e) in edges.iter().enumerate() {
                let (txid, _) = edge_deploys[i].expect("commit implies all deployed");
                evidence.push(scenario.world.tx_evidence_since(
                    e.chain,
                    &expected[i].anchor,
                    txid,
                )?);
            }
            ContractCall::Witness(WitnessCall::AuthorizeRedeem { deployments: evidence })
        } else {
            ContractCall::Witness(WitnessCall::AuthorizeRefund)
        };

        let authorize_txid = self.submit_from_any(scenario, witness_chain, scw, &authorize_call)?;
        let Some(authorize_txid) = authorize_txid else {
            // Nobody could reach the witness chain at all; the swap stays
            // locked (assets recoverable once someone can submit a refund
            // authorization later — outside this run).
            let outcomes = self.collect_outcomes(scenario, &edges, &edge_deploys);
            let finished = scenario.world.now();
            return Ok(self.report(
                scenario,
                started_at,
                finished,
                None,
                &outcomes,
                delta,
                deployments,
                calls,
                fees,
            ));
        };
        calls += 1;
        fees += scenario.world.chain(witness_chain)?.params().call_fee;
        scenario.world.wait_for_depth(
            witness_chain,
            authorize_txid,
            cfg.witness_depth,
            wait_cap,
        )?;
        scenario.world.timeline.record(scenario.world.now(), EventKind::DecisionReached { commit });

        // ------------------------------------------------------------------
        // Step 5: redeem / refund all asset contracts in parallel.
        // ------------------------------------------------------------------
        let witness_evidence = WitnessStateEvidence {
            claimed: if commit {
                WitnessState::RedeemAuthorized
            } else {
                WitnessState::RefundAuthorized
            },
            inclusion: scenario.world.tx_evidence_since(
                witness_chain,
                &witness_anchor,
                authorize_txid,
            )?,
        };

        let mut settlements: Vec<Option<(ChainId, TxId)>> = vec![None; edges.len()];
        for (i, e) in edges.iter().enumerate() {
            let Some((_, contract)) = edge_deploys[i] else { continue };
            let (actor, call) = self.settlement_action(commit, e.from, e.to, &witness_evidence);
            if let Some(txid) = call_contract(
                &mut scenario.world,
                &mut scenario.participants,
                &actor,
                e.chain,
                contract,
                &call,
            )? {
                calls += 1;
                fees += scenario.world.chain(e.chain)?.params().call_fee;
                settlements[i] = Some((e.chain, txid));
            }
        }
        // Wait for every submitted settlement to stabilise; failures (e.g.
        // evidence rejected after a fork attack) simply leave the edge
        // locked and are reflected in the outcome audit.
        let pending = settlements.clone();
        let _ = scenario.world.advance_until("settlements to stabilise", wait_cap, move |w| {
            pending.iter().flatten().all(|(chain, txid)| {
                w.chain(*chain).ok().and_then(|c| c.tx_depth(txid)).is_some_and(|d| {
                    d >= w.chain(*chain).map(|c| c.params().stable_depth).unwrap_or(0)
                })
            })
        });
        for (i, e) in edges.iter().enumerate() {
            if let Some((_, contract)) = edge_deploys[i] {
                let kind = if commit {
                    EventKind::ContractRedeemed { chain: e.chain, contract }
                } else {
                    EventKind::ContractRefunded { chain: e.chain, contract }
                };
                if settlements[i].is_some() {
                    scenario.world.timeline.record(scenario.world.now(), kind);
                }
            }
        }
        let finished_at = scenario.world.now();

        // ------------------------------------------------------------------
        // Recovery pass: crashed participants eventually settle (commitment).
        // ------------------------------------------------------------------
        if cfg.allow_recovery_redemption {
            for _ in 0..cfg.wait_cap_deltas {
                let unsettled: Vec<usize> = (0..edges.len())
                    .filter(|i| {
                        edge_deploys[*i].is_some()
                            && edge_disposition(
                                &scenario.world,
                                edges[*i].chain,
                                edge_deploys[*i].map(|(_, c)| c),
                            ) == EdgeDisposition::Locked
                    })
                    .collect();
                if unsettled.is_empty() {
                    break;
                }
                scenario.world.advance(delta);
                for i in unsettled {
                    let e = &edges[i];
                    let Some((_, contract)) = edge_deploys[i] else { continue };
                    let (actor, call) =
                        self.settlement_action(commit, e.from, e.to, &witness_evidence);
                    if let Some(txid) = call_contract(
                        &mut scenario.world,
                        &mut scenario.participants,
                        &actor,
                        e.chain,
                        contract,
                        &call,
                    )? {
                        calls += 1;
                        fees += scenario.world.chain(e.chain)?.params().call_fee;
                        let _ = scenario.world.wait_for_inclusion(e.chain, txid, delta * 2);
                    }
                }
            }
        }

        let outcomes = self.collect_outcomes(scenario, &edges, &edge_deploys);
        Ok(self.report(
            scenario,
            started_at,
            finished_at,
            Some(commit),
            &outcomes,
            delta,
            deployments,
            calls,
            fees,
        ))
    }

    /// Choose the settlement action for one edge: the recipient redeems on
    /// commit, the sender refunds on abort.
    fn settlement_action(
        &self,
        commit: bool,
        sender: Address,
        recipient: Address,
        evidence: &WitnessStateEvidence,
    ) -> (Address, ContractCall) {
        if commit {
            (
                recipient,
                ContractCall::Permissionless(PermissionlessCall::Redeem {
                    evidence: evidence.clone(),
                }),
            )
        } else {
            (
                sender,
                ContractCall::Permissionless(PermissionlessCall::Refund {
                    evidence: evidence.clone(),
                }),
            )
        }
    }

    /// The first participant of the graph that is currently available.
    fn first_available(&self, scenario: &Scenario) -> Option<Address> {
        let now = scenario.world.now();
        scenario
            .graph
            .participants()
            .iter()
            .copied()
            .find(|a| scenario.participants.by_address(a).is_some_and(|p| p.is_available(now)))
    }

    /// Submit a call from whichever participant is first able to do so.
    fn submit_from_any(
        &self,
        scenario: &mut Scenario,
        chain: ChainId,
        contract: ContractId,
        call: &ContractCall,
    ) -> Result<Option<TxId>, ProtocolError> {
        for addr in scenario.graph.participants().to_vec() {
            if let Some(txid) = call_contract(
                &mut scenario.world,
                &mut scenario.participants,
                &addr,
                chain,
                contract,
                call,
            )? {
                return Ok(Some(txid));
            }
        }
        Ok(None)
    }

    fn collect_outcomes(
        &self,
        scenario: &Scenario,
        edges: &[crate::graph::SwapEdge],
        deploys: &[Option<(TxId, ContractId)>],
    ) -> Vec<EdgeOutcome> {
        edges
            .iter()
            .zip(deploys)
            .map(|(e, d)| {
                let contract = d.map(|(_, c)| c);
                EdgeOutcome {
                    edge: *e,
                    contract,
                    disposition: edge_disposition(&scenario.world, e.chain, contract),
                }
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        scenario: &Scenario,
        started_at: u64,
        finished_at: u64,
        decision: Option<bool>,
        outcomes: &[EdgeOutcome],
        delta: u64,
        deployments: u64,
        calls: u64,
        fees: u64,
    ) -> SwapReport {
        SwapReport {
            protocol: ProtocolKind::Ac3Wn,
            decision,
            edges: outcomes.to_vec(),
            started_at,
            finished_at,
            delta_ms: delta,
            deployments,
            calls,
            fees_paid: fees,
            timeline: scenario.world.timeline.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AtomicityVerdict;
    use crate::scenario::{
        figure7a_scenario, figure7b_scenario, ring_scenario, two_party_scenario, ScenarioConfig,
    };
    use ac3_sim::CrashWindow;

    fn default_driver() -> Ac3wn {
        Ac3wn::new(ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() })
    }

    #[test]
    fn two_party_swap_commits_atomically() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let alice = s.participants.get("alice").unwrap().address();
        let bob = s.participants.get("bob").unwrap().address();
        let chain_a = s.asset_chains[0];
        let chain_b = s.asset_chains[1];

        let report = default_driver().execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
        // Assets changed hands: Bob received 50 on chain A, Alice 80 on B.
        assert!(s.world.chain(chain_a).unwrap().balance_of(&bob) >= 1_000 + 50 - 10);
        assert!(s.world.chain(chain_b).unwrap().balance_of(&alice) >= 1_000 + 80 - 10);
        // N+1 deployments (2 asset contracts + SC_w), N+1 calls (2 redeems +
        // authorize).
        assert_eq!(report.deployments, 3);
        assert_eq!(report.calls, 3);
        assert!(report.is_atomic());
    }

    #[test]
    fn declined_deployment_leads_to_atomic_abort() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        // Bob crashes before deploying and never recovers.
        s.participants.get_mut("bob").unwrap().schedule_crash(CrashWindow::permanent(0));
        // Only the available participants matter for signing in this driver,
        // but the multisign helper requires all keypairs, which it has.
        let report = default_driver().execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(false));
        // Alice's contract is refunded, Bob's was never published: atomic.
        assert!(report.is_atomic());
        assert_eq!(report.verdict(), AtomicityVerdict::AllRefunded);
    }

    #[test]
    fn crash_during_redemption_does_not_violate_atomicity() {
        // The paper's motivating failure: the redeemer crashes after the
        // decision. Under AC3WN there is no timelock to race; Bob redeems
        // after recovery.
        let cfg = ScenarioConfig::default();
        let mut s = two_party_scenario(50, 80, &cfg);
        // Crash Bob from just before the decision until well afterwards.
        s.participants
            .get_mut("bob")
            .unwrap()
            .schedule_crash(CrashWindow { from: 20_000, until: 90_000 });
        let report = default_driver().execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert!(report.is_atomic(), "verdict: {}", report.verdict());
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
    }

    #[test]
    fn cyclic_graph_commits() {
        let mut s = figure7a_scenario(&ScenarioConfig::default());
        let report = default_driver().execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
        assert_eq!(report.deployments, 4); // 3 edges + SC_w
    }

    #[test]
    fn disconnected_graph_commits() {
        let mut s = figure7b_scenario(&ScenarioConfig::default());
        let report = default_driver().execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
        assert_eq!(report.deployments, 5); // 4 edges + SC_w
    }

    #[test]
    fn latency_is_independent_of_graph_diameter() {
        // The headline claim: latency stays ~4Δ as the diameter grows.
        let mut latencies = Vec::new();
        for n in [2usize, 4, 6] {
            let mut s = ring_scenario(n, 10, &ScenarioConfig::default());
            let report = default_driver().execute(&mut s).unwrap();
            assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "ring of {n}");
            latencies.push(report.latency_in_deltas());
        }
        let min = latencies.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = latencies.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min <= 1.0, "latency grew with diameter: {latencies:?}");
        assert!(max <= 6.0, "latency should stay near 4Δ, got {latencies:?}");
    }
}
