//! The AC3WN protocol (Section 4.2): atomic cross-chain commitment
//! coordinated by a permissionless witness network.
//!
//! The driver executes the paper's protocol steps over a simulated world:
//!
//! 1. all participants multisign the AC2T graph `(D, t)`;
//! 2. one participant registers `ms(D)` in a witness contract `SC_w`
//!    (Algorithm 3) on the witness chain and waits for the registration to
//!    be publicly recognised;
//! 3. **all participants deploy their asset contracts in parallel**
//!    (Algorithm 4 contracts conditioned on `SC_w`) — the key difference
//!    from the sequential baselines;
//! 4. once every deployment is stable, any participant submits
//!    `AuthorizeRedeem` with deployment evidence (or `AuthorizeRefund` if
//!    deployments are missing after a timeout) and waits until the decision
//!    block is buried under `d` blocks;
//! 5. all participants redeem (or refund) in parallel, presenting evidence
//!    of the witness decision.
//!
//! A final *recovery pass* lets participants who were crashed during step 5
//! complete their redemption later — the commitment property: once decided,
//! the outcome eventually takes effect, with no timelock to race against.
//!
//! The protocol logic lives in [`Ac3wnMachine`], a resumable step/poll
//! state machine (see [`crate::driver`]): each [`Ac3wnMachine::poll`] does
//! as much work as the current simulated instant allows and reports when
//! polling again is useful, so many AC2Ts can interleave over shared chains
//! under the [`crate::scheduler::Scheduler`]. [`Ac3wn::execute`] is the
//! single-swap wrapper that drives one machine to completion.

use crate::actions::edge_disposition;
use crate::driver::{drive, tx_at_depth, tx_stable, wait_timeout, Step, SwapMachine};
use crate::fee::{BidBook, BidChange};
use crate::graph::{GraphError, SwapEdge, SwapGraph};
use crate::protocol::{EdgeOutcome, ProtocolConfig, ProtocolError, ProtocolKind, SwapReport};
use crate::scenario::Scenario;
use ac3_chain::{Address, ChainId, ContractId, Timestamp, TxId};
use ac3_contracts::{
    ChainAnchor, ContractCall, ContractSpec, ExpectedContract, PermissionlessCall,
    PermissionlessSpec, WitnessCall, WitnessSpec, WitnessStateEvidence,
};
use ac3_crypto::{KeyPair, WitnessState};
use ac3_sim::{ChainApi, EventKind, ParticipantSet, Timeline};

impl From<GraphError> for ProtocolError {
    fn from(e: GraphError) -> Self {
        ProtocolError::UnsupportedGraph(e.to_string())
    }
}

/// The AC3WN protocol driver.
#[derive(Debug, Clone, Default)]
pub struct Ac3wn {
    /// Driver configuration (depths, timeouts).
    pub config: ProtocolConfig,
}

impl Ac3wn {
    /// Create a driver with the given configuration.
    pub fn new(config: ProtocolConfig) -> Self {
        Ac3wn { config }
    }

    /// Create a resumable state machine executing `graph` with `witness` as
    /// the witness chain (for use under a scheduler).
    pub fn machine(&self, graph: SwapGraph, witness: ChainId) -> Ac3wnMachine {
        Ac3wnMachine::new(self.config.clone(), graph, witness)
    }

    /// Execute the AC2T described by the scenario's graph (single-swap
    /// wrapper around [`Ac3wnMachine`]).
    pub fn execute(&self, scenario: &mut Scenario) -> Result<SwapReport, ProtocolError> {
        let mut machine = self.machine(scenario.graph.clone(), scenario.witness_chain);
        drive(&mut machine, &mut scenario.world, &mut scenario.participants)
    }
}

/// Phase of the AC3WN state machine. Waits carry the deadline computed when
/// the phase was entered, reproducing the blocking driver's capped waits.
#[derive(Debug)]
enum Phase {
    /// Nothing has happened yet; the first poll signs the graph and
    /// registers `SC_w`.
    Start,
    /// `SC_w` submitted; waiting for the registration to be buried.
    AwaitRegistration { reg_txid: TxId, deadline: Timestamp },
    /// All asset contracts submitted; waiting for every deployment to reach
    /// the required depth.
    AwaitDeployments { deadline: Timestamp },
    /// Some participant failed to publish; idling through the configured
    /// grace period before requesting an abort.
    AbortGrace { until: Timestamp },
    /// Nobody could reach the witness chain to submit the authorize call;
    /// retrying once per block interval until the wait cap. A partition
    /// that heals inside the cap converts what used to be a parked swap
    /// into a late decision instead.
    RetryAuthorize { commit: bool, deadline: Timestamp },
    /// Authorize call submitted; waiting for the decision to be buried.
    AwaitDecision { deadline: Timestamp },
    /// Settlement calls submitted; waiting for them to stabilise.
    AwaitSettlements { deadline: Timestamp },
    /// Recovery pass: idling one Δ before re-attempting unsettled edges.
    RecoveryIdle { rounds_left: u64, until: Timestamp },
    /// Recovery pass: waiting for re-attempted settlements to be included.
    AwaitRecoveryInclusion { rounds_left: u64, pending: Vec<(ChainId, TxId)>, deadline: Timestamp },
    /// Terminal.
    Finished,
}

/// The AC3WN protocol as a resumable state machine (see [`crate::driver`]).
#[derive(Debug)]
pub struct Ac3wnMachine {
    config: ProtocolConfig,
    graph: SwapGraph,
    witness_chain: ChainId,
    phase: Phase,
    timeline: Timeline,
    // Fixed at the first poll.
    started_at: Timestamp,
    delta: u64,
    wait_cap: u64,
    // Accumulated metrics.
    deployments: u64,
    calls: u64,
    fees: u64,
    fees_scheduled: u64,
    fee_rebids: u64,
    /// Live fee bids (one per submitted transaction), escalated each poll
    /// under the configured [`crate::fee::FeePolicy`].
    bids: BidBook,
    // Data carried across phases.
    edges: Vec<SwapEdge>,
    expected: Vec<ExpectedContract>,
    scw: Option<ContractId>,
    witness_anchor: Option<ChainAnchor>,
    edge_deploys: Vec<Option<(TxId, ContractId)>>,
    commit: Option<bool>,
    authorize_txid: Option<TxId>,
    witness_evidence: Option<WitnessStateEvidence>,
    settlements: Vec<Option<(ChainId, TxId)>>,
    finished_at: Option<Timestamp>,
    report: Option<SwapReport>,
}

impl Ac3wnMachine {
    /// Create a machine executing `graph` with `witness_chain` as witness.
    pub fn new(config: ProtocolConfig, graph: SwapGraph, witness_chain: ChainId) -> Self {
        let edges = graph.edges().to_vec();
        let n = edges.len();
        let bids = BidBook::new(config.fee_policy);
        Ac3wnMachine {
            config,
            graph,
            witness_chain,
            phase: Phase::Start,
            timeline: Timeline::new(),
            started_at: 0,
            delta: 0,
            wait_cap: 0,
            deployments: 0,
            calls: 0,
            fees: 0,
            fees_scheduled: 0,
            fee_rebids: 0,
            bids,
            edges,
            expected: Vec::new(),
            scw: None,
            witness_anchor: None,
            edge_deploys: Vec::new(),
            commit: None,
            authorize_txid: None,
            witness_evidence: None,
            settlements: vec![None; n],
            finished_at: None,
            report: None,
        }
    }

    fn record(&mut self, world: &mut dyn ChainApi, at: Timestamp, kind: EventKind) {
        self.timeline.record(at, kind.clone());
        world.record(at, kind);
    }

    fn poll_step(&self, world: &dyn ChainApi) -> Step {
        Step::Waiting { not_before: world.now() + world.min_block_interval_ms() }
    }

    /// Choose the settlement action for one edge: the recipient redeems on
    /// commit, the sender refunds on abort.
    fn settlement_action(
        commit: bool,
        sender: Address,
        recipient: Address,
        evidence: &WitnessStateEvidence,
    ) -> (Address, ContractCall) {
        if commit {
            (
                recipient,
                ContractCall::Permissionless(PermissionlessCall::Redeem {
                    evidence: evidence.clone(),
                }),
            )
        } else {
            (
                sender,
                ContractCall::Permissionless(PermissionlessCall::Refund {
                    evidence: evidence.clone(),
                }),
            )
        }
    }

    /// The first participant of the graph that is currently available.
    fn first_available(
        &self,
        world: &dyn ChainApi,
        participants: &ParticipantSet,
    ) -> Option<Address> {
        let now = world.now();
        self.graph
            .participants()
            .iter()
            .copied()
            .find(|a| participants.by_address(a).is_some_and(|p| p.is_available(now)))
    }

    /// Submit a call from whichever participant is first able to do so,
    /// opening a fee bid for it. Returns the txid and the opening fee.
    fn submit_from_any(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
        chain: ChainId,
        contract: ContractId,
        call: &ContractCall,
    ) -> Result<Option<(TxId, u64)>, ProtocolError> {
        for addr in self.graph.participants().to_vec() {
            if let Some(submitted) =
                self.bids.submit_call(world, participants, &addr, chain, contract, call)?
            {
                return Ok(Some(submitted));
            }
        }
        Ok(None)
    }

    /// Escalate stuck bids (replace-by-fee) and rewrite every stored copy
    /// of a superseded transaction/contract id.
    fn poll_bids(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<(), ProtocolError> {
        let changes = self.bids.poll(world, participants)?;
        for change in changes {
            self.apply_bid_change(&change);
        }
        Ok(())
    }

    fn apply_bid_change(&mut self, change: &BidChange) {
        change.apply_accounting(&mut self.fees, &mut self.fee_rebids);
        let (old, new) = (change.old_txid, change.new_txid);
        if change.deploy {
            if self.scw == Some(change.old_contract()) {
                self.scw = Some(change.new_contract());
            }
            for deploy in self.edge_deploys.iter_mut().flatten() {
                if deploy.0 == old {
                    *deploy = (new, change.new_contract());
                }
            }
        }
        if self.authorize_txid == Some(old) {
            self.authorize_txid = Some(new);
        }
        for settlement in self.settlements.iter_mut().flatten() {
            change.rewrite_txid(&mut settlement.1);
        }
        match &mut self.phase {
            Phase::AwaitRegistration { reg_txid, .. } if *reg_txid == old => *reg_txid = new,
            Phase::AwaitRecoveryInclusion { pending, .. } => {
                for entry in pending.iter_mut() {
                    change.rewrite_txid(&mut entry.1);
                }
            }
            _ => {}
        }
    }

    fn collect_outcomes(&self, world: &dyn ChainApi) -> Vec<EdgeOutcome> {
        self.edges
            .iter()
            .zip(&self.edge_deploys)
            .map(|(e, d)| {
                let contract = d.map(|(_, c)| c);
                EdgeOutcome {
                    edge: *e,
                    contract,
                    disposition: edge_disposition(world, e.chain, contract),
                }
            })
            .collect()
    }

    /// Indices of deployed edges whose contract is still locked in `P`.
    fn unsettled(&self, world: &dyn ChainApi) -> Vec<usize> {
        crate::driver::unsettled_edges(world, &self.edges, &self.edge_deploys)
    }

    fn finish(&mut self, world: &dyn ChainApi, decision: Option<bool>) -> Step {
        let outcomes = self.collect_outcomes(world);
        let finished_at = self.finished_at.unwrap_or_else(|| world.now());
        let report = SwapReport {
            protocol: ProtocolKind::Ac3Wn,
            decision,
            edges: outcomes,
            started_at: self.started_at,
            finished_at,
            delta_ms: self.delta,
            deployments: self.deployments,
            calls: self.calls,
            fees_paid: self.fees,
            fees_scheduled: self.fees_scheduled,
            fee_rebids: self.fee_rebids,
            timeline: self.timeline.clone(),
        };
        self.report = Some(report.clone());
        self.phase = Phase::Finished;
        Step::Done(Box::new(report))
    }

    /// Submit every asset-contract deployment (step 3), then pick the wait
    /// that follows: stabilisation when everyone published, the abort grace
    /// period otherwise.
    fn submit_deployments(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<(), ProtocolError> {
        let scw = self.scw.expect("witness contract registered before deployments");
        let witness_anchor = self.witness_anchor.expect("anchor fixed before deployments");
        for i in 0..self.edges.len() {
            let e = self.edges[i];
            let spec = ContractSpec::Permissionless(PermissionlessSpec {
                recipient: e.to,
                witness_chain: self.witness_chain,
                witness_contract: scw,
                min_depth: self.config.witness_depth,
                witness_anchor,
            });
            let deployed =
                self.bids.submit_deploy(world, participants, &e.from, e.chain, &spec, e.amount)?;
            let deployed = deployed.map(|(txid, contract, fee)| {
                self.deployments += 1;
                self.fees += fee;
                (txid, contract)
            });
            if let Some((_, contract)) = &deployed {
                self.fees_scheduled += world.chain(e.chain)?.params().deploy_fee;
                let now = world.now();
                self.record(
                    world,
                    now,
                    EventKind::ContractSubmitted { chain: e.chain, contract: *contract },
                );
            }
            self.edge_deploys.push(deployed);
        }
        let now = world.now();
        self.phase = if self.edge_deploys.iter().all(Option::is_some) {
            Phase::AwaitDeployments { deadline: now + self.wait_cap }
        } else {
            Phase::AbortGrace { until: now + self.config.abort_after_deltas * self.delta }
        };
        Ok(())
    }

    /// Record the publication events and submit the authorize call (step 4).
    /// When nobody can reach the witness chain, the swap does not park:
    /// it enters [`Phase::RetryAuthorize`] and re-attempts the submission
    /// until the wait cap expires.
    fn submit_authorize(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
        commit: bool,
    ) -> Result<(), ProtocolError> {
        self.commit = Some(commit);
        let now = world.now();
        for i in 0..self.edges.len() {
            if let Some((_, contract)) = self.edge_deploys[i] {
                let chain = self.edges[i].chain;
                self.record(world, now, EventKind::ContractPublished { chain, contract });
            }
        }
        if !self.try_submit_authorize(world, participants, commit)? {
            self.phase = Phase::RetryAuthorize { commit, deadline: now + self.wait_cap };
        }
        Ok(())
    }

    /// One attempt at submitting the authorize call. `Ok(true)` means the
    /// call is in flight and the machine moved to [`Phase::AwaitDecision`];
    /// `Ok(false)` means no participant could reach the witness chain right
    /// now (crashed, or the chain is partitioned) — the caller decides
    /// whether to retry.
    fn try_submit_authorize(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
        commit: bool,
    ) -> Result<bool, ProtocolError> {
        let authorize_call = if commit {
            let mut evidence = Vec::with_capacity(self.edges.len());
            for (i, e) in self.edges.iter().enumerate() {
                let (txid, _) = self.edge_deploys[i].expect("commit implies all deployed");
                evidence.push(world.tx_evidence_since(e.chain, &self.expected[i].anchor, txid)?);
            }
            ContractCall::Witness(WitnessCall::AuthorizeRedeem { deployments: evidence })
        } else {
            ContractCall::Witness(WitnessCall::AuthorizeRefund)
        };

        let scw = self.scw.expect("witness contract registered before authorize");
        let authorize =
            self.submit_from_any(world, participants, self.witness_chain, scw, &authorize_call)?;
        let Some((authorize_txid, fee)) = authorize else {
            return Ok(false);
        };
        self.calls += 1;
        self.fees += fee;
        self.fees_scheduled += world.chain(self.witness_chain)?.params().call_fee;
        self.authorize_txid = Some(authorize_txid);
        self.phase = Phase::AwaitDecision { deadline: world.now() + self.wait_cap };
        Ok(true)
    }

    /// Build the witness-state evidence and submit every settlement call
    /// (step 5).
    fn submit_settlements(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<(), ProtocolError> {
        let commit = self.commit.expect("decision reached before settlement");
        let authorize_txid = self.authorize_txid.expect("decision reached before settlement");
        let witness_anchor = self.witness_anchor.expect("anchor fixed before settlement");
        let evidence = WitnessStateEvidence {
            claimed: if commit {
                WitnessState::RedeemAuthorized
            } else {
                WitnessState::RefundAuthorized
            },
            inclusion: world.tx_evidence_since(
                self.witness_chain,
                &witness_anchor,
                authorize_txid,
            )?,
        };
        for i in 0..self.edges.len() {
            let e = self.edges[i];
            let Some((_, contract)) = self.edge_deploys[i] else { continue };
            let (actor, call) = Self::settlement_action(commit, e.from, e.to, &evidence);
            if let Some((txid, fee)) =
                self.bids.submit_call(world, participants, &actor, e.chain, contract, &call)?
            {
                self.calls += 1;
                self.fees += fee;
                self.fees_scheduled += world.chain(e.chain)?.params().call_fee;
                self.settlements[i] = Some((e.chain, txid));
            }
        }
        self.witness_evidence = Some(evidence);
        self.phase = Phase::AwaitSettlements { deadline: world.now() + self.wait_cap };
        Ok(())
    }

    /// Re-attempt settlement of the still-locked edges (recovery pass).
    fn attempt_recovery(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
        rounds_left: u64,
    ) -> Result<(), ProtocolError> {
        let commit = self.commit.expect("recovery follows a decision");
        let evidence = self.witness_evidence.clone().expect("recovery follows a decision");
        let mut pending = Vec::new();
        for i in self.unsettled(world) {
            let e = self.edges[i];
            let Some((_, contract)) = self.edge_deploys[i] else { continue };
            let (actor, call) = Self::settlement_action(commit, e.from, e.to, &evidence);
            if let Some((txid, fee)) =
                self.bids.submit_call(world, participants, &actor, e.chain, contract, &call)?
            {
                self.calls += 1;
                self.fees += fee;
                self.fees_scheduled += world.chain(e.chain)?.params().call_fee;
                pending.push((e.chain, txid));
            }
        }
        self.phase = if pending.is_empty() {
            self.next_recovery_phase(world, rounds_left)
        } else {
            Phase::AwaitRecoveryInclusion {
                rounds_left,
                pending,
                deadline: world.now() + self.delta * 2,
            }
        };
        Ok(())
    }

    /// Decide whether another recovery round is warranted.
    fn next_recovery_phase(&self, world: &dyn ChainApi, rounds_left: u64) -> Phase {
        if rounds_left == 0 || self.unsettled(world).is_empty() {
            Phase::Finished
        } else {
            Phase::RecoveryIdle { rounds_left, until: world.now() + self.delta }
        }
    }
}

impl SwapMachine for Ac3wnMachine {
    fn footprint(&self) -> crate::driver::MachineFootprint {
        // Asset chains from the graph plus the coordinating witness chain;
        // every graph participant may sign (deploys, redeems, recovery).
        let mut chains = self.graph.chains();
        if !chains.contains(&self.witness_chain) {
            chains.push(self.witness_chain);
        }
        crate::driver::MachineFootprint { chains, actors: self.graph.participants().to_vec() }
    }

    fn poll(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Step, ProtocolError> {
        if !matches!(self.phase, Phase::Finished) {
            // Fee market: re-bid any submission stuck behind higher bids
            // before doing phase work against possibly-stale ids.
            self.poll_bids(world, participants)?;
        }
        loop {
            match &self.phase {
                Phase::Start => {
                    let now = world.now();
                    self.started_at = now;
                    self.delta = world.delta_ms();
                    self.wait_cap = self.delta * self.config.wait_cap_deltas;

                    // Step 1: multisign the graph.
                    let keypairs: Vec<KeyPair> = self
                        .graph
                        .participants()
                        .iter()
                        .filter_map(|a| participants.by_address(a).map(|p| p.keypair()))
                        .collect();
                    let ms = self.graph.multisign(&keypairs)?;
                    self.record(world, now, EventKind::GraphSigned);

                    // Step 2: register ms(D) in SC_w on the witness chain.
                    let mut expected = Vec::with_capacity(self.graph.contract_count());
                    for e in &self.edges {
                        expected.push(ExpectedContract {
                            chain: e.chain,
                            sender: e.from,
                            recipient: e.to,
                            amount: e.amount,
                            anchor: world.anchor(e.chain)?,
                            required_depth: self.config.deployment_depth,
                        });
                    }
                    self.expected = expected;
                    let witness_spec = ContractSpec::Witness(WitnessSpec {
                        participants: self.graph.participants().to_vec(),
                        graph_digest: ms.digest(),
                        expected_contracts: self.expected.clone(),
                        operator: None,
                        stake: 0,
                    });

                    let Some(registrant) = self.first_available(world, participants) else {
                        return Ok(self.finish(world, None));
                    };
                    let Some((reg_txid, scw, fee)) = self.bids.submit_deploy(
                        world,
                        participants,
                        &registrant,
                        self.witness_chain,
                        &witness_spec,
                        0,
                    )?
                    else {
                        return Ok(self.finish(world, None));
                    };
                    self.deployments += 1;
                    self.fees += fee;
                    self.fees_scheduled += world.chain(self.witness_chain)?.params().deploy_fee;
                    self.scw = Some(scw);
                    self.phase =
                        Phase::AwaitRegistration { reg_txid, deadline: now + self.wait_cap };
                }
                Phase::AwaitRegistration { reg_txid, deadline } => {
                    let (reg_txid, deadline) = (*reg_txid, *deadline);
                    if tx_at_depth(world, self.witness_chain, &reg_txid, self.config.witness_depth)
                    {
                        let now = world.now();
                        self.record(world, now, EventKind::WitnessRegistered);
                        // The stable witness-chain block every asset contract
                        // stores as its evidence anchor. It precedes the
                        // authorize call by construction.
                        self.witness_anchor = Some(world.anchor(self.witness_chain)?);
                        self.submit_deployments(world, participants)?;
                    } else if world.now() >= deadline {
                        return Err(wait_timeout(
                            &format!("tx {reg_txid} at depth {}", self.config.witness_depth),
                            world.now(),
                        ));
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::AwaitDeployments { deadline } => {
                    let deadline = *deadline;
                    let all_deep = self.edge_deploys.iter().zip(&self.edges).all(|(d, e)| {
                        d.as_ref().is_some_and(|(txid, _)| {
                            tx_at_depth(world, e.chain, txid, self.config.deployment_depth)
                        })
                    });
                    if all_deep {
                        self.submit_authorize(world, participants, true)?;
                    } else if world.now() >= deadline {
                        // The deployments never stabilised within the cap:
                        // request an abort rather than fail the run.
                        self.submit_authorize(world, participants, false)?;
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::AbortGrace { until } => {
                    let until = *until;
                    if world.now() >= until {
                        self.submit_authorize(world, participants, false)?;
                    } else {
                        return Ok(Step::Waiting { not_before: until });
                    }
                }
                Phase::RetryAuthorize { commit, deadline } => {
                    let (commit, deadline) = (*commit, *deadline);
                    if self.try_submit_authorize(world, participants, commit)? {
                        continue; // now awaiting the decision
                    }
                    if world.now() >= deadline {
                        // The witness chain stayed unreachable for the whole
                        // wait cap; the swap stays locked (assets recoverable
                        // once someone can submit a refund authorization
                        // later — outside this run).
                        return Ok(self.finish(world, None));
                    }
                    return Ok(self.poll_step(world));
                }
                Phase::AwaitDecision { deadline } => {
                    let deadline = *deadline;
                    let txid = self.authorize_txid.expect("authorize submitted");
                    if tx_at_depth(world, self.witness_chain, &txid, self.config.witness_depth) {
                        let now = world.now();
                        let commit = self.commit.expect("decision chosen at authorize");
                        self.record(world, now, EventKind::DecisionReached { commit });
                        self.submit_settlements(world, participants)?;
                    } else if world.now() >= deadline {
                        return Err(wait_timeout(
                            &format!("tx {txid} at depth {}", self.config.witness_depth),
                            world.now(),
                        ));
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::AwaitSettlements { deadline } => {
                    let deadline = *deadline;
                    let all_stable = self
                        .settlements
                        .iter()
                        .flatten()
                        .all(|(chain, txid)| tx_stable(world, *chain, txid));
                    // Failures (e.g. evidence rejected after a fork attack)
                    // simply leave the edge locked and are reflected in the
                    // outcome audit — the wait gives up at the deadline.
                    if all_stable || world.now() >= deadline {
                        let commit = self.commit.expect("settlement follows a decision");
                        let now = world.now();
                        for i in 0..self.edges.len() {
                            let chain = self.edges[i].chain;
                            if let Some((_, contract)) = self.edge_deploys[i] {
                                if self.settlements[i].is_some() {
                                    let kind = if commit {
                                        EventKind::ContractRedeemed { chain, contract }
                                    } else {
                                        EventKind::ContractRefunded { chain, contract }
                                    };
                                    self.record(world, now, kind);
                                }
                            }
                        }
                        self.finished_at = Some(now);
                        self.phase = if self.config.allow_recovery_redemption {
                            self.next_recovery_phase(world, self.config.wait_cap_deltas)
                        } else {
                            Phase::Finished
                        };
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::RecoveryIdle { rounds_left, until } => {
                    let (rounds_left, until) = (*rounds_left, *until);
                    if world.now() >= until {
                        self.attempt_recovery(world, participants, rounds_left - 1)?;
                    } else {
                        return Ok(Step::Waiting { not_before: until });
                    }
                }
                Phase::AwaitRecoveryInclusion { rounds_left, pending, deadline } => {
                    let (rounds_left, deadline) = (*rounds_left, *deadline);
                    let all_included =
                        pending.iter().all(|(chain, txid)| tx_at_depth(world, *chain, txid, 0));
                    if all_included || world.now() >= deadline {
                        self.phase = self.next_recovery_phase(world, rounds_left);
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::Finished => {
                    if let Some(report) = &self.report {
                        return Ok(Step::Done(Box::new(report.clone())));
                    }
                    let decision = self.commit;
                    return Ok(self.finish(world, decision));
                }
            }
        }
    }

    fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Start => "start",
            Phase::AwaitRegistration { .. } => "await-registration",
            Phase::AwaitDeployments { .. } => "await-deployments",
            Phase::AbortGrace { .. } => "abort-grace",
            Phase::RetryAuthorize { .. } => "retry-authorize",
            Phase::AwaitDecision { .. } => "await-decision",
            Phase::AwaitSettlements { .. } => "await-settlements",
            Phase::RecoveryIdle { .. } => "recovery-idle",
            Phase::AwaitRecoveryInclusion { .. } => "recovery-inclusion",
            Phase::Finished => "finished",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AtomicityVerdict;
    use crate::scenario::{
        figure7a_scenario, figure7b_scenario, ring_scenario, two_party_scenario, ScenarioConfig,
    };
    use ac3_sim::CrashWindow;

    fn default_driver() -> Ac3wn {
        Ac3wn::new(ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() })
    }

    #[test]
    fn two_party_swap_commits_atomically() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let alice = s.participants.get("alice").unwrap().address();
        let bob = s.participants.get("bob").unwrap().address();
        let chain_a = s.asset_chains[0];
        let chain_b = s.asset_chains[1];

        let report = default_driver().execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
        // Assets changed hands: Bob received 50 on chain A, Alice 80 on B.
        assert!(s.world.chain(chain_a).unwrap().balance_of(&bob) >= 1_000 + 50 - 10);
        assert!(s.world.chain(chain_b).unwrap().balance_of(&alice) >= 1_000 + 80 - 10);
        // N+1 deployments (2 asset contracts + SC_w), N+1 calls (2 redeems +
        // authorize).
        assert_eq!(report.deployments, 3);
        assert_eq!(report.calls, 3);
        assert!(report.is_atomic());
    }

    #[test]
    fn declined_deployment_leads_to_atomic_abort() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        // Bob crashes before deploying and never recovers.
        s.participants.get_mut("bob").unwrap().schedule_crash(CrashWindow::permanent(0));
        // Only the available participants matter for signing in this driver,
        // but the multisign helper requires all keypairs, which it has.
        let report = default_driver().execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(false));
        // Alice's contract is refunded, Bob's was never published: atomic.
        assert!(report.is_atomic());
        assert_eq!(report.verdict(), AtomicityVerdict::AllRefunded);
    }

    #[test]
    fn crash_during_redemption_does_not_violate_atomicity() {
        // The paper's motivating failure: the redeemer crashes after the
        // decision. Under AC3WN there is no timelock to race; Bob redeems
        // after recovery.
        let cfg = ScenarioConfig::default();
        let mut s = two_party_scenario(50, 80, &cfg);
        // Crash Bob from just before the decision until well afterwards.
        s.participants
            .get_mut("bob")
            .unwrap()
            .schedule_crash(CrashWindow { from: 20_000, until: 90_000 });
        let report = default_driver().execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert!(report.is_atomic(), "verdict: {}", report.verdict());
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
    }

    #[test]
    fn cyclic_graph_commits() {
        let mut s = figure7a_scenario(&ScenarioConfig::default());
        let report = default_driver().execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
        assert_eq!(report.deployments, 4); // 3 edges + SC_w
    }

    #[test]
    fn disconnected_graph_commits() {
        let mut s = figure7b_scenario(&ScenarioConfig::default());
        let report = default_driver().execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
        assert_eq!(report.deployments, 5); // 4 edges + SC_w
    }

    #[test]
    fn latency_is_independent_of_graph_diameter() {
        // The headline claim: latency stays ~4Δ as the diameter grows.
        let mut latencies = Vec::new();
        for n in [2usize, 4, 6] {
            let mut s = ring_scenario(n, 10, &ScenarioConfig::default());
            let report = default_driver().execute(&mut s).unwrap();
            assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "ring of {n}");
            latencies.push(report.latency_in_deltas());
        }
        let min = latencies.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = latencies.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min <= 1.0, "latency grew with diameter: {latencies:?}");
        assert!(max <= 6.0, "latency should stay near 4Δ, got {latencies:?}");
    }

    #[test]
    fn machine_reports_phase_progression() {
        // The machine is observable mid-flight: phases advance monotonically
        // through the protocol steps while the caller owns the clock.
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let driver = default_driver();
        let mut machine = driver.machine(s.graph.clone(), s.witness_chain);
        assert_eq!(machine.phase_name(), "start");
        let mut seen = vec![machine.phase_name()];
        let report = loop {
            match machine.poll(&mut s.world, &mut s.participants).unwrap() {
                Step::Done(report) => break report,
                Step::Waiting { not_before } => {
                    if *seen.last().unwrap() != machine.phase_name() {
                        seen.push(machine.phase_name());
                    }
                    let dt = not_before.saturating_sub(s.world.now()).max(1);
                    s.world.advance(dt);
                }
            }
        };
        assert_eq!(report.decision, Some(true));
        assert!(seen.contains(&"await-registration"), "saw phases {seen:?}");
        assert!(seen.contains(&"await-deployments"), "saw phases {seen:?}");
        assert!(seen.contains(&"await-decision"), "saw phases {seen:?}");
        assert_eq!(machine.phase_name(), "finished");
        // Terminal polls are idempotent.
        match machine.poll(&mut s.world, &mut s.participants).unwrap() {
            Step::Done(again) => assert_eq!(again.finished_at, report.finished_at),
            Step::Waiting { .. } => panic!("terminal machine must stay done"),
        }
    }
}
