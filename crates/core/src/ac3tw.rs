//! The AC3TW protocol (Section 4.1): atomic cross-chain commitment
//! coordinated by a *centralized trusted witness* ("Trent").
//!
//! Trent keeps a key/value store from registered graph multisignatures
//! `ms(D)` to the decision signature he has issued (if any). Because he
//! issues at most one of `T(ms(D), RD)` / `T(ms(D), RF)` per registered
//! graph, the redemption and refund commitment schemes of the asset
//! contracts (Algorithm 2) are mutually exclusive and the protocol is
//! atomic — *provided Trent is trusted, available and honest*, which is
//! exactly the assumption AC3WN removes.
//!
//! Like the other drivers, the protocol logic lives in a resumable
//! step/poll state machine ([`Ac3twMachine`], see [`crate::driver`]);
//! [`Ac3tw::execute`] is the single-swap wrapper.

use crate::actions::edge_disposition;
use crate::driver::{drive, tx_at_depth, tx_stable, Step, SwapMachine};
use crate::fee::{BidBook, BidChange};
use crate::graph::{SwapEdge, SwapGraph};
use crate::protocol::{EdgeOutcome, ProtocolConfig, ProtocolError, ProtocolKind, SwapReport};
use crate::scenario::Scenario;
use ac3_chain::{ChainId, ContractId, Timestamp, TxId};
use ac3_contracts::{CentralizedCall, CentralizedSpec, ContractCall, ContractSpec};
use ac3_crypto::{Hash256, KeyPair, Signature, SignatureLock, WitnessDecision};
use ac3_sim::{ChainApi, EventKind, ParticipantSet, Timeline};
use std::collections::BTreeMap;

/// Errors returned by Trent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrentError {
    /// The graph multisignature is already registered.
    AlreadyRegistered,
    /// The graph multisignature is not registered.
    NotRegistered,
    /// A decision has already been issued for this graph.
    AlreadyDecided(WitnessDecision),
    /// Trent refuses the redemption because not every contract is deployed
    /// and correct.
    VerificationFailed(String),
    /// Trent is unavailable (crashed or under denial-of-service) — the
    /// single-point-of-failure the paper warns about.
    Unavailable,
}

impl std::fmt::Display for TrentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrentError::AlreadyRegistered => write!(f, "graph already registered"),
            TrentError::NotRegistered => write!(f, "graph not registered"),
            TrentError::AlreadyDecided(d) => write!(f, "already decided: {d:?}"),
            TrentError::VerificationFailed(m) => write!(f, "verification failed: {m}"),
            TrentError::Unavailable => write!(f, "trusted witness unavailable"),
        }
    }
}

impl std::error::Error for TrentError {}

/// The centralized trusted witness.
#[derive(Debug)]
pub struct Trent {
    keypair: KeyPair,
    /// `ms(D)` digest → issued decision (if any).
    registry: BTreeMap<Hash256, Option<WitnessDecision>>,
    /// Availability flag: when `false`, every request fails (models the DoS
    /// / crash vulnerability of a centralized coordinator).
    pub available: bool,
}

impl Default for Trent {
    fn default() -> Self {
        Self::new()
    }
}

impl Trent {
    /// Create a fresh witness with a deterministic key.
    pub fn new() -> Self {
        Trent {
            keypair: KeyPair::from_seed(b"trent-the-trusted-witness"),
            registry: BTreeMap::new(),
            available: true,
        }
    }

    /// Trent's public key `PK_T`, embedded in every Algorithm 2 contract.
    pub fn public_key(&self) -> ac3_crypto::PublicKey {
        self.keypair.public()
    }

    /// Register a graph multisignature (protocol step 2).
    pub fn register(&mut self, graph_digest: Hash256) -> Result<(), TrentError> {
        if !self.available {
            return Err(TrentError::Unavailable);
        }
        if self.registry.contains_key(&graph_digest) {
            return Err(TrentError::AlreadyRegistered);
        }
        self.registry.insert(graph_digest, None);
        Ok(())
    }

    /// Request the redemption signature. `all_contracts_published` is the
    /// result of Trent's own verification that every contract in the AC2T is
    /// deployed, in state `P`, and conditioned on `(ms(D), PK_T)` — as a
    /// trusted full node he checks this directly against the chains.
    pub fn request_redeem(
        &mut self,
        graph_digest: Hash256,
        all_contracts_published: bool,
    ) -> Result<Signature, TrentError> {
        if !self.available {
            return Err(TrentError::Unavailable);
        }
        match self.registry.get(&graph_digest) {
            None => Err(TrentError::NotRegistered),
            Some(Some(decision)) => {
                if *decision == WitnessDecision::Redeem {
                    Ok(self.sign(graph_digest, WitnessDecision::Redeem))
                } else {
                    Err(TrentError::AlreadyDecided(*decision))
                }
            }
            Some(None) => {
                if !all_contracts_published {
                    return Err(TrentError::VerificationFailed(
                        "not all contracts in the AC2T are published and correct".to_string(),
                    ));
                }
                self.registry.insert(graph_digest, Some(WitnessDecision::Redeem));
                Ok(self.sign(graph_digest, WitnessDecision::Redeem))
            }
        }
    }

    /// Request the refund signature.
    pub fn request_refund(&mut self, graph_digest: Hash256) -> Result<Signature, TrentError> {
        if !self.available {
            return Err(TrentError::Unavailable);
        }
        match self.registry.get(&graph_digest) {
            None => Err(TrentError::NotRegistered),
            Some(Some(decision)) => {
                if *decision == WitnessDecision::Refund {
                    Ok(self.sign(graph_digest, WitnessDecision::Refund))
                } else {
                    Err(TrentError::AlreadyDecided(*decision))
                }
            }
            Some(None) => {
                self.registry.insert(graph_digest, Some(WitnessDecision::Refund));
                Ok(self.sign(graph_digest, WitnessDecision::Refund))
            }
        }
    }

    fn sign(&self, graph_digest: Hash256, decision: WitnessDecision) -> Signature {
        self.keypair.sign(&SignatureLock::signed_message(&graph_digest, decision))
    }
}

/// The AC3TW protocol driver.
#[derive(Debug, Clone, Default)]
pub struct Ac3tw {
    /// Driver configuration.
    pub config: ProtocolConfig,
    /// Whether Trent is available during the run (set to `false` to model
    /// the centralized witness being down).
    pub trent_available: bool,
}

impl Ac3tw {
    /// Create a driver with an available Trent.
    pub fn new(config: ProtocolConfig) -> Self {
        Ac3tw { config, trent_available: true }
    }

    /// Create a resumable state machine executing `graph` (for use under a
    /// scheduler). Each machine talks to its own Trent instance.
    pub fn machine(&self, graph: SwapGraph) -> Ac3twMachine {
        Ac3twMachine::new(self.config.clone(), graph, self.trent_available)
    }

    /// Execute the AC2T described by the scenario's graph (single-swap
    /// wrapper around [`Ac3twMachine`]).
    pub fn execute(&self, scenario: &mut Scenario) -> Result<SwapReport, ProtocolError> {
        let mut machine = self.machine(scenario.graph.clone());
        drive(&mut machine, &mut scenario.world, &mut scenario.participants)
    }
}

/// Phase of the AC3TW state machine.
#[derive(Debug)]
enum Phase {
    /// Nothing has happened yet; the first poll signs, registers with Trent
    /// and submits every deployment.
    Start,
    /// Waiting for every deployment to reach the required depth.
    AwaitDeployments { deadline: Timestamp },
    /// Some participant failed to publish; idling through the grace period
    /// before asking Trent for a refund decision.
    AbortGrace { until: Timestamp },
    /// Settlement calls submitted; waiting for them to stabilise.
    AwaitSettlements { deadline: Timestamp },
    /// Recovery pass: idling one Δ before re-attempting unsettled edges.
    RecoveryIdle { rounds_left: u64, until: Timestamp },
    /// Recovery pass: waiting for re-attempted settlements to be included.
    AwaitRecoveryInclusion { rounds_left: u64, pending: Vec<(ChainId, TxId)>, deadline: Timestamp },
    /// Terminal.
    Finished,
}

/// The AC3TW protocol as a resumable state machine (see [`crate::driver`]).
#[derive(Debug)]
pub struct Ac3twMachine {
    config: ProtocolConfig,
    graph: SwapGraph,
    trent: Trent,
    registered: bool,
    graph_digest: Hash256,
    phase: Phase,
    timeline: Timeline,
    started_at: Timestamp,
    delta: u64,
    wait_cap: u64,
    deployments: u64,
    calls: u64,
    fees: u64,
    fees_scheduled: u64,
    fee_rebids: u64,
    /// Live fee bids, escalated each poll under the configured policy.
    bids: BidBook,
    edges: Vec<SwapEdge>,
    edge_deploys: Vec<Option<(TxId, ContractId)>>,
    decision: Option<bool>,
    signature: Option<Signature>,
    settlements: Vec<Option<(ChainId, TxId)>>,
    finished_at: Option<Timestamp>,
    report: Option<SwapReport>,
}

impl Ac3twMachine {
    /// Create a machine executing `graph` against a fresh Trent.
    pub fn new(config: ProtocolConfig, graph: SwapGraph, trent_available: bool) -> Self {
        let edges = graph.edges().to_vec();
        let n = edges.len();
        let mut trent = Trent::new();
        trent.available = trent_available;
        let bids = BidBook::new(config.fee_policy);
        Ac3twMachine {
            config,
            graph,
            trent,
            registered: false,
            graph_digest: Hash256::default(),
            phase: Phase::Start,
            timeline: Timeline::new(),
            started_at: 0,
            delta: 0,
            wait_cap: 0,
            deployments: 0,
            calls: 0,
            fees: 0,
            fees_scheduled: 0,
            fee_rebids: 0,
            bids,
            edges,
            edge_deploys: Vec::new(),
            decision: None,
            signature: None,
            settlements: vec![None; n],
            finished_at: None,
            report: None,
        }
    }

    fn record(&mut self, world: &mut dyn ChainApi, at: Timestamp, kind: EventKind) {
        self.timeline.record(at, kind.clone());
        world.record(at, kind);
    }

    fn poll_step(&self, world: &dyn ChainApi) -> Step {
        Step::Waiting { not_before: world.now() + world.min_block_interval_ms() }
    }

    fn settlement_call(
        commit: bool,
        e: &SwapEdge,
        sig: Signature,
    ) -> (ac3_chain::Address, ContractCall) {
        if commit {
            (e.to, ContractCall::Centralized(CentralizedCall::Redeem { signature: sig }))
        } else {
            (e.from, ContractCall::Centralized(CentralizedCall::Refund { signature: sig }))
        }
    }

    fn unsettled(&self, world: &dyn ChainApi) -> Vec<usize> {
        crate::driver::unsettled_edges(world, &self.edges, &self.edge_deploys)
    }

    /// Escalate stuck bids (replace-by-fee) and rewrite every stored copy
    /// of a superseded transaction/contract id.
    fn poll_bids(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<(), ProtocolError> {
        let changes = self.bids.poll(world, participants)?;
        for change in changes {
            self.apply_bid_change(&change);
        }
        Ok(())
    }

    fn apply_bid_change(&mut self, change: &BidChange) {
        change.apply_accounting(&mut self.fees, &mut self.fee_rebids);
        let (old, new) = (change.old_txid, change.new_txid);
        if change.deploy {
            for deploy in self.edge_deploys.iter_mut().flatten() {
                if deploy.0 == old {
                    *deploy = (new, change.new_contract());
                }
            }
        }
        for settlement in self.settlements.iter_mut().flatten() {
            change.rewrite_txid(&mut settlement.1);
        }
        if let Phase::AwaitRecoveryInclusion { pending, .. } = &mut self.phase {
            for entry in pending.iter_mut() {
                if entry.1 == old {
                    entry.1 = new;
                }
            }
        }
    }

    fn finish(&mut self, world: &dyn ChainApi) -> Step {
        let outcomes: Vec<EdgeOutcome> = self
            .edges
            .iter()
            .zip(&self.edge_deploys)
            .map(|(e, d)| {
                let contract = d.map(|(_, c)| c);
                EdgeOutcome {
                    edge: *e,
                    contract,
                    disposition: edge_disposition(world, e.chain, contract),
                }
            })
            .collect();
        let report = SwapReport {
            protocol: ProtocolKind::Ac3Tw,
            decision: self.decision,
            edges: outcomes,
            started_at: self.started_at,
            finished_at: self.finished_at.unwrap_or_else(|| world.now()),
            delta_ms: self.delta,
            deployments: self.deployments,
            calls: self.calls,
            fees_paid: self.fees,
            fees_scheduled: self.fees_scheduled,
            fee_rebids: self.fee_rebids,
            timeline: self.timeline.clone(),
        };
        self.report = Some(report.clone());
        self.phase = Phase::Finished;
        Step::Done(Box::new(report))
    }

    /// Step 3: ask Trent for a decision (he verifies the deployments himself
    /// as a trusted observer of all chains), then submit every settlement.
    fn decide_and_settle(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
        stable: bool,
    ) -> Result<(), ProtocolError> {
        let all_published = stable
            && self.edge_deploys.iter().zip(&self.edges).all(|(d, e)| {
                d.is_some_and(|(_, contract)| {
                    world.contract_state(e.chain, contract).is_some_and(|(tag, _)| tag == "P")
                })
            });
        let (decision, sig) = if !self.registered {
            (None, None)
        } else if all_published {
            match self.trent.request_redeem(self.graph_digest, true) {
                Ok(sig) => (Some(true), Some(sig)),
                Err(_) => (None, None),
            }
        } else {
            match self.trent.request_refund(self.graph_digest) {
                Ok(sig) => (Some(false), Some(sig)),
                Err(_) => (None, None),
            }
        };
        self.decision = decision;
        self.signature = sig;
        if let Some(commit) = decision {
            let now = world.now();
            self.record(world, now, EventKind::DecisionReached { commit });
        }
        self.finished_at = Some(world.now());

        let (Some(commit), Some(sig)) = (decision, sig) else {
            // No decision could be produced (unregistered graph or an
            // unavailable Trent): every asset stays locked.
            self.phase = Phase::Finished;
            return Ok(());
        };

        // Step 4: settle every published contract with Trent's signature.
        for i in 0..self.edges.len() {
            let e = self.edges[i];
            let Some((_, contract)) = self.edge_deploys[i] else { continue };
            let (actor, call) = Self::settlement_call(commit, &e, sig);
            if let Some((txid, fee)) =
                self.bids.submit_call(world, participants, &actor, e.chain, contract, &call)?
            {
                self.calls += 1;
                self.fees += fee;
                self.fees_scheduled += world.chain(e.chain)?.params().call_fee;
                self.settlements[i] = Some((e.chain, txid));
            }
        }
        self.phase = Phase::AwaitSettlements { deadline: world.now() + self.wait_cap };
        Ok(())
    }

    /// Re-attempt settlement of the still-locked edges (recovery pass):
    /// Trent's signature has no expiry, so recovered participants settle
    /// late without losing assets.
    fn attempt_recovery(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
        rounds_left: u64,
    ) -> Result<(), ProtocolError> {
        let commit = self.decision.expect("recovery follows a decision");
        let sig = self.signature.expect("recovery follows a decision");
        let mut pending = Vec::new();
        for i in self.unsettled(world) {
            let e = self.edges[i];
            let Some((_, contract)) = self.edge_deploys[i] else { continue };
            let (actor, call) = Self::settlement_call(commit, &e, sig);
            if let Some((txid, fee)) =
                self.bids.submit_call(world, participants, &actor, e.chain, contract, &call)?
            {
                self.calls += 1;
                self.fees += fee;
                self.fees_scheduled += world.chain(e.chain)?.params().call_fee;
                pending.push((e.chain, txid));
            }
        }
        self.phase = if pending.is_empty() {
            self.next_recovery_phase(world, rounds_left)
        } else {
            Phase::AwaitRecoveryInclusion {
                rounds_left,
                pending,
                deadline: world.now() + self.delta * 2,
            }
        };
        Ok(())
    }

    fn next_recovery_phase(&self, world: &dyn ChainApi, rounds_left: u64) -> Phase {
        if rounds_left == 0 || self.unsettled(world).is_empty() {
            Phase::Finished
        } else {
            Phase::RecoveryIdle { rounds_left, until: world.now() + self.delta }
        }
    }
}

impl SwapMachine for Ac3twMachine {
    fn footprint(&self) -> crate::driver::MachineFootprint {
        // Only the graph's asset chains: Trent is an off-chain coordinator
        // embedded in the machine, not a world resource.
        crate::driver::MachineFootprint {
            chains: self.graph.chains(),
            actors: self.graph.participants().to_vec(),
        }
    }

    fn poll(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Step, ProtocolError> {
        if !matches!(self.phase, Phase::Finished) {
            // Fee market: re-bid any submission stuck behind higher bids
            // before doing phase work against possibly-stale ids.
            self.poll_bids(world, participants)?;
        }
        loop {
            match &self.phase {
                Phase::Start => {
                    let now = world.now();
                    self.started_at = now;
                    self.delta = world.delta_ms();
                    self.wait_cap = self.delta * self.config.wait_cap_deltas;

                    // Step 1: multisign the graph and register it with Trent.
                    let keypairs: Vec<KeyPair> = self
                        .graph
                        .participants()
                        .iter()
                        .filter_map(|a| participants.by_address(a).map(|p| p.keypair()))
                        .collect();
                    let ms = self.graph.multisign(&keypairs)?;
                    self.graph_digest = ms.digest();
                    self.record(world, now, EventKind::GraphSigned);
                    self.registered = self.trent.register(self.graph_digest).is_ok();
                    if self.registered {
                        self.record(world, now, EventKind::WitnessRegistered);
                    }

                    // Step 2: all participants deploy their Algorithm 2
                    // contracts in parallel (AC3TW also allows concurrent
                    // publication).
                    let witness_key = self.trent.public_key();
                    for i in 0..self.edges.len() {
                        let e = self.edges[i];
                        let spec = ContractSpec::Centralized(CentralizedSpec {
                            recipient: e.to,
                            graph_digest: self.graph_digest,
                            witness_key,
                        });
                        let deployed = self.bids.submit_deploy(
                            world,
                            participants,
                            &e.from,
                            e.chain,
                            &spec,
                            e.amount,
                        )?;
                        let deployed = deployed.map(|(txid, contract, fee)| {
                            self.deployments += 1;
                            self.fees += fee;
                            (txid, contract)
                        });
                        if let Some((_, contract)) = &deployed {
                            self.fees_scheduled += world.chain(e.chain)?.params().deploy_fee;
                            let at = world.now();
                            self.record(
                                world,
                                at,
                                EventKind::ContractSubmitted {
                                    chain: e.chain,
                                    contract: *contract,
                                },
                            );
                        }
                        self.edge_deploys.push(deployed);
                    }
                    self.phase = if self.edge_deploys.iter().all(Option::is_some) {
                        Phase::AwaitDeployments { deadline: now + self.wait_cap }
                    } else {
                        Phase::AbortGrace {
                            until: now + self.config.abort_after_deltas * self.delta,
                        }
                    };
                }
                Phase::AwaitDeployments { deadline } => {
                    let deadline = *deadline;
                    let all_deep = self.edge_deploys.iter().zip(&self.edges).all(|(d, e)| {
                        d.as_ref().is_some_and(|(txid, _)| {
                            tx_at_depth(world, e.chain, txid, self.config.deployment_depth)
                        })
                    });
                    if all_deep {
                        self.decide_and_settle(world, participants, true)?;
                    } else if world.now() >= deadline {
                        self.decide_and_settle(world, participants, false)?;
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::AbortGrace { until } => {
                    let until = *until;
                    if world.now() >= until {
                        self.decide_and_settle(world, participants, false)?;
                    } else {
                        return Ok(Step::Waiting { not_before: until });
                    }
                }
                Phase::AwaitSettlements { deadline } => {
                    let deadline = *deadline;
                    let all_stable = self
                        .settlements
                        .iter()
                        .flatten()
                        .all(|(chain, txid)| tx_stable(world, *chain, txid));
                    if all_stable || world.now() >= deadline {
                        self.finished_at = Some(world.now());
                        self.phase = if self.config.allow_recovery_redemption {
                            self.next_recovery_phase(world, self.config.wait_cap_deltas)
                        } else {
                            Phase::Finished
                        };
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::RecoveryIdle { rounds_left, until } => {
                    let (rounds_left, until) = (*rounds_left, *until);
                    if world.now() >= until {
                        self.attempt_recovery(world, participants, rounds_left - 1)?;
                    } else {
                        return Ok(Step::Waiting { not_before: until });
                    }
                }
                Phase::AwaitRecoveryInclusion { rounds_left, pending, deadline } => {
                    let (rounds_left, deadline) = (*rounds_left, *deadline);
                    let all_included =
                        pending.iter().all(|(chain, txid)| tx_at_depth(world, *chain, txid, 0));
                    if all_included || world.now() >= deadline {
                        self.phase = self.next_recovery_phase(world, rounds_left);
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::Finished => {
                    if let Some(report) = &self.report {
                        return Ok(Step::Done(Box::new(report.clone())));
                    }
                    return Ok(self.finish(world));
                }
            }
        }
    }

    fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Start => "start",
            Phase::AwaitDeployments { .. } => "await-deployments",
            Phase::AbortGrace { .. } => "abort-grace",
            Phase::AwaitSettlements { .. } => "await-settlements",
            Phase::RecoveryIdle { .. } => "recovery-idle",
            Phase::AwaitRecoveryInclusion { .. } => "recovery-inclusion",
            Phase::Finished => "finished",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AtomicityVerdict;
    use crate::scenario::{two_party_scenario, ScenarioConfig};
    use ac3_sim::CrashWindow;

    #[test]
    fn trent_issues_at_most_one_decision() {
        let mut trent = Trent::new();
        let g = Hash256::digest(b"ms(D)");
        trent.register(g).unwrap();
        assert_eq!(trent.register(g).unwrap_err(), TrentError::AlreadyRegistered);

        let sig = trent.request_redeem(g, true).unwrap();
        // Redeem again: same decision, fine. Refund: refused.
        assert!(trent.request_redeem(g, true).is_ok());
        assert_eq!(
            trent.request_refund(g).unwrap_err(),
            TrentError::AlreadyDecided(WitnessDecision::Redeem)
        );
        // The signature verifies under Trent's public key.
        let lock = SignatureLock::new(g, trent.public_key(), WitnessDecision::Redeem);
        assert!(ac3_crypto::CommitmentScheme::verify(&lock, &sig));
    }

    #[test]
    fn trent_refuses_redeem_without_verification() {
        let mut trent = Trent::new();
        let g = Hash256::digest(b"ms(D)");
        trent.register(g).unwrap();
        assert!(matches!(
            trent.request_redeem(g, false).unwrap_err(),
            TrentError::VerificationFailed(_)
        ));
        // The failed request does not consume the decision.
        assert!(trent.request_refund(g).is_ok());
    }

    #[test]
    fn trent_rejects_unregistered_and_unavailable() {
        let mut trent = Trent::new();
        let g = Hash256::digest(b"ms(D)");
        assert_eq!(trent.request_refund(g).unwrap_err(), TrentError::NotRegistered);
        trent.available = false;
        assert_eq!(trent.register(g).unwrap_err(), TrentError::Unavailable);
    }

    #[test]
    fn two_party_swap_commits_atomically() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let report = Ac3tw::new(ProtocolConfig::default()).execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
        // N deployments and N redeem calls; no witness contract on a chain.
        assert_eq!(report.deployments, 2);
        assert_eq!(report.calls, 2);
    }

    #[test]
    fn missing_deployment_aborts_atomically() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        s.participants.get_mut("bob").unwrap().schedule_crash(CrashWindow::permanent(0));
        let report = Ac3tw::new(ProtocolConfig::default()).execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(false));
        assert_eq!(report.verdict(), AtomicityVerdict::AllRefunded);
    }

    #[test]
    fn unavailable_trent_blocks_the_swap_entirely() {
        // The centralized witness's weakness: if Trent is down, no decision
        // can ever be produced and all assets stay locked (no violation,
        // but no progress either).
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let mut driver = Ac3tw::new(ProtocolConfig::default());
        driver.trent_available = false;
        let report = driver.execute(&mut s).unwrap();
        assert_eq!(report.decision, None);
        assert!(matches!(report.verdict(), AtomicityVerdict::Incomplete { .. }));
    }

    #[test]
    fn crash_during_redemption_recovers_without_loss() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        s.participants
            .get_mut("bob")
            .unwrap()
            .schedule_crash(CrashWindow { from: 8_000, until: 60_000 });
        let report = Ac3tw::new(ProtocolConfig::default()).execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert!(report.is_atomic());
    }
}
