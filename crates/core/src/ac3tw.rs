//! The AC3TW protocol (Section 4.1): atomic cross-chain commitment
//! coordinated by a *centralized trusted witness* ("Trent").
//!
//! Trent keeps a key/value store from registered graph multisignatures
//! `ms(D)` to the decision signature he has issued (if any). Because he
//! issues at most one of `T(ms(D), RD)` / `T(ms(D), RF)` per registered
//! graph, the redemption and refund commitment schemes of the asset
//! contracts (Algorithm 2) are mutually exclusive and the protocol is
//! atomic — *provided Trent is trusted, available and honest*, which is
//! exactly the assumption AC3WN removes.

use crate::actions::{call_contract, deploy_contract, edge_disposition};
use crate::protocol::{
    EdgeDisposition, EdgeOutcome, ProtocolConfig, ProtocolError, ProtocolKind, SwapReport,
};
use crate::scenario::Scenario;
use ac3_chain::{ContractId, TxId};
use ac3_contracts::{CentralizedCall, CentralizedSpec, ContractCall, ContractSpec};
use ac3_crypto::{Hash256, KeyPair, Signature, SignatureLock, WitnessDecision};
use ac3_sim::EventKind;
use std::collections::BTreeMap;

/// Errors returned by Trent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrentError {
    /// The graph multisignature is already registered.
    AlreadyRegistered,
    /// The graph multisignature is not registered.
    NotRegistered,
    /// A decision has already been issued for this graph.
    AlreadyDecided(WitnessDecision),
    /// Trent refuses the redemption because not every contract is deployed
    /// and correct.
    VerificationFailed(String),
    /// Trent is unavailable (crashed or under denial-of-service) — the
    /// single-point-of-failure the paper warns about.
    Unavailable,
}

impl std::fmt::Display for TrentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrentError::AlreadyRegistered => write!(f, "graph already registered"),
            TrentError::NotRegistered => write!(f, "graph not registered"),
            TrentError::AlreadyDecided(d) => write!(f, "already decided: {d:?}"),
            TrentError::VerificationFailed(m) => write!(f, "verification failed: {m}"),
            TrentError::Unavailable => write!(f, "trusted witness unavailable"),
        }
    }
}

impl std::error::Error for TrentError {}

/// The centralized trusted witness.
#[derive(Debug)]
pub struct Trent {
    keypair: KeyPair,
    /// `ms(D)` digest → issued decision (if any).
    registry: BTreeMap<Hash256, Option<WitnessDecision>>,
    /// Availability flag: when `false`, every request fails (models the DoS
    /// / crash vulnerability of a centralized coordinator).
    pub available: bool,
}

impl Default for Trent {
    fn default() -> Self {
        Self::new()
    }
}

impl Trent {
    /// Create a fresh witness with a deterministic key.
    pub fn new() -> Self {
        Trent {
            keypair: KeyPair::from_seed(b"trent-the-trusted-witness"),
            registry: BTreeMap::new(),
            available: true,
        }
    }

    /// Trent's public key `PK_T`, embedded in every Algorithm 2 contract.
    pub fn public_key(&self) -> ac3_crypto::PublicKey {
        self.keypair.public()
    }

    /// Register a graph multisignature (protocol step 2).
    pub fn register(&mut self, graph_digest: Hash256) -> Result<(), TrentError> {
        if !self.available {
            return Err(TrentError::Unavailable);
        }
        if self.registry.contains_key(&graph_digest) {
            return Err(TrentError::AlreadyRegistered);
        }
        self.registry.insert(graph_digest, None);
        Ok(())
    }

    /// Request the redemption signature. `all_contracts_published` is the
    /// result of Trent's own verification that every contract in the AC2T is
    /// deployed, in state `P`, and conditioned on `(ms(D), PK_T)` — as a
    /// trusted full node he checks this directly against the chains.
    pub fn request_redeem(
        &mut self,
        graph_digest: Hash256,
        all_contracts_published: bool,
    ) -> Result<Signature, TrentError> {
        if !self.available {
            return Err(TrentError::Unavailable);
        }
        match self.registry.get(&graph_digest) {
            None => Err(TrentError::NotRegistered),
            Some(Some(decision)) => {
                if *decision == WitnessDecision::Redeem {
                    Ok(self.sign(graph_digest, WitnessDecision::Redeem))
                } else {
                    Err(TrentError::AlreadyDecided(*decision))
                }
            }
            Some(None) => {
                if !all_contracts_published {
                    return Err(TrentError::VerificationFailed(
                        "not all contracts in the AC2T are published and correct".to_string(),
                    ));
                }
                self.registry.insert(graph_digest, Some(WitnessDecision::Redeem));
                Ok(self.sign(graph_digest, WitnessDecision::Redeem))
            }
        }
    }

    /// Request the refund signature.
    pub fn request_refund(&mut self, graph_digest: Hash256) -> Result<Signature, TrentError> {
        if !self.available {
            return Err(TrentError::Unavailable);
        }
        match self.registry.get(&graph_digest) {
            None => Err(TrentError::NotRegistered),
            Some(Some(decision)) => {
                if *decision == WitnessDecision::Refund {
                    Ok(self.sign(graph_digest, WitnessDecision::Refund))
                } else {
                    Err(TrentError::AlreadyDecided(*decision))
                }
            }
            Some(None) => {
                self.registry.insert(graph_digest, Some(WitnessDecision::Refund));
                Ok(self.sign(graph_digest, WitnessDecision::Refund))
            }
        }
    }

    fn sign(&self, graph_digest: Hash256, decision: WitnessDecision) -> Signature {
        self.keypair.sign(&SignatureLock::signed_message(&graph_digest, decision))
    }
}

/// The AC3TW protocol driver.
#[derive(Debug, Clone, Default)]
pub struct Ac3tw {
    /// Driver configuration.
    pub config: ProtocolConfig,
    /// Whether Trent is available during the run (set to `false` to model
    /// the centralized witness being down).
    pub trent_available: bool,
}

impl Ac3tw {
    /// Create a driver with an available Trent.
    pub fn new(config: ProtocolConfig) -> Self {
        Ac3tw { config, trent_available: true }
    }

    /// Execute the AC2T described by the scenario's graph.
    pub fn execute(&self, scenario: &mut Scenario) -> Result<SwapReport, ProtocolError> {
        let cfg = &self.config;
        let delta = scenario.world.delta_ms();
        let wait_cap = delta * cfg.wait_cap_deltas;
        let started_at = scenario.world.now();
        let mut trent = Trent::new();
        trent.available = self.trent_available;
        let mut deployments = 0u64;
        let mut calls = 0u64;
        let mut fees = 0u64;

        // Step 1: multisign the graph and register it with Trent.
        let keypairs: Vec<KeyPair> = scenario
            .graph
            .participants()
            .iter()
            .filter_map(|a| scenario.participants.by_address(a).map(|p| p.keypair()))
            .collect();
        let ms = scenario.graph.multisign(&keypairs)?;
        let graph_digest = ms.digest();
        scenario.world.timeline.record(started_at, EventKind::GraphSigned);
        let registered = trent.register(graph_digest).is_ok();
        if registered {
            scenario.world.timeline.record(scenario.world.now(), EventKind::WitnessRegistered);
        }

        // Step 2: all participants deploy their Algorithm 2 contracts in
        // parallel (AC3TW also allows concurrent publication).
        let edges: Vec<_> = scenario.graph.edges().to_vec();
        let mut edge_deploys: Vec<Option<(TxId, ContractId)>> = Vec::with_capacity(edges.len());
        for e in &edges {
            let spec = ContractSpec::Centralized(CentralizedSpec {
                recipient: e.to,
                graph_digest,
                witness_key: trent.public_key(),
            });
            let deployed = deploy_contract(
                &mut scenario.world,
                &mut scenario.participants,
                &e.from,
                e.chain,
                &spec,
                e.amount,
            )?;
            if let Some((_, contract)) = &deployed {
                deployments += 1;
                fees += scenario.world.chain(e.chain)?.params().deploy_fee;
                scenario.world.timeline.record(
                    scenario.world.now(),
                    EventKind::ContractSubmitted { chain: e.chain, contract: *contract },
                );
            }
            edge_deploys.push(deployed);
        }

        let all_submitted = edge_deploys.iter().all(Option::is_some);
        let stable = if all_submitted {
            let deploys = edge_deploys.clone();
            let edges_for_wait = edges.clone();
            let depth = cfg.deployment_depth;
            scenario
                .world
                .advance_until("contract deployments to stabilise", wait_cap, move |w| {
                    deploys.iter().zip(&edges_for_wait).all(|(d, e)| match d {
                        Some((txid, _)) => w
                            .chain(e.chain)
                            .ok()
                            .and_then(|c| c.tx_depth(txid))
                            .is_some_and(|got| got >= depth),
                        None => false,
                    })
                })
                .is_ok()
        } else {
            scenario.world.advance(cfg.abort_after_deltas * delta);
            false
        };

        // Step 3: ask Trent for a decision. He verifies the deployments
        // himself (as a trusted observer of all chains).
        let all_published = stable
            && edge_deploys.iter().zip(&edges).all(|(d, e)| {
                d.is_some_and(|(_, contract)| {
                    scenario
                        .world
                        .contract_state(e.chain, contract)
                        .is_some_and(|(tag, _)| tag == "P")
                })
            });
        let (decision_commit, decision_sig) = if !registered {
            (None, None)
        } else if all_published {
            match trent.request_redeem(graph_digest, true) {
                Ok(sig) => (Some(true), Some(sig)),
                Err(_) => (None, None),
            }
        } else {
            match trent.request_refund(graph_digest) {
                Ok(sig) => (Some(false), Some(sig)),
                Err(_) => (None, None),
            }
        };
        if let Some(commit) = decision_commit {
            scenario
                .world
                .timeline
                .record(scenario.world.now(), EventKind::DecisionReached { commit });
        }

        // Step 4: settle every published contract with Trent's signature.
        let mut finished_at = scenario.world.now();
        if let (Some(commit), Some(sig)) = (decision_commit, decision_sig) {
            let mut settlements: Vec<Option<(ac3_chain::ChainId, TxId)>> = vec![None; edges.len()];
            for (i, e) in edges.iter().enumerate() {
                let Some((_, contract)) = edge_deploys[i] else { continue };
                let (actor, call) = if commit {
                    (e.to, ContractCall::Centralized(CentralizedCall::Redeem { signature: sig }))
                } else {
                    (e.from, ContractCall::Centralized(CentralizedCall::Refund { signature: sig }))
                };
                if let Some(txid) = call_contract(
                    &mut scenario.world,
                    &mut scenario.participants,
                    &actor,
                    e.chain,
                    contract,
                    &call,
                )? {
                    calls += 1;
                    fees += scenario.world.chain(e.chain)?.params().call_fee;
                    settlements[i] = Some((e.chain, txid));
                }
            }
            let pending = settlements.clone();
            let _ = scenario.world.advance_until("settlements to stabilise", wait_cap, move |w| {
                pending.iter().flatten().all(|(chain, txid)| {
                    w.chain(*chain).ok().and_then(|c| c.tx_depth(txid)).is_some_and(|d| {
                        d >= w.chain(*chain).map(|c| c.params().stable_depth).unwrap_or(0)
                    })
                })
            });
            finished_at = scenario.world.now();

            // Recovery pass, as in AC3WN: Trent's signature has no expiry,
            // so recovered participants settle late without losing assets.
            if cfg.allow_recovery_redemption {
                for _ in 0..cfg.wait_cap_deltas {
                    let unsettled: Vec<usize> = (0..edges.len())
                        .filter(|i| {
                            edge_deploys[*i].is_some()
                                && edge_disposition(
                                    &scenario.world,
                                    edges[*i].chain,
                                    edge_deploys[*i].map(|(_, c)| c),
                                ) == EdgeDisposition::Locked
                        })
                        .collect();
                    if unsettled.is_empty() {
                        break;
                    }
                    scenario.world.advance(delta);
                    for i in unsettled {
                        let e = &edges[i];
                        let Some((_, contract)) = edge_deploys[i] else { continue };
                        let (actor, call) = if commit {
                            (
                                e.to,
                                ContractCall::Centralized(CentralizedCall::Redeem {
                                    signature: sig,
                                }),
                            )
                        } else {
                            (
                                e.from,
                                ContractCall::Centralized(CentralizedCall::Refund {
                                    signature: sig,
                                }),
                            )
                        };
                        if let Some(txid) = call_contract(
                            &mut scenario.world,
                            &mut scenario.participants,
                            &actor,
                            e.chain,
                            contract,
                            &call,
                        )? {
                            calls += 1;
                            fees += scenario.world.chain(e.chain)?.params().call_fee;
                            let _ = scenario.world.wait_for_inclusion(e.chain, txid, delta * 2);
                        }
                    }
                }
            }
        }

        let outcomes: Vec<EdgeOutcome> = edges
            .iter()
            .zip(&edge_deploys)
            .map(|(e, d)| {
                let contract = d.map(|(_, c)| c);
                EdgeOutcome {
                    edge: *e,
                    contract,
                    disposition: edge_disposition(&scenario.world, e.chain, contract),
                }
            })
            .collect();

        Ok(SwapReport {
            protocol: ProtocolKind::Ac3Tw,
            decision: decision_commit,
            edges: outcomes,
            started_at,
            finished_at,
            delta_ms: delta,
            deployments,
            calls,
            fees_paid: fees,
            timeline: scenario.world.timeline.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AtomicityVerdict;
    use crate::scenario::{two_party_scenario, ScenarioConfig};
    use ac3_sim::CrashWindow;

    #[test]
    fn trent_issues_at_most_one_decision() {
        let mut trent = Trent::new();
        let g = Hash256::digest(b"ms(D)");
        trent.register(g).unwrap();
        assert_eq!(trent.register(g).unwrap_err(), TrentError::AlreadyRegistered);

        let sig = trent.request_redeem(g, true).unwrap();
        // Redeem again: same decision, fine. Refund: refused.
        assert!(trent.request_redeem(g, true).is_ok());
        assert_eq!(
            trent.request_refund(g).unwrap_err(),
            TrentError::AlreadyDecided(WitnessDecision::Redeem)
        );
        // The signature verifies under Trent's public key.
        let lock = SignatureLock::new(g, trent.public_key(), WitnessDecision::Redeem);
        assert!(ac3_crypto::CommitmentScheme::verify(&lock, &sig));
    }

    #[test]
    fn trent_refuses_redeem_without_verification() {
        let mut trent = Trent::new();
        let g = Hash256::digest(b"ms(D)");
        trent.register(g).unwrap();
        assert!(matches!(
            trent.request_redeem(g, false).unwrap_err(),
            TrentError::VerificationFailed(_)
        ));
        // The failed request does not consume the decision.
        assert!(trent.request_refund(g).is_ok());
    }

    #[test]
    fn trent_rejects_unregistered_and_unavailable() {
        let mut trent = Trent::new();
        let g = Hash256::digest(b"ms(D)");
        assert_eq!(trent.request_refund(g).unwrap_err(), TrentError::NotRegistered);
        trent.available = false;
        assert_eq!(trent.register(g).unwrap_err(), TrentError::Unavailable);
    }

    #[test]
    fn two_party_swap_commits_atomically() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let report = Ac3tw::new(ProtocolConfig::default()).execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
        // N deployments and N redeem calls; no witness contract on a chain.
        assert_eq!(report.deployments, 2);
        assert_eq!(report.calls, 2);
    }

    #[test]
    fn missing_deployment_aborts_atomically() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        s.participants.get_mut("bob").unwrap().schedule_crash(CrashWindow::permanent(0));
        let report = Ac3tw::new(ProtocolConfig::default()).execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(false));
        assert_eq!(report.verdict(), AtomicityVerdict::AllRefunded);
    }

    #[test]
    fn unavailable_trent_blocks_the_swap_entirely() {
        // The centralized witness's weakness: if Trent is down, no decision
        // can ever be produced and all assets stay locked (no violation,
        // but no progress either).
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let mut driver = Ac3tw::new(ProtocolConfig::default());
        driver.trent_available = false;
        let report = driver.execute(&mut s).unwrap();
        assert_eq!(report.decision, None);
        assert!(matches!(report.verdict(), AtomicityVerdict::Incomplete { .. }));
    }

    #[test]
    fn crash_during_redemption_recovers_without_loss() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        s.participants
            .get_mut("bob")
            .unwrap()
            .schedule_crash(CrashWindow { from: 8_000, until: 60_000 });
        let report = Ac3tw::new(ProtocolConfig::default()).execute(&mut s).unwrap();
        assert_eq!(report.decision, Some(true));
        assert!(report.is_atomic());
    }
}
