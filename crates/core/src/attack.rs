//! The Section 6.3 adversary, executed rather than merely modelled: a
//! participant who rents majority hash power on the witness network and
//! tries to rewrite the commit decision of an already-settled AC2T.
//!
//! The attack against a two-party swap (Alice's `SC1` on chain A, Bob's
//! `SC2` on chain B, coordinated by `SC_w` on the witness chain) proceeds
//! exactly as the paper describes:
//!
//! 1. the swap runs honestly up to the commit decision (`SC_w → RDauth`)
//!    and the attacker (Bob) redeems `SC1`, collecting Alice's asset;
//! 2. before Alice redeems `SC2`, the attacker forks the witness chain from
//!    below the `AuthorizeRedeem` block and privately mines a competing
//!    branch in which `SC_w` instead transitions `P → RFauth`;
//! 3. if the attacker can afford a branch long enough to win the
//!    longest-chain rule **and** to bury the refund authorization under the
//!    asset contracts' required depth `d`, the refund evidence is accepted
//!    by `SC2` and the attacker recovers his own asset too — Alice ends up
//!    with nothing and all-or-nothing atomicity is violated;
//! 4. otherwise the fork never becomes usable evidence, Alice redeems `SC2`
//!    with the original `RDauth` evidence when she comes back, and the swap
//!    stays atomic.
//!
//! The number of blocks the attacker must mine grows linearly with the
//! depth `d` the asset contracts demand, which is precisely why the paper's
//! inequality `d > Va · dh / Ch` (reproduced in
//! [`crate::analysis::witness_choice`]) makes the attack uneconomical: the
//! bench harness combines this executor with that cost model.

use crate::actions::{call_contract, deploy_contract, edge_disposition};
use crate::audit::AtomicityVerdict;
use crate::protocol::{EdgeOutcome, ProtocolConfig, ProtocolError};
use crate::scenario::{two_party_scenario, ScenarioConfig};
use ac3_chain::{Amount, ContractId, TxId};
use ac3_contracts::{
    ContractCall, ContractSpec, ExpectedContract, PermissionlessCall, PermissionlessSpec,
    WitnessCall, WitnessSpec, WitnessStateEvidence,
};
use ac3_crypto::{KeyPair, WitnessState};
use serde::{Deserialize, Serialize};

/// Configuration of one fork-attack experiment.
#[derive(Debug, Clone)]
pub struct ForkAttackConfig {
    /// Protocol depths and timeouts for the honest portion of the run. The
    /// key knob is `witness_depth` — the `d` the asset contracts demand of
    /// witness-state evidence.
    pub protocol: ProtocolConfig,
    /// Scenario (chains, funding) for the honest portion of the run.
    pub scenario: ScenarioConfig,
    /// Asset Alice locks on chain A (the value the attacker steals if the
    /// attack succeeds).
    pub asset_x: Amount,
    /// Asset Bob locks on chain B (recovered by the attacker on success).
    pub asset_y: Amount,
    /// How many witness-chain blocks the attacker can afford to mine
    /// privately — the attack budget. The paper's Section 6.3 maps this to
    /// dollars via the hourly 51%-attack cost.
    pub attacker_budget_blocks: u64,
}

impl Default for ForkAttackConfig {
    fn default() -> Self {
        ForkAttackConfig {
            protocol: ProtocolConfig {
                witness_depth: 3,
                deployment_depth: 3,
                ..Default::default()
            },
            scenario: ScenarioConfig::default(),
            asset_x: 50,
            asset_y: 80,
            attacker_budget_blocks: 0,
        }
    }
}

/// What happened during a fork-attack experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForkAttackReport {
    /// The depth `d` the asset contracts demanded of witness evidence.
    pub witness_depth: u64,
    /// Blocks the attacker was allowed to mine.
    pub attacker_budget_blocks: u64,
    /// Blocks the attacker would have needed to both win the longest-chain
    /// race and bury the refund authorization under `d` blocks.
    pub required_branch_blocks: u64,
    /// Whether the commit decision was reached honestly before the attack.
    pub commit_decided: bool,
    /// Whether the attacker's competing branch became canonical.
    pub reorg_won: bool,
    /// Whether the attacker's refund of his own contract was accepted.
    pub refund_accepted: bool,
    /// Per-edge outcomes after the dust settles (victim recovery included).
    pub edges: Vec<EdgeOutcome>,
    /// The atomicity verdict over those outcomes.
    pub verdict: AtomicityVerdict,
}

impl ForkAttackReport {
    /// Whether the attack achieved its goal: the attacker holds both assets
    /// and all-or-nothing atomicity is violated.
    pub fn attack_succeeded(&self) -> bool {
        self.refund_accepted && !self.verdict.is_atomic()
    }
}

/// Execute one fork-attack experiment against a two-party AC3WN swap.
///
/// The honest protocol steps are driven inline (rather than through
/// [`crate::Ac3wn`]) so the experiment controls exactly when the victim
/// settles relative to the attack.
pub fn execute_fork_attack(cfg: &ForkAttackConfig) -> Result<ForkAttackReport, ProtocolError> {
    let d = cfg.protocol.witness_depth;
    let mut s = two_party_scenario(cfg.asset_x, cfg.asset_y, &cfg.scenario);
    let delta = s.world.delta_ms();
    let wait_cap = delta * cfg.protocol.wait_cap_deltas;
    let alice = s.participants.get("alice").expect("scenario has alice").address();
    let bob = s.participants.get("bob").expect("scenario has bob").address();
    let witness_chain = s.witness_chain;
    let chain_a = s.asset_chains[0]; // hosts SC1: Alice → Bob, asset_x
    let chain_b = s.asset_chains[1]; // hosts SC2: Bob → Alice, asset_y

    // ---------------------------------------------------------------------
    // Honest protocol up to and including the attacker's redemption.
    // ---------------------------------------------------------------------
    let keypairs: Vec<KeyPair> = s
        .graph
        .participants()
        .iter()
        .filter_map(|a| s.participants.by_address(a).map(|p| p.keypair()))
        .collect();
    let ms = s.graph.multisign(&keypairs)?;

    let mut expected = Vec::with_capacity(s.graph.contract_count());
    for e in s.graph.edges() {
        expected.push(ExpectedContract {
            chain: e.chain,
            sender: e.from,
            recipient: e.to,
            amount: e.amount,
            anchor: s.world.anchor(e.chain)?,
            required_depth: cfg.protocol.deployment_depth,
        });
    }
    let witness_spec = ContractSpec::Witness(WitnessSpec {
        participants: s.graph.participants().to_vec(),
        graph_digest: ms.digest(),
        expected_contracts: expected.clone(),
        operator: None,
        stake: 0,
    });
    let (reg_txid, scw) = deploy_contract(
        &mut s.world,
        &mut s.participants,
        &alice,
        witness_chain,
        &witness_spec,
        0,
    )?
    .expect("alice is available");
    s.world.wait_for_depth(witness_chain, reg_txid, d, wait_cap)?;
    let witness_anchor = s.world.anchor(witness_chain)?;

    // Parallel deployment of SC1 and SC2.
    let edges: Vec<_> = s.graph.edges().to_vec();
    let mut deploys: Vec<(TxId, ContractId)> = Vec::with_capacity(edges.len());
    for e in &edges {
        let spec = ContractSpec::Permissionless(PermissionlessSpec {
            recipient: e.to,
            witness_chain,
            witness_contract: scw,
            min_depth: d,
            witness_anchor,
        });
        let deployed =
            deploy_contract(&mut s.world, &mut s.participants, &e.from, e.chain, &spec, e.amount)?
                .expect("both participants are available");
        deploys.push(deployed);
    }
    {
        let pending = deploys.clone();
        let chains: Vec<_> = edges.iter().map(|e| e.chain).collect();
        let depth = cfg.protocol.deployment_depth;
        s.world.advance_until("deployments to stabilise", wait_cap, move |w| {
            pending.iter().zip(&chains).all(|((txid, _), chain)| {
                w.chain(*chain).ok().and_then(|c| c.tx_depth(txid)).is_some_and(|got| got >= depth)
            })
        })?;
    }

    // Commit decision.
    let mut deployment_evidence = Vec::with_capacity(edges.len());
    for (i, e) in edges.iter().enumerate() {
        deployment_evidence.push(s.world.tx_evidence_since(
            e.chain,
            &expected[i].anchor,
            deploys[i].0,
        )?);
    }
    let authorize_call =
        ContractCall::Witness(WitnessCall::AuthorizeRedeem { deployments: deployment_evidence });
    let authorize_txid = call_contract(
        &mut s.world,
        &mut s.participants,
        &bob,
        witness_chain,
        scw,
        &authorize_call,
    )?
    .expect("bob is available");
    s.world.wait_for_depth(witness_chain, authorize_txid, d, wait_cap)?;
    let commit_decided = true;

    let rd_evidence = WitnessStateEvidence {
        claimed: WitnessState::RedeemAuthorized,
        inclusion: s.world.tx_evidence_since(witness_chain, &witness_anchor, authorize_txid)?,
    };

    // The attacker (Bob) redeems SC1, collecting Alice's asset. Alice has
    // not settled SC2 yet — this is the window the attack exploits.
    let sc1 = deploys[0].1;
    let sc2 = deploys[1].1;
    let redeem_sc1 =
        ContractCall::Permissionless(PermissionlessCall::Redeem { evidence: rd_evidence.clone() });
    let redeem_txid =
        call_contract(&mut s.world, &mut s.participants, &bob, chain_a, sc1, &redeem_sc1)?
            .expect("bob is available");
    s.world.wait_for_inclusion(chain_a, redeem_txid, wait_cap)?;

    // ---------------------------------------------------------------------
    // The attack: rewrite the witness chain below the commit decision.
    // ---------------------------------------------------------------------
    // The refund authorization is submitted first; it is invalid on the
    // canonical branch (SC_w is already RDauth there) so honest miners leave
    // it pending, but on the attacker's branch — which forks below the
    // AuthorizeRedeem block, where SC_w is still P — it executes and is
    // included in the first private block.
    let refund_auth_txid = call_contract(
        &mut s.world,
        &mut s.participants,
        &bob,
        witness_chain,
        scw,
        &ContractCall::Witness(WitnessCall::AuthorizeRefund),
    )?
    .expect("bob is available");

    // Fork geometry: the branch must start below the AuthorizeRedeem block
    // and outgrow the canonical chain.
    let (authorize_block, _) = s
        .world
        .chain(witness_chain)?
        .store()
        .find_canonical_tx(&authorize_txid)
        .ok_or_else(|| ProtocolError::World("authorize tx not canonical".to_string()))?;
    let authorize_height = s
        .world
        .chain(witness_chain)?
        .store()
        .header(&authorize_block)
        .ok_or_else(|| ProtocolError::World("authorize block missing".to_string()))?
        .height;
    let tip_height = s.world.chain(witness_chain)?.height();
    let fork_depth = tip_height - (authorize_height - 1);
    // Winning the longest-chain race needs fork_depth + 1 blocks; burying
    // the refund authorization (included in the first branch block) under d
    // blocks needs d + 1. The attacker needs the larger of the two.
    let required_branch_blocks = (fork_depth + 1).max(d + 1);

    let mut reorg_won = false;
    let mut refund_accepted = false;
    if cfg.attacker_budget_blocks > 0 {
        let branch_length = cfg.attacker_budget_blocks;
        s.world.inject_fork(witness_chain, fork_depth, branch_length)?;
        reorg_won = s.world.chain(witness_chain)?.tx_depth(&refund_auth_txid).is_some();

        if reorg_won {
            // The refund authorization is now canonical; try to use it.
            if let Ok(inclusion) =
                s.world.tx_evidence_since(witness_chain, &witness_anchor, refund_auth_txid)
            {
                let rf_evidence =
                    WitnessStateEvidence { claimed: WitnessState::RefundAuthorized, inclusion };
                let refund_sc2 = ContractCall::Permissionless(PermissionlessCall::Refund {
                    evidence: rf_evidence,
                });
                if let Some(txid) = call_contract(
                    &mut s.world,
                    &mut s.participants,
                    &bob,
                    chain_b,
                    sc2,
                    &refund_sc2,
                )? {
                    let _ = s.world.wait_for_inclusion(chain_b, txid, wait_cap);
                    refund_accepted = matches!(
                        s.world.contract_state(chain_b, sc2),
                        Some((tag, _)) if tag == "RF"
                    );
                }
            }
        }
    }

    // ---------------------------------------------------------------------
    // Victim recovery: Alice comes back and redeems SC2 with the original
    // RDauth evidence — the commitment property — unless the attacker
    // already refunded it out from under her.
    // ---------------------------------------------------------------------
    let redeem_sc2 =
        ContractCall::Permissionless(PermissionlessCall::Redeem { evidence: rd_evidence });
    if let Some(txid) =
        call_contract(&mut s.world, &mut s.participants, &alice, chain_b, sc2, &redeem_sc2)?
    {
        let _ = s.world.wait_for_inclusion(chain_b, txid, wait_cap);
    }

    let outcomes: Vec<EdgeOutcome> = edges
        .iter()
        .zip(&deploys)
        .map(|(e, (_, contract))| EdgeOutcome {
            edge: *e,
            contract: Some(*contract),
            disposition: edge_disposition(&s.world, e.chain, Some(*contract)),
        })
        .collect();
    let verdict = AtomicityVerdict::from_outcomes(&outcomes);

    Ok(ForkAttackReport {
        witness_depth: d,
        attacker_budget_blocks: cfg.attacker_budget_blocks,
        required_branch_blocks,
        commit_decided,
        reorg_won,
        refund_accepted,
        edges: outcomes,
        verdict,
    })
}

/// The branch length an attacker needs against a decision that waited for
/// `witness_depth` confirmations, given the extra blocks the honest chain
/// mines while the attacker prepares (`head_start`). Used by the bench
/// harness to translate depths into attack costs without running the full
/// simulation for every point.
pub fn required_branch_blocks(witness_depth: u64, head_start: u64) -> u64 {
    (witness_depth + head_start + 1).max(witness_depth + 1)
}

/// Convenience: run the attack at a given depth with a budget expressed as a
/// multiple of the required branch length (`>= 1.0` affords the attack).
pub fn attack_with_budget_factor(
    witness_depth: u64,
    factor: f64,
    scenario: &ScenarioConfig,
) -> Result<ForkAttackReport, ProtocolError> {
    // Probe once with zero budget to learn the exact required branch length
    // for this geometry, then run the real attempt.
    let probe = execute_fork_attack(&ForkAttackConfig {
        protocol: ProtocolConfig { witness_depth, deployment_depth: 3, ..Default::default() },
        scenario: scenario.clone(),
        attacker_budget_blocks: 0,
        ..Default::default()
    })?;
    let budget = (probe.required_branch_blocks as f64 * factor).floor() as u64;
    execute_fork_attack(&ForkAttackConfig {
        protocol: ProtocolConfig { witness_depth, deployment_depth: 3, ..Default::default() },
        scenario: scenario.clone(),
        attacker_budget_blocks: budget,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_means_no_attack_and_an_atomic_commit() {
        let report = execute_fork_attack(&ForkAttackConfig::default()).unwrap();
        assert!(report.commit_decided);
        assert!(!report.reorg_won);
        assert!(!report.refund_accepted);
        assert!(!report.attack_succeeded());
        assert_eq!(report.verdict, AtomicityVerdict::AllRedeemed, "{:?}", report.verdict);
    }

    #[test]
    fn affording_the_full_branch_violates_atomicity() {
        // Probe the geometry, then give the attacker exactly what it needs.
        let probe = execute_fork_attack(&ForkAttackConfig::default()).unwrap();
        let report = execute_fork_attack(&ForkAttackConfig {
            attacker_budget_blocks: probe.required_branch_blocks,
            ..Default::default()
        })
        .unwrap();
        assert!(report.reorg_won, "branch of {} blocks should win", report.attacker_budget_blocks);
        assert!(report.refund_accepted, "refund evidence should be deep enough");
        assert!(report.attack_succeeded());
        assert!(!report.verdict.is_atomic(), "verdict: {}", report.verdict);
    }

    #[test]
    fn an_underfunded_attack_fails_and_the_swap_stays_atomic() {
        let probe = execute_fork_attack(&ForkAttackConfig::default()).unwrap();
        // One block short of winning the longest-chain race.
        let short = probe.required_branch_blocks.saturating_sub(probe.witness_depth + 1).max(1);
        let report = execute_fork_attack(&ForkAttackConfig {
            attacker_budget_blocks: short,
            ..Default::default()
        })
        .unwrap();
        assert!(!report.reorg_won);
        assert!(!report.attack_succeeded());
        assert_eq!(report.verdict, AtomicityVerdict::AllRedeemed);
    }

    #[test]
    fn required_branch_length_grows_with_the_witness_depth() {
        let shallow = execute_fork_attack(&ForkAttackConfig {
            protocol: ProtocolConfig {
                witness_depth: 2,
                deployment_depth: 2,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap();
        let deep = execute_fork_attack(&ForkAttackConfig {
            protocol: ProtocolConfig {
                witness_depth: 6,
                deployment_depth: 2,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap();
        assert!(
            deep.required_branch_blocks > shallow.required_branch_blocks,
            "deeper confirmation requirement must force a longer (more expensive) fork: {} vs {}",
            deep.required_branch_blocks,
            shallow.required_branch_blocks
        );
    }

    #[test]
    fn budget_factor_helper_matches_direct_runs() {
        let afforded = attack_with_budget_factor(3, 1.0, &ScenarioConfig::default()).unwrap();
        assert!(afforded.attack_succeeded());
        let starved = attack_with_budget_factor(3, 0.25, &ScenarioConfig::default()).unwrap();
        assert!(!starved.attack_succeeded());
    }
}
