//! The three cross-chain evidence validation strategies of Section 4.3,
//! implemented side by side so they can be compared (experiment E8's
//! ablation and the discussion in the paper):
//!
//! 1. **Full replication** — every validator keeps a complete copy of the
//!    validated chain and simply looks the transaction up. Trivial to
//!    verify, but the storage/processing cost grows with the whole chain.
//! 2. **Light nodes** — validators keep only the header chain and verify an
//!    SPV inclusion proof. Cheaper, but still requires following every
//!    other blockchain continuously.
//! 3. **In-contract validation (the paper's proposal)** — the validator
//!    stores a single stable anchor header and verifies a self-contained
//!    evidence payload (headers since the anchor + inclusion proof). No
//!    continuous following at all; the cost is proportional to the evidence
//!    length only.

use ac3_chain::{Blockchain, ChainId, ContractId, LightClient, TxId};
use ac3_contracts::{ChainAnchor, EquivocationProof, SignedDecision, TxInclusionEvidence};
use ac3_crypto::WitnessDecision;
use ac3_sim::{ChainApi, World, WorldError};
use serde::{Deserialize, Serialize};

/// Which validation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationStrategy {
    /// Maintain a full copy of the validated chain.
    FullReplication,
    /// Maintain a light (header-only) node of the validated chain.
    LightNode,
    /// Verify self-contained evidence inside the validator contract.
    ContractBased,
}

impl ValidationStrategy {
    /// All strategies, for sweeps.
    pub fn all() -> [ValidationStrategy; 3] {
        [
            ValidationStrategy::FullReplication,
            ValidationStrategy::LightNode,
            ValidationStrategy::ContractBased,
        ]
    }
}

impl std::fmt::Display for ValidationStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ValidationStrategy::FullReplication => "full-replication",
            ValidationStrategy::LightNode => "light-node",
            ValidationStrategy::ContractBased => "contract-based",
        };
        write!(f, "{s}")
    }
}

/// The resource cost of one validation, in the units the paper argues about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationCost {
    /// Blocks the validator must store persistently.
    pub blocks_stored: u64,
    /// Headers transferred/verified for this validation.
    pub headers_verified: u64,
    /// Full transactions the validator had to inspect.
    pub transactions_inspected: u64,
}

/// The result of validating "transaction `txid` is final on `chain`".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// The strategy used.
    pub strategy: ValidationStrategy,
    /// Whether the claim was accepted.
    pub valid: bool,
    /// What it cost.
    pub cost: ValidationCost,
}

/// Validate that `txid` is included and buried under `min_depth` blocks on
/// `chain`, using the requested strategy. The `anchor` is only used by the
/// contract-based strategy (it is what the validator contract stored at
/// deployment time).
pub fn validate_tx(
    world: &World,
    strategy: ValidationStrategy,
    chain: ChainId,
    txid: TxId,
    anchor: &ChainAnchor,
    min_depth: u64,
) -> Result<ValidationReport, WorldError> {
    let chain_ref: &Blockchain = world.chain(chain)?;
    match strategy {
        ValidationStrategy::FullReplication => {
            let valid = chain_ref.tx_depth(&txid).is_some_and(|d| d >= min_depth);
            let blocks = chain_ref.height() + 1;
            // A full replica inspects every transaction it stores.
            let txs: u64 =
                chain_ref.store().canonical_blocks().map(|b| b.transactions.len() as u64).sum();
            Ok(ValidationReport {
                strategy,
                valid,
                cost: ValidationCost {
                    blocks_stored: blocks,
                    headers_verified: blocks,
                    transactions_inspected: txs,
                },
            })
        }
        ValidationStrategy::LightNode => {
            // Build the light client from genesis (the cost a continuously
            // synchronised light node has paid over the chain's lifetime).
            let genesis_hash = chain_ref
                .store()
                .canonical_block_at_height(0)
                .ok_or_else(|| WorldError::EvidenceUnavailable("no genesis".to_string()))?;
            let genesis = chain_ref
                .store()
                .header(&genesis_hash)
                .ok_or_else(|| WorldError::EvidenceUnavailable("no genesis header".to_string()))?;
            let mut lc = LightClient::new(genesis)
                .map_err(|e| WorldError::EvidenceUnavailable(e.to_string()))?;
            let headers = chain_ref
                .headers_since(&genesis_hash)
                .ok_or_else(|| WorldError::EvidenceUnavailable("no headers".to_string()))?;
            lc.extend(&headers).map_err(|e| WorldError::EvidenceUnavailable(e.to_string()))?;

            let valid = match chain_ref.tx_inclusion(&txid) {
                Some(inclusion) => {
                    // Re-derive the transaction bytes from the block the
                    // inclusion points at.
                    let block_hash = chain_ref
                        .store()
                        .canonical_block_at_height(inclusion.header.height)
                        .ok_or_else(|| {
                            WorldError::EvidenceUnavailable("missing block".to_string())
                        })?;
                    let block = chain_ref.store().get(&block_hash).ok_or_else(|| {
                        WorldError::EvidenceUnavailable("missing block".to_string())
                    })?;
                    block
                        .find_tx(&txid)
                        .map(|idx| {
                            lc.verify_inclusion(
                                inclusion.header.height,
                                &inclusion.proof,
                                &block.transactions[idx].canonical_bytes(),
                                min_depth,
                            )
                            .is_ok()
                        })
                        .unwrap_or(false)
                }
                None => false,
            };
            Ok(ValidationReport {
                strategy,
                valid,
                cost: ValidationCost {
                    blocks_stored: 0,
                    headers_verified: lc.len() as u64,
                    transactions_inspected: 1,
                },
            })
        }
        ValidationStrategy::ContractBased => {
            let evidence: TxInclusionEvidence = match world.tx_evidence_since(chain, anchor, txid) {
                Ok(e) => e,
                Err(_) => {
                    return Ok(ValidationReport {
                        strategy,
                        valid: false,
                        cost: ValidationCost::default(),
                    })
                }
            };
            let valid = evidence.verify(anchor, min_depth).is_ok();
            Ok(ValidationReport {
                strategy,
                valid,
                cost: ValidationCost {
                    blocks_stored: 1, // the stored anchor
                    headers_verified: evidence.headers.len() as u64,
                    transactions_inspected: 1,
                },
            })
        }
    }
}

/// Validate with every strategy and return the three reports (used by the
/// ablation bench to compare costs on identical claims).
pub fn validate_with_all(
    world: &World,
    chain: ChainId,
    txid: TxId,
    anchor: &ChainAnchor,
    min_depth: u64,
) -> Result<Vec<ValidationReport>, WorldError> {
    ValidationStrategy::all()
        .into_iter()
        .map(|s| validate_tx(world, s, chain, txid, anchor, min_depth))
        .collect()
}

/// An honest party's append-only log of witness-operator attestations —
/// the testimony side of the Byzantine fault model (DESIGN.md §12).
///
/// Watchdogs feed every [`SignedDecision`] they see (gossip, mempools,
/// bribed-operator side channels) into the log. The log discards forgeries,
/// and the moment two validly signed attestations by the same key over the
/// same graph contradict each other it hands back the
/// [`EquivocationProof`] ready for on-chain submission
/// (`WitnessCall::ReportEquivocation`). Attestations that merely contradict
/// *observed chain state* — a bribed operator signing a decision the
/// witness contract never reached — are not slashable (one signature is
/// not self-incriminating) but are surfaced by
/// [`TestimonyLog::unsupported_by`] so honest parties can refuse to act on
/// them.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestimonyLog {
    decisions: Vec<SignedDecision>,
}

impl TestimonyLog {
    /// An empty log.
    pub fn new() -> Self {
        TestimonyLog::default()
    }

    /// Record an attestation. Forgeries (invalid signatures) are dropped.
    /// Returns a fraud proof the first time the attestation contradicts an
    /// earlier validly signed one.
    pub fn observe(&mut self, decision: SignedDecision) -> Option<EquivocationProof> {
        if decision.verify().is_err() {
            return None;
        }
        let conflict = self.decisions.iter().find(|prior| prior.conflicts_with(&decision)).copied();
        self.decisions.push(decision);
        conflict.map(|first| EquivocationProof { first, second: decision })
    }

    /// The validly signed attestations observed so far, in arrival order.
    pub fn decisions(&self) -> &[SignedDecision] {
        &self.decisions
    }

    /// Number of recorded attestations.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Attestations not supported by the on-chain state of the given
    /// witness contract: a `Redeem` attestation while the contract is not
    /// `RDauth`, or a `Refund` attestation while it is not `RFauth`. These
    /// are the bribed-witness testimonies — evidence of misbehavior an
    /// honest party records and refuses to act on, even though no stake can
    /// be slashed for them.
    pub fn unsupported_by(
        &self,
        world: &dyn ChainApi,
        chain: ChainId,
        contract: ContractId,
    ) -> Vec<SignedDecision> {
        let tag = world.contract_state(chain, contract).map(|(tag, _)| tag);
        self.decisions
            .iter()
            .filter(|d| {
                let required = match d.decision {
                    WitnessDecision::Redeem => "RDauth",
                    WitnessDecision::Refund => "RFauth",
                };
                tag.as_deref() != Some(required)
            })
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_chain::{Address, ChainParams, TxBuilder};
    use ac3_crypto::{Hash256, KeyPair};

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    /// A world with one chain, a payment from alice to bob mined and buried.
    fn world_with_payment(extra_blocks: u64) -> (World, ChainId, TxId, ChainAnchor) {
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let mut world = World::new();
        let mut params = ChainParams::test("validated");
        params.block_interval_ms = 1_000;
        params.stable_depth = 3;
        let chain = world.add_chain(params, &[(alice, 100)]);
        let anchor = world.anchor(chain).unwrap();

        let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &bob, 10, 1).unwrap();
        let txid = world.submit(chain, builder.transfer(inputs, outputs, 1)).unwrap();
        world.advance(1_000 * (extra_blocks + 1));
        (world, chain, txid, anchor)
    }

    #[test]
    fn all_strategies_accept_a_buried_transaction() {
        let (world, chain, txid, anchor) = world_with_payment(6);
        for report in validate_with_all(&world, chain, txid, &anchor, 3).unwrap() {
            assert!(report.valid, "{} rejected a valid claim", report.strategy);
        }
    }

    #[test]
    fn all_strategies_reject_a_missing_transaction() {
        let (world, chain, _txid, anchor) = world_with_payment(6);
        let missing = TxId(Hash256::digest(b"never happened"));
        for report in validate_with_all(&world, chain, missing, &anchor, 0).unwrap() {
            assert!(!report.valid, "{} accepted a bogus claim", report.strategy);
        }
    }

    #[test]
    fn all_strategies_enforce_depth() {
        let (world, chain, txid, anchor) = world_with_payment(1);
        for report in validate_with_all(&world, chain, txid, &anchor, 5).unwrap() {
            assert!(!report.valid, "{} ignored the depth requirement", report.strategy);
        }
    }

    #[test]
    fn contract_based_validation_is_cheapest_in_storage() {
        let (world, chain, txid, anchor) = world_with_payment(10);
        let reports = validate_with_all(&world, chain, txid, &anchor, 3).unwrap();
        let full = &reports[0];
        let light = &reports[1];
        let contract = &reports[2];
        assert!(full.cost.blocks_stored > light.cost.blocks_stored);
        assert!(light.cost.headers_verified >= contract.cost.headers_verified);
        assert_eq!(contract.cost.blocks_stored, 1);
        assert!(full.cost.transactions_inspected >= contract.cost.transactions_inspected);
    }

    #[test]
    fn testimony_log_detects_equivocation_and_discards_forgeries() {
        let op = KeyPair::from_seed(b"operator");
        let digest = Hash256::digest(b"ms(D)");
        let mut log = TestimonyLog::new();

        let rd = SignedDecision::sign(&op, digest, WitnessDecision::Redeem);
        assert!(log.observe(rd).is_none(), "a single decision is not a conflict");
        // A forged conflicting attestation is dropped, not treated as fraud.
        let mut forged = SignedDecision::sign(&op, digest, WitnessDecision::Refund);
        forged.signature = KeyPair::from_seed(b"mallory").sign(b"junk");
        assert!(log.observe(forged).is_none());
        assert_eq!(log.len(), 1);
        // A decision about a *different* graph does not conflict.
        let other = SignedDecision::sign(&op, Hash256::digest(b"other"), WitnessDecision::Refund);
        assert!(log.observe(other).is_none());

        // The genuine conflicting signature yields a verifying fraud proof.
        let rf = SignedDecision::sign(&op, digest, WitnessDecision::Refund);
        let proof = log.observe(rf).expect("conflict detected");
        proof.verify(&op.public(), &digest).unwrap();
    }

    #[test]
    fn testimony_log_flags_decisions_unsupported_by_chain_state() {
        use crate::actions::deploy_contract;
        use ac3_contracts::{ContractSpec, ExpectedContract, WitnessSpec};
        use ac3_sim::ParticipantSet;

        let mut participants = ParticipantSet::new();
        let alice = participants.add("alice");
        let mut world = World::new();
        let chain = world.add_chain(ChainParams::test("w"), &[(alice, 100)]);
        let anchor = world.anchor(chain).unwrap();
        let op = KeyPair::from_seed(b"operator");
        let digest = Hash256::digest(b"ms(D)");
        let spec = ContractSpec::Witness(WitnessSpec {
            participants: vec![alice],
            graph_digest: digest,
            expected_contracts: vec![ExpectedContract {
                chain,
                sender: alice,
                recipient: addr(b"bob"),
                amount: 10,
                anchor,
                required_depth: 0,
            }],
            operator: Some(op.public()),
            stake: 0,
        });
        let (_, contract) = deploy_contract(&mut world, &mut participants, &alice, chain, &spec, 0)
            .unwrap()
            .expect("alice is available");
        world.advance_blocks(chain, 2).unwrap();

        // The contract sits in P: *any* decision attestation is unsupported.
        let mut log = TestimonyLog::new();
        log.observe(SignedDecision::sign(&op, digest, WitnessDecision::Redeem));
        assert_eq!(log.unsupported_by(&world, chain, contract).len(), 1);
    }

    #[test]
    fn strategy_display_names() {
        assert_eq!(ValidationStrategy::FullReplication.to_string(), "full-replication");
        assert_eq!(ValidationStrategy::ContractBased.to_string(), "contract-based");
        assert_eq!(ValidationStrategy::all().len(), 3);
    }
}
