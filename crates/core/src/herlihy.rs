//! Herlihy's single-leader atomic cross-chain swap protocol \[16\] — the
//! state-of-the-art baseline the paper compares against.
//!
//! The protocol uses hashlocked, timelocked contracts (HTLCs):
//!
//! * a swap **leader** creates the secret `s` and the hashlock `h = H(s)`;
//! * contracts are deployed **sequentially** in waves following the graph
//!   from the leader (a contract is only published once the contracts that
//!   protect its sender are already public), each wave taking Δ;
//! * redemption also proceeds **sequentially** in the reverse order — the
//!   leader redeems first (revealing `s` on chain), and the revealed secret
//!   lets the remaining participants redeem wave by wave;
//! * each contract carries a timelock; earlier-deployed contracts carry
//!   *later* timelocks (`t1 > t2` in the paper's two-party walkthrough) so
//!   every participant nominally has time to redeem after learning `s`.
//!
//! The sequential phases make the end-to-end latency `2·Δ·Diam(D)`
//! (Section 6.1, Figure 8), and the timelocks couple safety to liveness:
//! a participant who cannot redeem before their counterparty's timelock
//! expires loses their asset (experiment E6 reproduces this violation).
//! Disconnected graphs (Figure 7b) are not executable at all.
//!
//! The protocol logic lives in [`HerlihyMachine`], a resumable step/poll
//! state machine (see [`crate::driver`]); [`Herlihy::execute`] is the
//! single-swap wrapper.

use crate::actions::edge_disposition;
use crate::driver::{drive, tx_at_depth, Step, SwapMachine};
use crate::fee::{BidBook, BidChange};
use crate::graph::{SwapEdge, SwapGraph};
use crate::protocol::{
    EdgeDisposition, EdgeOutcome, ProtocolConfig, ProtocolError, ProtocolKind, SwapReport,
};
use crate::scenario::Scenario;
use ac3_chain::{Address, ChainId, ContractId, Timestamp, TxId};
use ac3_contracts::{ContractCall, ContractSpec, HtlcCall, HtlcSpec};
use ac3_crypto::{Hash256, Hashlock, Sha256};
use ac3_sim::{ChainApi, EventKind, ParticipantSet, Timeline};

/// The Herlihy single-leader protocol driver.
#[derive(Debug, Clone, Default)]
pub struct Herlihy {
    /// Driver configuration.
    pub config: ProtocolConfig,
    /// Report the run under this protocol name (lets the Nolan wrapper
    /// reuse the driver).
    pub kind: Option<ProtocolKind>,
    /// Preferred swap leader. When unset the driver picks the first
    /// participant that satisfies the leader conditions.
    pub leader: Option<Address>,
}

/// Per-edge bookkeeping during a run.
#[derive(Debug, Clone)]
struct EdgeSlot {
    edge: SwapEdge,
    wave: usize,
    timelock: Timestamp,
    deploy: Option<(TxId, ContractId)>,
}

impl Herlihy {
    /// Create a driver with the given configuration.
    pub fn new(config: ProtocolConfig) -> Self {
        Herlihy { config, kind: None, leader: None }
    }

    /// Create a driver with an explicit swap leader.
    pub fn with_leader(config: ProtocolConfig, leader: Address) -> Self {
        Herlihy { config, kind: None, leader: Some(leader) }
    }

    /// Check whether this protocol can execute `graph` and pick the swap
    /// leader: the graph must be weakly connected, every edge must be
    /// reachable from the leader, and removing the leader must leave an
    /// acyclic graph (Section 5.3).
    pub fn supports_graph(graph: &SwapGraph) -> Result<Address, ProtocolError> {
        if !graph.is_connected() {
            return Err(ProtocolError::UnsupportedGraph(
                "single-leader swaps cannot execute disconnected graphs (Figure 7b)".to_string(),
            ));
        }
        for candidate in graph.participants() {
            let waves = graph.waves_from(candidate);
            let covered: usize = waves.iter().map(|w| w.len()).sum();
            let all_reachable =
                covered == graph.contract_count() && waves.iter().all(|w| !w.is_empty());
            // The last synthetic wave holds unreachable edges; reject those.
            let reachable_only = waves
                .iter()
                .flat_map(|w| w.iter())
                .all(|e| graph.waves_from(candidate).iter().flatten().any(|x| x == e));
            if all_reachable && reachable_only && graph.acyclic_without(candidate) {
                return Ok(*candidate);
            }
        }
        Err(ProtocolError::UnsupportedGraph(
            "no leader exists whose removal makes the graph acyclic".to_string(),
        ))
    }

    /// Create a resumable state machine executing `graph` (for use under a
    /// scheduler). Fails when the graph is unsupported or the configured
    /// leader is invalid.
    pub fn machine(&self, graph: SwapGraph) -> Result<HerlihyMachine, ProtocolError> {
        let leader = match self.leader {
            Some(leader) => {
                // Validate the caller's choice against the same conditions.
                Self::supports_graph(&graph)?;
                if !graph.participants().contains(&leader) {
                    return Err(ProtocolError::UnknownParticipant(format!("{leader}")));
                }
                leader
            }
            None => Self::supports_graph(&graph)?,
        };
        Ok(HerlihyMachine::new(
            self.config.clone(),
            graph,
            leader,
            self.kind.unwrap_or(ProtocolKind::Herlihy),
        ))
    }

    /// Execute the AC2T described by the scenario's graph (single-swap
    /// wrapper around [`HerlihyMachine`]).
    pub fn execute(&self, scenario: &mut Scenario) -> Result<SwapReport, ProtocolError> {
        let mut machine = self.machine(scenario.graph.clone())?;
        drive(&mut machine, &mut scenario.world, &mut scenario.participants)
    }
}

/// Phase of the Herlihy state machine.
#[derive(Debug)]
enum Phase {
    /// Nothing has happened yet; the first poll derives the secret, the
    /// wave structure and the timelocks.
    Start,
    /// Phase A: submit the deployments of wave `k`.
    DeployWave { k: usize },
    /// Phase A: wait for wave `k`'s deployments to reach the required depth.
    AwaitWaveDeploys { k: usize, pending: Vec<(ChainId, TxId)>, deadline: Timestamp },
    /// Phase B: submit the redemptions of wave `k` (reverse order).
    RedeemWave { k: usize },
    /// Phase B: wait for wave `k`'s settlements; `(chain, txid, depth)`.
    AwaitWaveRedeems { k: usize, pending: Vec<(ChainId, TxId, u64)>, deadline: Timestamp },
    /// Phase B: nobody in wave `k` could redeem; give them one Δ.
    WaveGap { k: usize, until: Timestamp },
    /// Phase C: one round of timelock cleanup (recovered redeemers redeem,
    /// expired contracts are refunded).
    CleanupRound,
    /// Phase C: idle one Δ between cleanup rounds.
    CleanupWait { until: Timestamp },
    /// Phase C: wait for settlements submitted during cleanup to be
    /// included, so terminal dispositions are on-chain.
    AwaitCleanupInclusion { pending: Vec<(ChainId, TxId)>, deadline: Timestamp },
    /// Terminal.
    Finished,
}

/// The Herlihy protocol as a resumable state machine (see [`crate::driver`]).
#[derive(Debug)]
pub struct HerlihyMachine {
    config: ProtocolConfig,
    graph: SwapGraph,
    leader: Address,
    kind: ProtocolKind,
    phase: Phase,
    timeline: Timeline,
    started_at: Timestamp,
    delta: u64,
    wait_cap: u64,
    deployments: u64,
    calls: u64,
    fees: u64,
    fees_scheduled: u64,
    fee_rebids: u64,
    /// Live fee bids, escalated each poll under the configured policy.
    bids: BidBook,
    secret: Vec<u8>,
    slots: Vec<EdgeSlot>,
    waves_len: usize,
    secret_revealed: bool,
    deployment_failed: bool,
    cleanup_deadline: Timestamp,
    cleanup_pending: Vec<(ChainId, TxId)>,
    finished_at: Option<Timestamp>,
    report: Option<SwapReport>,
}

impl HerlihyMachine {
    fn new(config: ProtocolConfig, graph: SwapGraph, leader: Address, kind: ProtocolKind) -> Self {
        let bids = BidBook::new(config.fee_policy);
        HerlihyMachine {
            config,
            graph,
            leader,
            kind,
            phase: Phase::Start,
            timeline: Timeline::new(),
            started_at: 0,
            delta: 0,
            wait_cap: 0,
            deployments: 0,
            calls: 0,
            fees: 0,
            fees_scheduled: 0,
            fee_rebids: 0,
            bids,
            secret: Vec::new(),
            slots: Vec::new(),
            waves_len: 0,
            secret_revealed: false,
            deployment_failed: false,
            cleanup_deadline: 0,
            cleanup_pending: Vec::new(),
            finished_at: None,
            report: None,
        }
    }

    fn record(&mut self, world: &mut dyn ChainApi, at: Timestamp, kind: EventKind) {
        self.timeline.record(at, kind.clone());
        world.record(at, kind);
    }

    fn poll_step(&self, world: &dyn ChainApi) -> Step {
        Step::Waiting { not_before: world.now() + world.min_block_interval_ms() }
    }

    fn hashlock(&self) -> Hash256 {
        Hashlock::from_secret(&self.secret).lock
    }

    /// Escalate stuck bids (replace-by-fee) and rewrite every stored copy
    /// of a superseded transaction/contract id.
    fn poll_bids(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<(), ProtocolError> {
        let changes = self.bids.poll(world, participants)?;
        for change in changes {
            self.apply_bid_change(&change);
        }
        Ok(())
    }

    fn apply_bid_change(&mut self, change: &BidChange) {
        change.apply_accounting(&mut self.fees, &mut self.fee_rebids);
        let (old, new) = (change.old_txid, change.new_txid);
        if change.deploy {
            for slot in &mut self.slots {
                if let Some(deploy) = &mut slot.deploy {
                    if deploy.0 == old {
                        *deploy = (new, change.new_contract());
                    }
                }
            }
        }
        for entry in self.cleanup_pending.iter_mut() {
            change.rewrite_txid(&mut entry.1);
        }
        match &mut self.phase {
            Phase::AwaitWaveDeploys { pending, .. }
            | Phase::AwaitCleanupInclusion { pending, .. } => {
                for entry in pending.iter_mut() {
                    if entry.1 == old {
                        entry.1 = new;
                    }
                }
            }
            Phase::AwaitWaveRedeems { pending, .. } => {
                for entry in pending.iter_mut() {
                    if entry.1 == old {
                        entry.1 = new;
                    }
                }
            }
            _ => {}
        }
    }

    /// Record the publication events for every deployed contract (once, at
    /// the end of phase A — successful or not).
    fn record_published(&mut self, world: &mut dyn ChainApi) {
        let now = world.now();
        for i in 0..self.slots.len() {
            let slot = self.slots[i].clone();
            if let Some((_, contract)) = slot.deploy {
                self.record(
                    world,
                    now,
                    EventKind::ContractPublished { chain: slot.edge.chain, contract },
                );
            }
        }
    }

    /// Enter phase C: the cleanup loop runs until every contract is settled
    /// or two Δ past the last timelock.
    fn enter_cleanup(&mut self) {
        self.cleanup_deadline =
            self.slots.iter().map(|s| s.timelock).max().unwrap_or(self.started_at) + 2 * self.delta;
        self.phase = Phase::CleanupRound;
    }

    fn all_settled(&self, world: &dyn ChainApi) -> bool {
        self.slots.iter().all(|s| {
            edge_disposition(world, s.edge.chain, s.deploy.map(|(_, c)| c))
                != EdgeDisposition::Locked
        })
    }

    /// Submit redemption attempts for `wave` (phase B) or every recoverable
    /// contract (`wave == None`, phase C). Returns `(chain, txid)` pairs.
    ///
    /// During phase B the secret counts as revealed only once the *previous*
    /// wave's redemption published it — recipients within one wave cannot
    /// learn it from each other mid-wave. During cleanup any on-chain
    /// revelation (including one made earlier in the same pass) suffices.
    fn attempt_redeems(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
        wave: Option<usize>,
    ) -> Result<Vec<(ChainId, TxId)>, ProtocolError> {
        let revealed_at_entry = self.secret_revealed;
        let mut submitted = Vec::new();
        for i in 0..self.slots.len() {
            let slot = self.slots[i].clone();
            if wave.is_some_and(|k| slot.wave != k) {
                continue;
            }
            let Some((_, contract)) = slot.deploy else { continue };
            if wave.is_none()
                && edge_disposition(world, slot.edge.chain, Some(contract))
                    != EdgeDisposition::Locked
            {
                continue;
            }
            // Only the leader knows the secret until it appears on some
            // chain.
            let revealed = if wave.is_some() { revealed_at_entry } else { self.secret_revealed };
            if slot.edge.to != self.leader && !revealed {
                continue;
            }
            if world.now() >= slot.timelock {
                continue; // too late to redeem safely
            }
            let call = ContractCall::Htlc(HtlcCall::Redeem { preimage: self.secret.clone() });
            if let Some((txid, fee)) = self.bids.submit_call(
                world,
                participants,
                &slot.edge.to,
                slot.edge.chain,
                contract,
                &call,
            )? {
                self.calls += 1;
                self.fees += fee;
                self.fees_scheduled += world.chain(slot.edge.chain)?.params().call_fee;
                self.secret_revealed = true;
                let now = world.now();
                self.record(
                    world,
                    now,
                    EventKind::ContractRedeemed { chain: slot.edge.chain, contract },
                );
                submitted.push((slot.edge.chain, txid));
            }
        }
        Ok(submitted)
    }

    /// Refund every published contract whose timelock has expired, on behalf
    /// of whichever senders are currently available.
    fn refund_expired(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Vec<(ChainId, TxId)>, ProtocolError> {
        let now = world.now();
        let mut submitted = Vec::new();
        for i in 0..self.slots.len() {
            let slot = self.slots[i].clone();
            let Some((_, contract)) = slot.deploy else { continue };
            if now < slot.timelock {
                continue;
            }
            if edge_disposition(world, slot.edge.chain, Some(contract)) != EdgeDisposition::Locked {
                continue;
            }
            let call = ContractCall::Htlc(HtlcCall::Refund);
            if let Some((txid, fee)) = self.bids.submit_call(
                world,
                participants,
                &slot.edge.from,
                slot.edge.chain,
                contract,
                &call,
            )? {
                self.calls += 1;
                self.fees += fee;
                self.fees_scheduled += world.chain(slot.edge.chain)?.params().call_fee;
                let at = world.now();
                self.record(
                    world,
                    at,
                    EventKind::ContractRefunded { chain: slot.edge.chain, contract },
                );
                submitted.push((slot.edge.chain, txid));
            }
        }
        Ok(submitted)
    }

    /// Move to the next (lower) redemption wave, or into cleanup after the
    /// last one.
    fn next_redeem_phase(&mut self, world: &dyn ChainApi, k: usize) {
        if k == 0 {
            self.finished_at = Some(world.now());
            self.enter_cleanup();
        } else {
            self.phase = Phase::RedeemWave { k: k - 1 };
        }
    }

    fn finish(&mut self, world: &dyn ChainApi) -> Step {
        let outcomes: Vec<EdgeOutcome> = self
            .slots
            .iter()
            .map(|s| {
                let contract = s.deploy.map(|(_, c)| c);
                EdgeOutcome {
                    edge: s.edge,
                    contract,
                    disposition: edge_disposition(world, s.edge.chain, contract),
                }
            })
            .collect();
        let finished_at = match self.finished_at {
            Some(at) if !self.deployment_failed => at,
            _ => world.now(),
        };
        let report = SwapReport {
            protocol: self.kind,
            decision: None,
            edges: outcomes,
            started_at: self.started_at,
            finished_at,
            delta_ms: self.delta,
            deployments: self.deployments,
            calls: self.calls,
            fees_paid: self.fees,
            fees_scheduled: self.fees_scheduled,
            fee_rebids: self.fee_rebids,
            timeline: self.timeline.clone(),
        };
        self.report = Some(report.clone());
        self.phase = Phase::Finished;
        Step::Done(Box::new(report))
    }
}

impl SwapMachine for HerlihyMachine {
    fn footprint(&self) -> crate::driver::MachineFootprint {
        // Pure HTLC protocol: only the graph's chains and participants
        // (the leader is one of them).
        crate::driver::MachineFootprint {
            chains: self.graph.chains(),
            actors: self.graph.participants().to_vec(),
        }
    }

    fn poll(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Step, ProtocolError> {
        if !matches!(self.phase, Phase::Finished) {
            // Fee market: re-bid any submission stuck behind higher bids
            // before doing phase work against possibly-stale ids.
            self.poll_bids(world, participants)?;
        }
        loop {
            match &self.phase {
                Phase::Start => {
                    let now = world.now();
                    self.started_at = now;
                    self.delta = world.delta_ms();
                    self.wait_cap = self.delta * self.config.wait_cap_deltas;
                    self.record(world, now, EventKind::GraphSigned);

                    // The leader's secret and hashlock. Deterministic per
                    // graph so runs are reproducible.
                    let secret = {
                        let mut h = Sha256::new();
                        h.update(b"herlihy/leader-secret");
                        h.update(self.graph.digest().as_bytes());
                        h.finalize().to_vec()
                    };
                    self.secret = secret;

                    // Wave structure and timelocks: wave k deploys at ~k·Δ
                    // and is redeemed at ~(2W - k)·Δ; its timelock is set two
                    // Δ after that, so earlier waves get strictly later
                    // timelocks (t1 > t2).
                    let waves = self.graph.waves_from(&self.leader);
                    let wave_count = waves.len() as u64;
                    self.waves_len = waves.len();
                    let mut slots = Vec::with_capacity(self.graph.contract_count());
                    for (k, wave) in waves.iter().enumerate() {
                        for e in wave {
                            slots.push(EdgeSlot {
                                edge: *e,
                                wave: k,
                                timelock: now + self.delta * (2 * wave_count - k as u64 + 2),
                                deploy: None,
                            });
                        }
                    }
                    self.slots = slots;
                    self.phase = Phase::DeployWave { k: 0 };
                }
                Phase::DeployWave { k } => {
                    let k = *k;
                    let hashlock = self.hashlock();
                    let mut pending = Vec::new();
                    let mut failed = false;
                    for i in 0..self.slots.len() {
                        if self.slots[i].wave != k {
                            continue;
                        }
                        let slot = self.slots[i].clone();
                        let spec = ContractSpec::Htlc(HtlcSpec {
                            recipient: slot.edge.to,
                            hashlock,
                            timelock: slot.timelock,
                        });
                        match self.bids.submit_deploy(
                            world,
                            participants,
                            &slot.edge.from,
                            slot.edge.chain,
                            &spec,
                            slot.edge.amount,
                        )? {
                            Some((txid, contract, fee)) => {
                                self.slots[i].deploy = Some((txid, contract));
                                self.deployments += 1;
                                self.fees += fee;
                                self.fees_scheduled +=
                                    world.chain(slot.edge.chain)?.params().deploy_fee;
                                pending.push((slot.edge.chain, txid));
                                let now = world.now();
                                self.record(
                                    world,
                                    now,
                                    EventKind::ContractSubmitted {
                                        chain: slot.edge.chain,
                                        contract,
                                    },
                                );
                            }
                            None => {
                                // A participant declined or crashed: later
                                // waves do not deploy (their senders are no
                                // longer protected).
                                failed = true;
                                break;
                            }
                        }
                    }
                    if failed {
                        self.deployment_failed = true;
                        self.record_published(world);
                        self.enter_cleanup();
                    } else {
                        // Sequentiality: the next wave only starts once this
                        // one is publicly recognised.
                        self.phase = Phase::AwaitWaveDeploys {
                            k,
                            pending,
                            deadline: world.now() + self.wait_cap,
                        };
                    }
                }
                Phase::AwaitWaveDeploys { k, pending, deadline } => {
                    let (k, deadline) = (*k, *deadline);
                    let all_deep = pending.iter().all(|(chain, txid)| {
                        tx_at_depth(world, *chain, txid, self.config.deployment_depth)
                    });
                    if all_deep {
                        if k + 1 < self.waves_len {
                            self.phase = Phase::DeployWave { k: k + 1 };
                        } else {
                            self.record_published(world);
                            self.finished_at = Some(world.now());
                            self.phase = Phase::RedeemWave { k: self.waves_len - 1 };
                        }
                    } else if world.now() >= deadline {
                        self.deployment_failed = true;
                        self.record_published(world);
                        self.enter_cleanup();
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::RedeemWave { k } => {
                    let k = *k;
                    // Settle any contract whose timelock has already expired
                    // (rational senders refund as soon as they can).
                    let refunds = self.refund_expired(world, participants)?;
                    let redeems = self.attempt_redeems(world, participants, Some(k))?;
                    if !redeems.is_empty() {
                        let mut pending: Vec<(ChainId, TxId, u64)> = Vec::new();
                        for (chain, txid) in redeems {
                            let depth = world.chain(chain)?.params().stable_depth;
                            pending.push((chain, txid, depth));
                        }
                        // Refunds only need inclusion, not burial.
                        for (chain, txid) in refunds {
                            pending.push((chain, txid, 0));
                        }
                        self.phase = Phase::AwaitWaveRedeems {
                            k,
                            pending,
                            deadline: world.now() + self.wait_cap,
                        };
                    } else if self.slots.iter().any(|s| s.wave == k && s.deploy.is_some()) {
                        // Nobody in this wave could redeem (crashed or the
                        // secret is not yet public); give them one Δ before
                        // moving on.
                        self.phase = Phase::WaveGap { k, until: world.now() + self.delta };
                    } else {
                        self.next_redeem_phase(world, k);
                    }
                }
                Phase::AwaitWaveRedeems { k, pending, deadline } => {
                    let (k, deadline) = (*k, *deadline);
                    let all_done = pending
                        .iter()
                        .all(|(chain, txid, depth)| tx_at_depth(world, *chain, txid, *depth));
                    if all_done || world.now() >= deadline {
                        self.next_redeem_phase(world, k);
                    } else {
                        return Ok(self.poll_step(world));
                    }
                }
                Phase::WaveGap { k, until } => {
                    let (k, until) = (*k, *until);
                    if world.now() >= until {
                        self.next_redeem_phase(world, k);
                    } else {
                        return Ok(Step::Waiting { not_before: until });
                    }
                }
                Phase::CleanupRound => {
                    // Phase C: timelock cleanup. Crashed redeemers may
                    // recover in time; once a timelock expires the sender
                    // refunds — this is where the atomicity violation of the
                    // baselines materialises.
                    if self.all_settled(world) || world.now() >= self.cleanup_deadline {
                        let pending: Vec<(ChainId, TxId)> = self
                            .cleanup_pending
                            .iter()
                            .filter(|(chain, txid)| !tx_at_depth(world, *chain, txid, 0))
                            .copied()
                            .collect();
                        if pending.is_empty() {
                            return Ok(self.finish(world));
                        }
                        self.phase = Phase::AwaitCleanupInclusion {
                            pending,
                            deadline: world.now() + 2 * self.delta,
                        };
                    } else {
                        // Recovered redeemers still within their window
                        // redeem, and expired contracts get refunded by
                        // their senders.
                        let redeems = self.attempt_redeems(world, participants, None)?;
                        let refunds = self.refund_expired(world, participants)?;
                        self.cleanup_pending.extend(redeems);
                        self.cleanup_pending.extend(refunds);
                        self.phase = Phase::CleanupWait { until: world.now() + self.delta };
                    }
                }
                Phase::CleanupWait { until } => {
                    let until = *until;
                    if world.now() >= until {
                        self.phase = Phase::CleanupRound;
                    } else {
                        return Ok(Step::Waiting { not_before: until });
                    }
                }
                Phase::AwaitCleanupInclusion { pending, deadline } => {
                    let deadline = *deadline;
                    let all_included =
                        pending.iter().all(|(chain, txid)| tx_at_depth(world, *chain, txid, 0));
                    if all_included || world.now() >= deadline {
                        return Ok(self.finish(world));
                    }
                    return Ok(self.poll_step(world));
                }
                Phase::Finished => {
                    if let Some(report) = &self.report {
                        return Ok(Step::Done(Box::new(report.clone())));
                    }
                    return Ok(self.finish(world));
                }
            }
        }
    }

    fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Start => "start",
            Phase::DeployWave { .. } => "deploy-wave",
            Phase::AwaitWaveDeploys { .. } => "await-wave-deploys",
            Phase::RedeemWave { .. } => "redeem-wave",
            Phase::AwaitWaveRedeems { .. } => "await-wave-redeems",
            Phase::WaveGap { .. } => "wave-gap",
            Phase::CleanupRound => "cleanup-round",
            Phase::CleanupWait { .. } => "cleanup-wait",
            Phase::AwaitCleanupInclusion { .. } => "cleanup-inclusion",
            Phase::Finished => "finished",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AtomicityVerdict;
    use crate::scenario::{figure7b_scenario, ring_scenario, two_party_scenario, ScenarioConfig};
    use ac3_sim::CrashWindow;

    fn driver() -> Herlihy {
        Herlihy::new(ProtocolConfig { deployment_depth: 3, ..Default::default() })
    }

    #[test]
    fn two_party_swap_commits() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let report = driver().execute(&mut s).unwrap();
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "{}", report.summary());
        assert_eq!(report.deployments, 2);
        assert_eq!(report.calls, 2);
    }

    #[test]
    fn ring_of_four_commits_but_latency_grows_with_diameter() {
        let mut lat2 = 0.0;
        let mut lat4 = 0.0;
        for (n, lat) in [(2usize, &mut lat2), (4usize, &mut lat4)] {
            let mut s = ring_scenario(n, 10, &ScenarioConfig::default());
            let report = driver().execute(&mut s).unwrap();
            assert_eq!(
                report.verdict(),
                AtomicityVerdict::AllRedeemed,
                "ring {n}: {}",
                report.summary()
            );
            *lat = report.latency_in_deltas();
        }
        assert!(
            lat4 > lat2 + 1.0,
            "Herlihy latency should grow with diameter (2: {lat2}, 4: {lat4})"
        );
    }

    #[test]
    fn disconnected_graph_is_unsupported() {
        let mut s = figure7b_scenario(&ScenarioConfig::default());
        let err = driver().execute(&mut s).unwrap_err();
        assert!(matches!(err, ProtocolError::UnsupportedGraph(_)));
    }

    #[test]
    fn missing_counterparty_leads_to_refund_not_loss() {
        // Bob never deploys (crashed from the start): Alice's contract is
        // eventually refunded once its timelock expires — atomic abort.
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let alice = s.participants.get("alice").unwrap().address();
        s.participants.get_mut("bob").unwrap().schedule_crash(CrashWindow::permanent(0));
        let mut d = driver();
        d.leader = Some(alice);
        let report = d.execute(&mut s).unwrap();
        assert!(report.is_atomic(), "{}", report.verdict());
        assert_eq!(report.verdict(), AtomicityVerdict::AllRefunded);
    }

    #[test]
    fn crash_past_timelock_violates_atomicity() {
        // The paper's motivating failure, reproduced: the leader redeems the
        // counterparty's contract (revealing s), the counterparty crashes
        // until after its own contract's timelock, and the leader refunds it
        // — the crashed participant ends up losing its asset.
        let cfg = ScenarioConfig::default();
        let mut s = two_party_scenario(50, 80, &cfg);
        let alice = s.participants.get("alice").unwrap().address();
        // Δ = 4s; with two waves the timelocks are at 2·Δ·2 + ... ≈ tens of
        // seconds. Crash Bob (who must redeem last) from just after the
        // leader's redemption until far past every timelock.
        s.participants
            .get_mut("bob")
            .unwrap()
            .schedule_crash(CrashWindow { from: 9_000, until: 600_000 });
        let mut d = driver();
        d.leader = Some(alice);
        let report = d.execute(&mut s).unwrap();
        assert!(
            !report.is_atomic(),
            "expected an atomicity violation, got {} ({})",
            report.verdict(),
            report.summary()
        );
        // Specifically: Alice redeemed Bob's contract while Bob's entitled
        // redemption never happened (his asset was refunded to Alice).
        assert!(matches!(report.verdict(), AtomicityVerdict::Violated { .. }));
    }

    #[test]
    fn leader_selection_rejects_graphs_without_valid_leader() {
        // Two disjoint 2-cycles (Figure 7b) — already covered — plus a graph
        // where every removal leaves a cycle.
        let names = ["a", "b", "c", "d"];
        let mut s = crate::scenario::custom_scenario(
            &names,
            &[(0, 1, 1), (1, 0, 1), (2, 3, 1), (3, 2, 1)],
            &ScenarioConfig::default(),
        );
        assert!(Herlihy::supports_graph(&s.graph).is_err());
        let err = driver().execute(&mut s).unwrap_err();
        assert!(matches!(err, ProtocolError::UnsupportedGraph(_)));
    }
}
