//! Herlihy's single-leader atomic cross-chain swap protocol \[16\] — the
//! state-of-the-art baseline the paper compares against.
//!
//! The protocol uses hashlocked, timelocked contracts (HTLCs):
//!
//! * a swap **leader** creates the secret `s` and the hashlock `h = H(s)`;
//! * contracts are deployed **sequentially** in waves following the graph
//!   from the leader (a contract is only published once the contracts that
//!   protect its sender are already public), each wave taking Δ;
//! * redemption also proceeds **sequentially** in the reverse order — the
//!   leader redeems first (revealing `s` on chain), and the revealed secret
//!   lets the remaining participants redeem wave by wave;
//! * each contract carries a timelock; earlier-deployed contracts carry
//!   *later* timelocks (`t1 > t2` in the paper's two-party walkthrough) so
//!   every participant nominally has time to redeem after learning `s`.
//!
//! The sequential phases make the end-to-end latency `2·Δ·Diam(D)`
//! (Section 6.1, Figure 8), and the timelocks couple safety to liveness:
//! a participant who cannot redeem before their counterparty's timelock
//! expires loses their asset (experiment E6 reproduces this violation).
//! Disconnected graphs (Figure 7b) are not executable at all.

use crate::actions::{call_contract, deploy_contract, edge_disposition};
use crate::graph::{SwapEdge, SwapGraph};
use crate::protocol::{
    EdgeDisposition, EdgeOutcome, ProtocolConfig, ProtocolError, ProtocolKind, SwapReport,
};
use crate::scenario::Scenario;
use ac3_chain::{Address, ContractId, Timestamp, TxId};
use ac3_contracts::{ContractCall, ContractSpec, HtlcCall, HtlcSpec};
use ac3_crypto::{Hashlock, Sha256};
use ac3_sim::EventKind;

/// The Herlihy single-leader protocol driver.
#[derive(Debug, Clone, Default)]
pub struct Herlihy {
    /// Driver configuration.
    pub config: ProtocolConfig,
    /// Report the run under this protocol name (lets the Nolan wrapper
    /// reuse the driver).
    pub kind: Option<ProtocolKind>,
    /// Preferred swap leader. When unset the driver picks the first
    /// participant that satisfies the leader conditions.
    pub leader: Option<Address>,
}

/// Per-edge bookkeeping during a run.
#[derive(Debug, Clone)]
struct EdgeSlot {
    edge: SwapEdge,
    wave: usize,
    timelock: Timestamp,
    deploy: Option<(TxId, ContractId)>,
}

impl Herlihy {
    /// Create a driver with the given configuration.
    pub fn new(config: ProtocolConfig) -> Self {
        Herlihy { config, kind: None, leader: None }
    }

    /// Create a driver with an explicit swap leader.
    pub fn with_leader(config: ProtocolConfig, leader: Address) -> Self {
        Herlihy { config, kind: None, leader: Some(leader) }
    }

    /// Check whether this protocol can execute `graph` and pick the swap
    /// leader: the graph must be weakly connected, every edge must be
    /// reachable from the leader, and removing the leader must leave an
    /// acyclic graph (Section 5.3).
    pub fn supports_graph(graph: &SwapGraph) -> Result<Address, ProtocolError> {
        if !graph.is_connected() {
            return Err(ProtocolError::UnsupportedGraph(
                "single-leader swaps cannot execute disconnected graphs (Figure 7b)".to_string(),
            ));
        }
        for candidate in graph.participants() {
            let waves = graph.waves_from(candidate);
            let covered: usize = waves.iter().map(|w| w.len()).sum();
            let all_reachable =
                covered == graph.contract_count() && waves.iter().all(|w| !w.is_empty());
            // The last synthetic wave holds unreachable edges; reject those.
            let reachable_only = waves
                .iter()
                .flat_map(|w| w.iter())
                .all(|e| graph.waves_from(candidate).iter().flatten().any(|x| x == e));
            if all_reachable && reachable_only && graph.acyclic_without(candidate) {
                return Ok(*candidate);
            }
        }
        Err(ProtocolError::UnsupportedGraph(
            "no leader exists whose removal makes the graph acyclic".to_string(),
        ))
    }

    /// Execute the AC2T described by the scenario's graph.
    pub fn execute(&self, scenario: &mut Scenario) -> Result<SwapReport, ProtocolError> {
        let cfg = &self.config;
        let delta = scenario.world.delta_ms();
        let wait_cap = delta * cfg.wait_cap_deltas;
        let started_at = scenario.world.now();
        let kind = self.kind.unwrap_or(ProtocolKind::Herlihy);
        let mut calls = 0u64;
        let mut deployments = 0u64;
        let mut fees = 0u64;

        let leader = match self.leader {
            Some(leader) => {
                // Validate the caller's choice against the same conditions.
                Self::supports_graph(&scenario.graph)?;
                if !scenario.graph.participants().contains(&leader) {
                    return Err(ProtocolError::UnknownParticipant(format!("{leader}")));
                }
                leader
            }
            None => Self::supports_graph(&scenario.graph)?,
        };
        scenario.world.timeline.record(started_at, EventKind::GraphSigned);

        // The leader's secret and hashlock. Deterministic per graph so runs
        // are reproducible.
        let secret = {
            let mut h = Sha256::new();
            h.update(b"herlihy/leader-secret");
            h.update(scenario.graph.digest().as_bytes());
            h.finalize().to_vec()
        };
        let hashlock = Hashlock::from_secret(&secret).lock;

        // Wave structure and timelocks: wave k deploys at ~k·Δ and is
        // redeemed at ~(2W - k)·Δ; its timelock is set two Δ after that, so
        // earlier waves get strictly later timelocks (t1 > t2).
        let waves = scenario.graph.waves_from(&leader);
        let wave_count = waves.len() as u64;
        let mut slots: Vec<EdgeSlot> = Vec::with_capacity(scenario.graph.contract_count());
        for (k, wave) in waves.iter().enumerate() {
            for e in wave {
                slots.push(EdgeSlot {
                    edge: *e,
                    wave: k,
                    timelock: started_at + delta * (2 * wave_count - k as u64 + 2),
                    deploy: None,
                });
            }
        }

        // ------------------------------------------------------------------
        // Phase A: sequential deployment, wave by wave.
        // ------------------------------------------------------------------
        let mut deployment_failed = false;
        'waves: for k in 0..waves.len() {
            let mut wave_deploys: Vec<(usize, TxId)> = Vec::new();
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.wave != k {
                    continue;
                }
                let spec = ContractSpec::Htlc(HtlcSpec {
                    recipient: slot.edge.to,
                    hashlock,
                    timelock: slot.timelock,
                });
                match deploy_contract(
                    &mut scenario.world,
                    &mut scenario.participants,
                    &slot.edge.from,
                    slot.edge.chain,
                    &spec,
                    slot.edge.amount,
                )? {
                    Some((txid, contract)) => {
                        slot.deploy = Some((txid, contract));
                        deployments += 1;
                        fees += scenario.world.chain(slot.edge.chain)?.params().deploy_fee;
                        wave_deploys.push((i, txid));
                        scenario.world.timeline.record(
                            scenario.world.now(),
                            EventKind::ContractSubmitted { chain: slot.edge.chain, contract },
                        );
                    }
                    None => {
                        // A participant declined or crashed: later waves do
                        // not deploy (their senders are no longer protected).
                        deployment_failed = true;
                        break 'waves;
                    }
                }
            }
            // Sequentiality: the next wave only starts once this one is
            // publicly recognised.
            let depth = cfg.deployment_depth;
            let wave_txs: Vec<(ac3_chain::ChainId, TxId)> =
                wave_deploys.iter().map(|(i, txid)| (slots[*i].edge.chain, *txid)).collect();
            if scenario
                .world
                .advance_until("wave deployments to stabilise", wait_cap, move |w| {
                    wave_txs.iter().all(|(chain, txid)| {
                        w.chain(*chain)
                            .ok()
                            .and_then(|c| c.tx_depth(txid))
                            .is_some_and(|d| d >= depth)
                    })
                })
                .is_err()
            {
                deployment_failed = true;
                break;
            }
        }
        for slot in &slots {
            if let Some((_, contract)) = slot.deploy {
                scenario.world.timeline.record(
                    scenario.world.now(),
                    EventKind::ContractPublished { chain: slot.edge.chain, contract },
                );
            }
        }

        // ------------------------------------------------------------------
        // Phase B: sequential redemption in reverse wave order (only when
        // every contract is published — otherwise everyone waits for their
        // timelock and refunds).
        // ------------------------------------------------------------------
        let mut secret_revealed = false;
        let mut finished_at = scenario.world.now();
        if !deployment_failed {
            for k in (0..waves.len()).rev() {
                // Settle any contract whose timelock has already expired
                // (rational senders refund as soon as they can).
                self.refund_expired(scenario, &mut slots, &mut calls, &mut fees)?;

                let mut wave_redeems: Vec<(ac3_chain::ChainId, TxId)> = Vec::new();
                for slot in slots.iter().filter(|s| s.wave == k) {
                    let Some((_, contract)) = slot.deploy else { continue };
                    // Only the leader knows the secret until it appears on
                    // some chain.
                    if slot.edge.to != leader && !secret_revealed {
                        continue;
                    }
                    if scenario.world.now() >= slot.timelock {
                        continue; // too late to redeem safely
                    }
                    let call = ContractCall::Htlc(HtlcCall::Redeem { preimage: secret.clone() });
                    if let Some(txid) = call_contract(
                        &mut scenario.world,
                        &mut scenario.participants,
                        &slot.edge.to,
                        slot.edge.chain,
                        contract,
                        &call,
                    )? {
                        calls += 1;
                        fees += scenario.world.chain(slot.edge.chain)?.params().call_fee;
                        wave_redeems.push((slot.edge.chain, txid));
                        scenario.world.timeline.record(
                            scenario.world.now(),
                            EventKind::ContractRedeemed { chain: slot.edge.chain, contract },
                        );
                    }
                }
                if !wave_redeems.is_empty() {
                    secret_revealed = true;
                    let pending = wave_redeems.clone();
                    let _ = scenario.world.advance_until(
                        "wave redemptions to stabilise",
                        wait_cap,
                        move |w| {
                            pending.iter().all(|(chain, txid)| {
                                w.chain(*chain).ok().and_then(|c| c.tx_depth(txid)).is_some_and(
                                    |d| {
                                        d >= w
                                            .chain(*chain)
                                            .map(|c| c.params().stable_depth)
                                            .unwrap_or(0)
                                    },
                                )
                            })
                        },
                    );
                } else if slots.iter().any(|s| s.wave == k && s.deploy.is_some()) {
                    // Nobody in this wave could redeem (crashed or the secret
                    // is not yet public); give them one Δ before moving on.
                    scenario.world.advance(delta);
                }
            }
            finished_at = scenario.world.now();
        }

        // ------------------------------------------------------------------
        // Phase C: timelock cleanup. Crashed redeemers may recover in time;
        // once a timelock expires the sender refunds — this is where the
        // atomicity violation of the baselines materialises.
        // ------------------------------------------------------------------
        let max_timelock = slots.iter().map(|s| s.timelock).max().unwrap_or(started_at);
        while scenario.world.now() < max_timelock + 2 * delta {
            let all_settled = slots.iter().all(|s| {
                edge_disposition(&scenario.world, s.edge.chain, s.deploy.map(|(_, c)| c))
                    != EdgeDisposition::Locked
            });
            if all_settled {
                break;
            }
            // Recovered redeemers still within their window redeem...
            for slot in slots.clone() {
                let Some((_, contract)) = slot.deploy else { continue };
                if edge_disposition(&scenario.world, slot.edge.chain, Some(contract))
                    != EdgeDisposition::Locked
                {
                    continue;
                }
                let knows_secret = slot.edge.to == leader || secret_revealed;
                if knows_secret && scenario.world.now() < slot.timelock {
                    let call = ContractCall::Htlc(HtlcCall::Redeem { preimage: secret.clone() });
                    if let Some(txid) = call_contract(
                        &mut scenario.world,
                        &mut scenario.participants,
                        &slot.edge.to,
                        slot.edge.chain,
                        contract,
                        &call,
                    )? {
                        calls += 1;
                        fees += scenario.world.chain(slot.edge.chain)?.params().call_fee;
                        secret_revealed = true;
                        let _ = scenario.world.wait_for_inclusion(slot.edge.chain, txid, delta);
                        scenario.world.timeline.record(
                            scenario.world.now(),
                            EventKind::ContractRedeemed { chain: slot.edge.chain, contract },
                        );
                    }
                }
            }
            // ...and expired contracts get refunded by their senders.
            self.refund_expired(scenario, &mut slots, &mut calls, &mut fees)?;
            scenario.world.advance(delta);
        }
        if deployment_failed {
            finished_at = scenario.world.now();
        }

        let outcomes: Vec<EdgeOutcome> = slots
            .iter()
            .map(|s| {
                let contract = s.deploy.map(|(_, c)| c);
                EdgeOutcome {
                    edge: s.edge,
                    contract,
                    disposition: edge_disposition(&scenario.world, s.edge.chain, contract),
                }
            })
            .collect();

        Ok(SwapReport {
            protocol: kind,
            decision: None,
            edges: outcomes,
            started_at,
            finished_at,
            delta_ms: delta,
            deployments,
            calls,
            fees_paid: fees,
            timeline: scenario.world.timeline.clone(),
        })
    }

    /// Refund every published contract whose timelock has expired, on behalf
    /// of whichever senders are currently available.
    fn refund_expired(
        &self,
        scenario: &mut Scenario,
        slots: &mut [EdgeSlot],
        calls: &mut u64,
        fees: &mut u64,
    ) -> Result<(), ProtocolError> {
        let now = scenario.world.now();
        for slot in slots.iter() {
            let Some((_, contract)) = slot.deploy else { continue };
            if now < slot.timelock {
                continue;
            }
            if edge_disposition(&scenario.world, slot.edge.chain, Some(contract))
                != EdgeDisposition::Locked
            {
                continue;
            }
            let call = ContractCall::Htlc(HtlcCall::Refund);
            if let Some(txid) = call_contract(
                &mut scenario.world,
                &mut scenario.participants,
                &slot.edge.from,
                slot.edge.chain,
                contract,
                &call,
            )? {
                *calls += 1;
                *fees += scenario.world.chain(slot.edge.chain)?.params().call_fee;
                let _ = scenario.world.wait_for_inclusion(
                    slot.edge.chain,
                    txid,
                    scenario.world.delta_ms(),
                );
                scenario.world.timeline.record(
                    scenario.world.now(),
                    EventKind::ContractRefunded { chain: slot.edge.chain, contract },
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AtomicityVerdict;
    use crate::scenario::{figure7b_scenario, ring_scenario, two_party_scenario, ScenarioConfig};
    use ac3_sim::CrashWindow;

    fn driver() -> Herlihy {
        Herlihy::new(ProtocolConfig { deployment_depth: 3, ..Default::default() })
    }

    #[test]
    fn two_party_swap_commits() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let report = driver().execute(&mut s).unwrap();
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "{}", report.summary());
        assert_eq!(report.deployments, 2);
        assert_eq!(report.calls, 2);
    }

    #[test]
    fn ring_of_four_commits_but_latency_grows_with_diameter() {
        let mut lat2 = 0.0;
        let mut lat4 = 0.0;
        for (n, lat) in [(2usize, &mut lat2), (4usize, &mut lat4)] {
            let mut s = ring_scenario(n, 10, &ScenarioConfig::default());
            let report = driver().execute(&mut s).unwrap();
            assert_eq!(
                report.verdict(),
                AtomicityVerdict::AllRedeemed,
                "ring {n}: {}",
                report.summary()
            );
            *lat = report.latency_in_deltas();
        }
        assert!(
            lat4 > lat2 + 1.0,
            "Herlihy latency should grow with diameter (2: {lat2}, 4: {lat4})"
        );
    }

    #[test]
    fn disconnected_graph_is_unsupported() {
        let mut s = figure7b_scenario(&ScenarioConfig::default());
        let err = driver().execute(&mut s).unwrap_err();
        assert!(matches!(err, ProtocolError::UnsupportedGraph(_)));
    }

    #[test]
    fn missing_counterparty_leads_to_refund_not_loss() {
        // Bob never deploys (crashed from the start): Alice's contract is
        // eventually refunded once its timelock expires — atomic abort.
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let alice = s.participants.get("alice").unwrap().address();
        s.participants.get_mut("bob").unwrap().schedule_crash(CrashWindow::permanent(0));
        let mut d = driver();
        d.leader = Some(alice);
        let report = d.execute(&mut s).unwrap();
        assert!(report.is_atomic(), "{}", report.verdict());
        assert_eq!(report.verdict(), AtomicityVerdict::AllRefunded);
    }

    #[test]
    fn crash_past_timelock_violates_atomicity() {
        // The paper's motivating failure, reproduced: the leader redeems the
        // counterparty's contract (revealing s), the counterparty crashes
        // until after its own contract's timelock, and the leader refunds it
        // — the crashed participant ends up losing its asset.
        let cfg = ScenarioConfig::default();
        let mut s = two_party_scenario(50, 80, &cfg);
        let alice = s.participants.get("alice").unwrap().address();
        // Δ = 4s; with two waves the timelocks are at 2·Δ·2 + ... ≈ tens of
        // seconds. Crash Bob (who must redeem last) from just after the
        // leader's redemption until far past every timelock.
        s.participants
            .get_mut("bob")
            .unwrap()
            .schedule_crash(CrashWindow { from: 9_000, until: 600_000 });
        let mut d = driver();
        d.leader = Some(alice);
        let report = d.execute(&mut s).unwrap();
        assert!(
            !report.is_atomic(),
            "expected an atomicity violation, got {} ({})",
            report.verdict(),
            report.summary()
        );
        // Specifically: Alice redeemed Bob's contract while Bob's entitled
        // redemption never happened (his asset was refunded to Alice).
        assert!(matches!(report.verdict(), AtomicityVerdict::Violated { .. }));
    }

    #[test]
    fn leader_selection_rejects_graphs_without_valid_leader() {
        // Two disjoint 2-cycles (Figure 7b) — already covered — plus a graph
        // where every removal leaves a cycle.
        let names = ["a", "b", "c", "d"];
        let mut s = crate::scenario::custom_scenario(
            &names,
            &[(0, 1, 1), (1, 0, 1), (2, 3, 1), (3, 2, 1)],
            &ScenarioConfig::default(),
        );
        assert!(Herlihy::supports_graph(&s.graph).is_err());
        let err = driver().execute(&mut s).unwrap_err();
        assert!(matches!(err, ProtocolError::UnsupportedGraph(_)));
    }
}
