//! The step/poll driver architecture: protocol drivers as resumable state
//! machines.
//!
//! Historically every protocol driver was a blocking one-shot function that
//! owned the simulated clock: `execute(&mut Scenario)` advanced world time
//! inside its waits, so only one swap could ever be in flight. The machines
//! in [`crate::ac3wn`], [`crate::ac3tw`], [`crate::herlihy`] and
//! [`crate::herlihy_multi`] invert that
//! control flow: a machine never advances time — [`SwapMachine::poll`] does
//! as much protocol work as is possible *at the world's current instant*
//! (submitting transactions, reading chain state, transitioning phases) and
//! then returns a [`Step`] telling the caller when polling again could
//! observe progress. Whoever owns the clock — the single-swap [`drive`]
//! loop or the concurrent [`crate::scheduler::Scheduler`] — advances time
//! between polls, so N machines can interleave over one shared world.
//!
//! Timeouts are implemented inside the machines as deadlines checked at
//! poll time, which reproduces the blocking drivers' `advance_until`
//! semantics exactly: the condition is always re-checked once at or after
//! the deadline before the wait is declared failed.

use crate::protocol::{ProtocolError, SwapReport};
use ac3_chain::{Address, ChainId, Timestamp, TxId};
use ac3_sim::{
    AuditApi, AuditScope, ChainApi, DirectApi, NetworkedApi, ParticipantSet, World, WorldError,
};
use std::sync::OnceLock;

/// The observable state of an in-flight swap after one [`SwapMachine::poll`].
#[derive(Debug)]
pub enum Step {
    /// The machine is waiting on an on-chain condition or a protocol timer.
    /// Polling again before `not_before` cannot observe progress (nothing
    /// changes between blocks); polling later than `not_before` is always
    /// safe — deadlines are measured against world time, not poll counts.
    Waiting {
        /// Earliest simulated time at which polling again is useful.
        not_before: Timestamp,
    },
    /// The swap reached a terminal state and produced its report.
    Done(Box<SwapReport>),
}

/// The complete set of world resources a machine may ever touch: the
/// chains it submits to or reads from, and the participant addresses it
/// signs on behalf of. Declared up front (it is derivable from the swap
/// graph before the first poll) so the parallel scheduler can partition a
/// batch into data-disjoint shards — two machines whose footprints share
/// no chain and no actor can run on different threads with no possibility
/// of observing each other.
#[derive(Debug, Clone, Default)]
pub struct MachineFootprint {
    /// Every chain the machine submits transactions to or reads state
    /// from, over its whole lifetime (including recovery paths).
    pub chains: Vec<ChainId>,
    /// Every participant address the machine looks up in the
    /// [`ParticipantSet`] (to sign, or to check crash availability).
    pub actors: Vec<Address>,
}

/// A protocol driver decomposed into a resumable state machine.
///
/// Implementations must never advance the world clock; they may submit
/// transactions, read chain state and record timeline events. After a
/// machine has returned [`Step::Done`] or an error, further polls must
/// return the same terminal result (or a cheap copy of it) without side
/// effects.
///
/// Machines are `Send` (the supertrait bound): the parallel scheduler
/// moves them to worker threads, each of which polls its shard of the
/// batch against a shard of the world. They are never *shared* between
/// threads mid-poll, so `Sync` is not required.
///
/// Every protocol in the reproduction implements this trait —
/// [`crate::ac3wn::Ac3wnMachine`], [`crate::ac3tw::Ac3twMachine`],
/// [`crate::herlihy::HerlihyMachine`] and
/// [`crate::herlihy_multi::HerlihyMultiMachine`] — so heterogeneous
/// protocol mixes can share one [`crate::scheduler::Scheduler`] batch; see
/// the scheduler module docs for a two-machine example.
pub trait SwapMachine: Send {
    /// Advance the machine as far as possible at the world's current time.
    ///
    /// Machines observe and mutate chains exclusively through the
    /// [`ChainApi`] seam — never `&mut World` — so the same machine runs
    /// unchanged against the synchronous [`DirectApi`], the message-routed
    /// [`NetworkedApi`], or (in tests, via coercion) a bare `&mut World`.
    fn poll(
        &mut self,
        world: &mut dyn ChainApi,
        participants: &mut ParticipantSet,
    ) -> Result<Step, ProtocolError>;

    /// A short label of the machine's current phase, for diagnostics.
    fn phase_name(&self) -> &'static str {
        "unknown"
    }

    /// The chains and actors this machine may ever touch (see
    /// [`MachineFootprint`]). Must be stable across the machine's lifetime
    /// and conservative: declaring too much merely costs parallelism;
    /// declaring too little would let the partitioner co-schedule machines
    /// that actually alias, which the shard split turns into a hard
    /// `UnknownChain` error rather than a silent race.
    fn footprint(&self) -> MachineFootprint;
}

/// Drive a single machine to completion, advancing the world clock between
/// polls — the legacy blocking `execute` behaviour, expressed as the N = 1
/// special case of scheduling.
pub fn drive(
    machine: &mut dyn SwapMachine,
    world: &mut World,
    participants: &mut ParticipantSet,
) -> Result<SwapReport, ProtocolError> {
    loop {
        match poll_machine(machine, world, participants)? {
            Step::Done(report) => return Ok(*report),
            Step::Waiting { not_before } => {
                let dt = not_before.saturating_sub(world.now()).max(1);
                world.advance(dt);
            }
        }
    }
}

/// Whether the `AC3_FOOTPRINT_AUDIT` environment variable asks for the
/// footprint-audit sanitizer (see [`ac3_sim::audit`]): any value other
/// than empty or `0` enables it. Read once per process — the scheduler
/// captures it at construction, so a test can still force either setting
/// through `Scheduler::with_footprint_audit`.
pub fn footprint_audit_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("AC3_FOOTPRINT_AUDIT").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
    })
}

/// Poll a machine against `world` through the appropriate [`ChainApi`]
/// implementation: the message-routed [`NetworkedApi`] when a network
/// profile is attached ([`World::attach_network`]), the synchronous
/// [`DirectApi`] otherwise. Every driver loop — [`drive`] and both
/// scheduler paths — polls through here, so attaching a network reroutes
/// an entire batch without touching machine code. Audits the poll when the
/// `AC3_FOOTPRINT_AUDIT` environment variable is set.
pub fn poll_machine(
    machine: &mut dyn SwapMachine,
    world: &mut World,
    participants: &mut ParticipantSet,
) -> Result<Step, ProtocolError> {
    poll_machine_audited(machine, world, participants, footprint_audit_enabled(), None)
}

/// [`poll_machine`] with the footprint-audit sanitizer made explicit.
///
/// With `audit` set, the poll runs behind an [`AuditApi`] scoped to the
/// machine's declared [`SwapMachine::footprint`], and the participant set
/// audits actor lookups for the duration of the poll: touching any chain
/// or actor outside the footprint panics with the machine's identity
/// (`id`, when the caller knows it), its current phase, and the offending
/// chain or actor. The wrapper is stateless pass-through otherwise, so an
/// audited poll that does not panic is bitwise identical to an unaudited
/// one.
pub fn poll_machine_audited(
    machine: &mut dyn SwapMachine,
    world: &mut World,
    participants: &mut ParticipantSet,
    audit: bool,
    id: Option<u64>,
) -> Result<Step, ProtocolError> {
    if !audit {
        return if world.network_attached() {
            machine.poll(&mut NetworkedApi::new(world), participants)
        } else {
            machine.poll(&mut DirectApi::new(world), participants)
        };
    }
    let footprint = machine.footprint();
    let label = match id {
        Some(id) => format!("machine {id}"),
        None => "machine".to_string(),
    };
    let scope = AuditScope::new(
        label,
        machine.phase_name().to_string(),
        &footprint.chains,
        &footprint.actors,
    );
    participants.begin_audit(scope.clone());
    let result = if world.network_attached() {
        machine.poll(&mut AuditApi::new(&mut NetworkedApi::new(world), &scope), participants)
    } else {
        machine.poll(&mut AuditApi::new(&mut DirectApi::new(world), &scope), participants)
    };
    participants.end_audit();
    result
}

/// Whether a transaction is buried under at least `depth` canonical blocks.
pub(crate) fn tx_at_depth(world: &dyn ChainApi, chain: ChainId, txid: &TxId, depth: u64) -> bool {
    world.chain(chain).ok().and_then(|c| c.tx_depth(txid)).is_some_and(|d| d >= depth)
}

/// Whether a transaction has reached its chain's configured stable depth.
pub(crate) fn tx_stable(world: &dyn ChainApi, chain: ChainId, txid: &TxId) -> bool {
    let Ok(c) = world.chain(chain) else { return false };
    tx_at_depth(world, chain, txid, c.params().stable_depth)
}

/// Indices of deployed edges whose contract is still locked in `P` — the
/// candidates of a recovery pass (shared by the AC3WN and AC3TW machines).
pub(crate) fn unsettled_edges(
    world: &dyn ChainApi,
    edges: &[crate::graph::SwapEdge],
    deploys: &[Option<(TxId, ac3_chain::ContractId)>],
) -> Vec<usize> {
    (0..edges.len())
        .filter(|i| {
            deploys.get(*i).copied().flatten().is_some()
                && crate::actions::edge_disposition(
                    world,
                    edges[*i].chain,
                    deploys[*i].map(|(_, c)| c),
                ) == crate::protocol::EdgeDisposition::Locked
        })
        .collect()
}

/// The timeout error the blocking drivers produced from `advance_until`,
/// reproduced for deadline expiry inside machines.
pub(crate) fn wait_timeout(what: &str, at: Timestamp) -> ProtocolError {
    ProtocolError::from(WorldError::Timeout { what: what.to_string(), at })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_chain::ChainParams;

    /// A machine that waits a fixed number of polls, then finishes.
    struct Countdown {
        polls_left: u32,
        finished_at: Option<Timestamp>,
    }

    impl SwapMachine for Countdown {
        fn poll(
            &mut self,
            world: &mut dyn ChainApi,
            _participants: &mut ParticipantSet,
        ) -> Result<Step, ProtocolError> {
            if self.polls_left == 0 {
                let at = *self.finished_at.get_or_insert(world.now());
                let report = crate::SwapReport {
                    protocol: crate::ProtocolKind::Ac3Wn,
                    decision: None,
                    edges: Vec::new(),
                    started_at: 0,
                    finished_at: at,
                    delta_ms: 1,
                    deployments: 0,
                    calls: 0,
                    fees_paid: 0,
                    fees_scheduled: 0,
                    fee_rebids: 0,
                    timeline: ac3_sim::Timeline::new(),
                };
                return Ok(Step::Done(Box::new(report)));
            }
            self.polls_left -= 1;
            Ok(Step::Waiting { not_before: world.now() + world.min_block_interval_ms() })
        }

        fn footprint(&self) -> crate::driver::MachineFootprint {
            // Touches no chain and signs for no one — schedulable anywhere.
            crate::driver::MachineFootprint::default()
        }
    }

    #[test]
    fn drive_advances_time_between_polls() {
        let mut world = World::new();
        world.add_chain(ChainParams::test("c"), &[]);
        let mut participants = ParticipantSet::new();
        let mut machine = Countdown { polls_left: 3, finished_at: None };
        let report = drive(&mut machine, &mut world, &mut participants).unwrap();
        // Three waits of one block interval each.
        assert_eq!(report.finished_at, 3_000);
        assert_eq!(world.now(), 3_000);
    }

    #[test]
    fn depth_helpers_track_canonical_burial() {
        let alice = ac3_chain::Address::from(ac3_crypto::KeyPair::from_seed(b"alice").public());
        let mut world = World::new();
        let mut params = ChainParams::test("c");
        params.stable_depth = 2;
        let chain = world.add_chain(params, &[(alice, 100)]);
        let mut kp = ac3_chain::TxBuilder::new(ac3_crypto::KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &alice, 1, 1).unwrap();
        let txid = world.submit(chain, kp.transfer(inputs, outputs, 1)).unwrap();
        assert!(!tx_at_depth(&world, chain, &txid, 0));
        world.advance(1_000);
        assert!(tx_at_depth(&world, chain, &txid, 0));
        assert!(!tx_stable(&world, chain, &txid));
        world.advance(2_000);
        assert!(tx_stable(&world, chain, &txid));
    }
}
