//! Low-level participant actions shared by all protocol drivers: deploying a
//! swap contract, calling a contract function, and reading back an edge's
//! disposition. Every action respects the fault model — a crashed
//! participant or an unreachable chain makes the action silently fail (the
//! action returns `Ok(None)`), exactly like a real participant who cannot
//! reach their blockchain.

use crate::protocol::{EdgeDisposition, ProtocolError};
use ac3_chain::{Address, Amount, ChainId, ContractId, TxId};
use ac3_contracts::{ContractCall, ContractSpec};
use ac3_sim::{ChainApi, ParticipantSet};

/// Attempt to deploy a contract as `owner`, locking `lock` and paying the
/// chain's deployment fee (one-shot, fixed-fee — the non-bidding wrapper
/// around [`crate::fee::BidBook::submit_deploy`]).
///
/// Returns `Ok(None)` when the owner is crashed or the chain is unreachable
/// — the caller decides what that means for the protocol (usually "this
/// participant declined/failed to publish").
pub fn deploy_contract(
    world: &mut dyn ChainApi,
    participants: &mut ParticipantSet,
    owner: &Address,
    chain: ChainId,
    spec: &ContractSpec,
    lock: Amount,
) -> Result<Option<(TxId, ContractId)>, ProtocolError> {
    let mut book = crate::fee::BidBook::new(crate::fee::FeePolicy::Fixed);
    Ok(book
        .submit_deploy(world, participants, owner, chain, spec, lock)?
        .map(|(txid, contract, _)| (txid, contract)))
}

/// Attempt a contract function call as `caller`, paying the chain's call
/// fee (one-shot, fixed-fee — the non-bidding wrapper around
/// [`crate::fee::BidBook::submit_call`]). Returns `Ok(None)` when the
/// caller is crashed or the chain is unreachable.
pub fn call_contract(
    world: &mut dyn ChainApi,
    participants: &mut ParticipantSet,
    caller: &Address,
    chain: ChainId,
    contract: ContractId,
    call: &ContractCall,
) -> Result<Option<TxId>, ProtocolError> {
    let mut book = crate::fee::BidBook::new(crate::fee::FeePolicy::Fixed);
    Ok(book.submit_call(world, participants, caller, chain, contract, call)?.map(|(txid, _)| txid))
}

/// Read the disposition of an edge's contract from the chain.
pub fn edge_disposition(
    world: &dyn ChainApi,
    chain: ChainId,
    contract: Option<ContractId>,
) -> EdgeDisposition {
    match contract {
        None => EdgeDisposition::Unpublished,
        Some(id) => match world.contract_state(chain, id) {
            Some((tag, _)) => {
                EdgeDisposition::from_tag(&tag).unwrap_or(EdgeDisposition::Unpublished)
            }
            None => EdgeDisposition::Unpublished,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{two_party_scenario, ScenarioConfig};
    use ac3_contracts::HtlcSpec;
    use ac3_crypto::Hashlock;
    use ac3_sim::CrashWindow;

    fn htlc_spec(recipient: Address) -> ContractSpec {
        ContractSpec::Htlc(HtlcSpec {
            recipient,
            hashlock: Hashlock::from_secret(b"s").lock,
            timelock: 1_000_000,
        })
    }

    #[test]
    fn deploy_and_read_disposition() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let alice = s.participants.get("alice").unwrap().address();
        let bob = s.participants.get("bob").unwrap().address();
        let chain = s.asset_chains[0];

        let (txid, contract) =
            deploy_contract(&mut s.world, &mut s.participants, &alice, chain, &htlc_spec(bob), 50)
                .unwrap()
                .expect("alice is available");
        s.world.wait_for_inclusion(chain, txid, 60_000).unwrap();
        assert_eq!(edge_disposition(&s.world, chain, Some(contract)), EdgeDisposition::Locked);
        assert_eq!(edge_disposition(&s.world, chain, None), EdgeDisposition::Unpublished);
    }

    #[test]
    fn crashed_participant_cannot_deploy() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let alice = s.participants.get("alice").unwrap().address();
        let bob = s.participants.get("bob").unwrap().address();
        s.participants.get_mut("alice").unwrap().schedule_crash(CrashWindow::permanent(0));
        let result = deploy_contract(
            &mut s.world,
            &mut s.participants,
            &alice,
            s.asset_chains[0],
            &htlc_spec(bob),
            50,
        )
        .unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn insufficient_funds_is_an_error() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let alice = s.participants.get("alice").unwrap().address();
        let bob = s.participants.get("bob").unwrap().address();
        let err = deploy_contract(
            &mut s.world,
            &mut s.participants,
            &alice,
            s.asset_chains[0],
            &htlc_spec(bob),
            10_000_000,
        )
        .unwrap_err();
        assert!(matches!(err, ProtocolError::InsufficientFunds { .. }));
    }

    #[test]
    fn unknown_participant_is_an_error() {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let stranger = Address::from(ac3_crypto::KeyPair::from_seed(b"stranger").public());
        let bob = s.participants.get("bob").unwrap().address();
        let err = deploy_contract(
            &mut s.world,
            &mut s.participants,
            &stranger,
            s.asset_chains[0],
            &htlc_spec(bob),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, ProtocolError::UnknownParticipant(_)));
    }
}
