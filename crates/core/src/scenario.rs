//! Scenario builders: assemble a simulated world, a cast of participants and
//! an AC2T graph in one call, so examples, tests and benchmarks share the
//! same setup code.

use crate::graph::{ring_graph, SwapEdge, SwapGraph};
use ac3_chain::{Address, Amount, ChainId, ChainParams};
use ac3_sim::{ParticipantSet, SwapId, World};

/// Configuration of a scenario's chains and funding.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Template for every asset chain (the name gets an index suffix).
    pub asset_chain_template: ChainParams,
    /// Parameters of the witness chain.
    pub witness_chain_template: ChainParams,
    /// Genesis balance granted to every participant on every chain
    /// (assets to swap plus fee budget).
    pub funding: Amount,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        // Fast chains so unit tests and examples complete in milliseconds of
        // wall-clock time: 1-second blocks, stability after 3 confirmations.
        let mut asset = ChainParams::test("asset");
        asset.block_interval_ms = 1_000;
        asset.stable_depth = 3;
        let mut witness = ChainParams::test("witness");
        witness.block_interval_ms = 1_000;
        witness.stable_depth = 3;
        ScenarioConfig {
            asset_chain_template: asset,
            witness_chain_template: witness,
            funding: 1_000,
        }
    }
}

impl ScenarioConfig {
    /// A configuration using the paper's Table 1 chains for the asset
    /// chains that exist (Bitcoin, Ethereum, Litecoin, Bitcoin Cash, then
    /// repeating) and Bitcoin-like parameters for the witness chain.
    /// Intended for the throughput experiment, not for fast unit tests.
    pub fn table1() -> Self {
        ScenarioConfig {
            asset_chain_template: ChainParams::bitcoin_like(),
            witness_chain_template: ChainParams::bitcoin_like(),
            funding: 100_000,
        }
    }
}

/// A fully assembled scenario.
pub struct Scenario {
    /// The simulated multi-chain world (asset chains + witness chain).
    pub world: World,
    /// The cast of participants.
    pub participants: ParticipantSet,
    /// The AC2T graph to execute.
    pub graph: SwapGraph,
    /// The witness chain's id.
    pub witness_chain: ChainId,
    /// The asset chains, in edge order (edge `i` lives on
    /// `asset_chains[i]`).
    pub asset_chains: Vec<ChainId>,
}

impl Scenario {
    /// The world's Δ (see [`World::delta_ms`]).
    pub fn delta_ms(&self) -> u64 {
        self.world.delta_ms()
    }
}

/// Build a scenario whose graph is given as `(from_index, to_index, amount)`
/// triples over `names`; each edge is assigned its own asset chain.
pub fn custom_scenario(
    names: &[&str],
    edge_specs: &[(usize, usize, Amount)],
    cfg: &ScenarioConfig,
) -> Scenario {
    assert!(!names.is_empty(), "a scenario needs participants");
    assert!(!edge_specs.is_empty(), "a scenario needs at least one edge");

    let mut participants = ParticipantSet::new();
    let addresses: Vec<Address> = names.iter().map(|n| participants.add(n)).collect();
    // `ParticipantSet::add` returns addresses, but `addresses()` is ordered
    // by name; keep the caller's order here.
    let genesis: Vec<(Address, Amount)> = addresses.iter().map(|a| (*a, cfg.funding)).collect();

    let mut world = World::new();
    let mut asset_chains = Vec::with_capacity(edge_specs.len());
    for i in 0..edge_specs.len() {
        let mut params = cfg.asset_chain_template.clone();
        params.name = format!("{}-{i}", cfg.asset_chain_template.name);
        asset_chains.push(world.add_chain(params, &genesis));
    }
    let mut witness_params = cfg.witness_chain_template.clone();
    witness_params.name = format!("{}-witness", cfg.witness_chain_template.name);
    let witness_chain = world.add_chain(witness_params, &genesis);

    let edges: Vec<SwapEdge> = edge_specs
        .iter()
        .enumerate()
        .map(|(i, (from, to, amount))| SwapEdge {
            from: addresses[*from],
            to: addresses[*to],
            amount: *amount,
            chain: asset_chains[i],
        })
        .collect();
    let graph = SwapGraph::new(edges, 1).expect("edge specs produce a valid graph");

    Scenario { world, participants, graph, witness_chain, asset_chains }
}

/// One AC2T of a concurrent batch: its id (used for fee attribution), its
/// graph over the batch's shared chains, and its coordinating witness chain.
#[derive(Debug, Clone)]
pub struct SwapSpec {
    /// The swap's id within the batch.
    pub id: SwapId,
    /// The AC2T graph, over the scenario's shared chains.
    pub graph: SwapGraph,
    /// The witness chain coordinating this swap (one of the scenario's
    /// [`MultiSwapScenario::witness_chains`]; only meaningful for witnessed
    /// protocols — baseline machines ignore it).
    pub witness: ChainId,
}

/// A batch of AC2Ts sharing a set of asset chains and one or more witness
/// chains — the contention workloads of Sections 5.2 and 6.4: swaps compete
/// for block space in the shared mempools instead of each owning a private
/// world.
pub struct MultiSwapScenario {
    /// The shared multi-chain world.
    pub world: World,
    /// Every participant of every swap (fresh participants per swap).
    pub participants: ParticipantSet,
    /// The batch, in id order.
    pub swaps: Vec<SwapSpec>,
    /// The shared witness chains; each swap is assigned one (round-robin)
    /// in its [`SwapSpec::witness`]. The Section 6.4 workload uses a single
    /// witness chain, the Section 5.2 scalability workload uses k of them.
    pub witness_chains: Vec<ChainId>,
    /// The shared asset chains.
    pub asset_chains: Vec<ChainId>,
}

impl MultiSwapScenario {
    /// Build the scheduler input from a per-swap machine constructor — the
    /// one adapter from the batch to `Scheduler::run`, shared by tests,
    /// benches and binaries.
    pub fn machines_with<F>(
        &self,
        mut make: F,
    ) -> Vec<(SwapId, Box<dyn crate::driver::SwapMachine>)>
    where
        F: FnMut(&SwapSpec) -> Box<dyn crate::driver::SwapMachine>,
    {
        self.swaps.iter().map(|swap| (swap.id, make(swap))).collect()
    }

    /// Build deferred machine seeds for
    /// [`crate::scheduler::Scheduler::run_assigned`]: the scheduler picks
    /// each swap's witness chain at launch time (ignoring the static
    /// round-robin pre-assignment in [`SwapSpec::witness`]) and hands it to
    /// `make`.
    pub fn seeds_with<F>(&self, make: F) -> Vec<(SwapId, crate::scheduler::MachineSeed)>
    where
        F: Fn(&SwapSpec, ChainId) -> Box<dyn crate::driver::SwapMachine> + 'static,
    {
        let make = std::rc::Rc::new(make);
        self.swaps
            .iter()
            .map(|swap| {
                let spec = swap.clone();
                let make = make.clone();
                let seed: crate::scheduler::MachineSeed =
                    Box::new(move |witness: ChainId| make(&spec, witness));
                (swap.id, seed)
            })
            .collect()
    }
}

/// Build a batch of `swaps` two-party AC2Ts over `chains` shared asset
/// chains (templates from `cfg`) plus one shared witness chain. Swap `i`
/// runs between its own pair of participants; its two edges land on chains
/// `i % chains` and `(i + 1) % chains` (round-robin), so neighbouring swaps
/// contend for the same block space.
pub fn concurrent_swaps_scenario(
    swaps: usize,
    chains: usize,
    cfg: &ScenarioConfig,
) -> MultiSwapScenario {
    let asset_params = (0..chains)
        .map(|i| {
            let mut p = cfg.asset_chain_template.clone();
            p.name = format!("{}-{i}", cfg.asset_chain_template.name);
            p
        })
        .collect();
    let mut witness_params = cfg.witness_chain_template.clone();
    witness_params.name = format!("{}-witness", cfg.witness_chain_template.name);
    concurrent_swaps_over_chains(swaps, asset_params, witness_params, cfg.funding)
}

/// Like [`concurrent_swaps_scenario`], but with explicit per-chain
/// parameters — the contention-throughput experiment uses this to make one
/// involved chain the tps bottleneck.
pub fn concurrent_swaps_over_chains(
    swaps: usize,
    asset_params: Vec<ChainParams>,
    witness_params: ChainParams,
    funding: Amount,
) -> MultiSwapScenario {
    concurrent_swaps_multi_witness(swaps, asset_params, vec![witness_params], funding)
}

/// Like [`concurrent_swaps_over_chains`], but with k real shared witness
/// chains in the one world — the Section 5.2 scalability workload. Swap `i`
/// is coordinated by witness chain `i % k` (round-robin), so the
/// coordination load of B swaps splits across k witness mempools and the
/// serialization cost of a shared witness layer is *measured* (genuine
/// block-space queueing under the scheduler) rather than modelled by
/// throttling a private chain.
pub fn concurrent_swaps_multi_witness(
    swaps: usize,
    asset_params: Vec<ChainParams>,
    witness_params: Vec<ChainParams>,
    funding: Amount,
) -> MultiSwapScenario {
    assert!(swaps >= 1, "a batch needs at least one swap");
    assert!(!asset_params.is_empty(), "a batch needs at least one asset chain");
    assert!(!witness_params.is_empty(), "a batch needs at least one witness chain");

    let mut participants = ParticipantSet::new();
    let pairs: Vec<(Address, Address)> = (0..swaps)
        .map(|i| (participants.add(&format!("s{i}a")), participants.add(&format!("s{i}b"))))
        .collect();
    let genesis: Vec<(Address, Amount)> =
        participants.addresses().into_iter().map(|a| (a, funding)).collect();

    let mut world = World::new();
    let asset_chains: Vec<ChainId> =
        asset_params.into_iter().map(|p| world.add_chain(p, &genesis)).collect();
    let witness_chains: Vec<ChainId> =
        witness_params.into_iter().map(|p| world.add_chain(p, &genesis)).collect();

    let m = asset_chains.len();
    let k = witness_chains.len();
    let specs = pairs
        .iter()
        .enumerate()
        .map(|(i, (a, b))| {
            let edges = vec![
                SwapEdge { from: *a, to: *b, amount: 50, chain: asset_chains[i % m] },
                SwapEdge { from: *b, to: *a, amount: 80, chain: asset_chains[(i + 1) % m] },
            ];
            SwapSpec {
                id: SwapId(i as u64),
                graph: SwapGraph::new(edges, i as u64 + 1).expect("two-party graphs are valid"),
                witness: witness_chains[i % k],
            }
        })
        .collect();

    MultiSwapScenario { world, participants, swaps: specs, witness_chains, asset_chains }
}

/// A concurrent batch of AC2Ts with *arbitrary* per-swap graphs — the
/// mixed-protocol workload: complex multi-party graphs (rings, bridged
/// cycles) interleave with plain two-party swaps over shared chains.
///
/// `graph_specs[i]` describes swap `i` as `(from, to, amount)` triples over
/// that swap's own participants (indices are per-swap; participant `j` of
/// swap `i` is named `s{i}p{j}`). Edge `j` of swap `i` is placed on asset
/// chain `(i + j) % m` and the swap is coordinated by witness chain
/// `i % k`, so neighbouring swaps contend for the same block space.
pub fn concurrent_custom_swaps(
    graph_specs: &[Vec<(usize, usize, Amount)>],
    asset_params: Vec<ChainParams>,
    witness_params: Vec<ChainParams>,
    funding: Amount,
) -> MultiSwapScenario {
    assert!(!graph_specs.is_empty(), "a batch needs at least one swap");
    assert!(!asset_params.is_empty(), "a batch needs at least one asset chain");
    assert!(!witness_params.is_empty(), "a batch needs at least one witness chain");

    let mut participants = ParticipantSet::new();
    let cast: Vec<Vec<Address>> = graph_specs
        .iter()
        .enumerate()
        .map(|(i, edges)| {
            assert!(!edges.is_empty(), "swap {i} needs at least one edge");
            let n = edges.iter().map(|(f, t, _)| f.max(t) + 1).max().unwrap();
            (0..n).map(|j| participants.add(&format!("s{i}p{j}"))).collect()
        })
        .collect();
    let genesis: Vec<(Address, Amount)> =
        participants.addresses().into_iter().map(|a| (a, funding)).collect();

    let mut world = World::new();
    let asset_chains: Vec<ChainId> =
        asset_params.into_iter().map(|p| world.add_chain(p, &genesis)).collect();
    let witness_chains: Vec<ChainId> =
        witness_params.into_iter().map(|p| world.add_chain(p, &genesis)).collect();

    let m = asset_chains.len();
    let k = witness_chains.len();
    let specs = graph_specs
        .iter()
        .enumerate()
        .map(|(i, edge_specs)| {
            let edges: Vec<SwapEdge> = edge_specs
                .iter()
                .enumerate()
                .map(|(j, (from, to, amount))| SwapEdge {
                    from: cast[i][*from],
                    to: cast[i][*to],
                    amount: *amount,
                    chain: asset_chains[(i + j) % m],
                })
                .collect();
            SwapSpec {
                id: SwapId(i as u64),
                graph: SwapGraph::new(edges, i as u64 + 1)
                    .expect("edge specs produce valid graphs"),
                witness: witness_chains[i % k],
            }
        })
        .collect();

    MultiSwapScenario { world, participants, swaps: specs, witness_chains, asset_chains }
}

/// A batch of two-party AC2Ts grouped into mutually *disjoint* clusters —
/// the sharded scale workload of the parallel scheduler. Each cluster owns
/// `chains_per_cluster` asset chains plus one witness chain, and those
/// chains are genesis-funded **only** with that cluster's participants:
/// genesis size stays `O(swaps_per_cluster)` per chain instead of
/// `O(total swaps)`, which is what makes worlds with hundreds of chains
/// and 10k+ swaps buildable at all. Because no chain or participant is
/// shared across clusters, [`crate::partition::partition_batch`] splits
/// the batch into exactly one data-disjoint shard per cluster.
///
/// Within a cluster the wiring matches [`concurrent_swaps_scenario`]:
/// swap `j`'s two edges land on the cluster's chains `j % m` and
/// `(j + 1) % m`, so clustermates genuinely contend for block space.
/// Swap ids are global (`cluster * swaps_per_cluster + j`) and specs come
/// back in id order.
pub fn clustered_swaps_scenario(
    clusters: usize,
    swaps_per_cluster: usize,
    chains_per_cluster: usize,
    cfg: &ScenarioConfig,
) -> MultiSwapScenario {
    assert!(clusters >= 1, "a clustered batch needs at least one cluster");
    assert!(swaps_per_cluster >= 1, "each cluster needs at least one swap");
    assert!(chains_per_cluster >= 1, "each cluster needs at least one asset chain");

    let mut world = World::new();
    let mut participants = ParticipantSet::new();
    let mut specs = Vec::with_capacity(clusters * swaps_per_cluster);
    let mut witness_chains = Vec::with_capacity(clusters);
    let mut asset_chains = Vec::with_capacity(clusters * chains_per_cluster);
    for c in 0..clusters {
        let pairs: Vec<(Address, Address)> = (0..swaps_per_cluster)
            .map(|j| {
                (participants.add(&format!("c{c}s{j}a")), participants.add(&format!("c{c}s{j}b")))
            })
            .collect();
        // Cluster-local genesis: only this cluster's cast holds balances on
        // this cluster's chains.
        let genesis: Vec<(Address, Amount)> =
            pairs.iter().flat_map(|(a, b)| [(*a, cfg.funding), (*b, cfg.funding)]).collect();

        let cluster_chains: Vec<ChainId> = (0..chains_per_cluster)
            .map(|i| {
                let mut p = cfg.asset_chain_template.clone();
                p.name = format!("{}-c{c}-{i}", cfg.asset_chain_template.name);
                world.add_chain(p, &genesis)
            })
            .collect();
        let mut witness_params = cfg.witness_chain_template.clone();
        witness_params.name = format!("{}-c{c}-witness", cfg.witness_chain_template.name);
        let witness = world.add_chain(witness_params, &genesis);

        let m = cluster_chains.len();
        for (j, (a, b)) in pairs.iter().enumerate() {
            let id = SwapId((c * swaps_per_cluster + j) as u64);
            let edges = vec![
                SwapEdge { from: *a, to: *b, amount: 50, chain: cluster_chains[j % m] },
                SwapEdge { from: *b, to: *a, amount: 80, chain: cluster_chains[(j + 1) % m] },
            ];
            specs.push(SwapSpec {
                id,
                graph: SwapGraph::new(edges, id.0 + 1).expect("two-party graphs are valid"),
                witness,
            });
        }
        witness_chains.push(witness);
        asset_chains.extend(cluster_chains);
    }

    MultiSwapScenario { world, participants, swaps: specs, witness_chains, asset_chains }
}

/// The paper's running example (Figure 4): Alice swaps `x` for Bob's `y`,
/// each asset on its own chain.
pub fn two_party_scenario(x: Amount, y: Amount, cfg: &ScenarioConfig) -> Scenario {
    custom_scenario(&["alice", "bob"], &[(0, 1, x), (1, 0, y)], cfg)
}

/// A ring of `n` participants (P0 → P1 → ... → P0), one chain per edge —
/// the diameter-sweep workload of the Figure 10 reproduction.
pub fn ring_scenario(n: usize, amount: Amount, cfg: &ScenarioConfig) -> Scenario {
    assert!(n >= 2, "a ring needs at least two participants");
    let names: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

    let mut participants = ParticipantSet::new();
    let addresses: Vec<Address> = name_refs.iter().map(|n| participants.add(n)).collect();
    let genesis: Vec<(Address, Amount)> = addresses.iter().map(|a| (*a, cfg.funding)).collect();

    let mut world = World::new();
    let mut asset_chains = Vec::with_capacity(n);
    for i in 0..n {
        let mut params = cfg.asset_chain_template.clone();
        params.name = format!("{}-{i}", cfg.asset_chain_template.name);
        asset_chains.push(world.add_chain(params, &genesis));
    }
    let mut witness_params = cfg.witness_chain_template.clone();
    witness_params.name = format!("{}-witness", cfg.witness_chain_template.name);
    let witness_chain = world.add_chain(witness_params, &genesis);

    let graph = ring_graph(&addresses, &asset_chains, amount);
    Scenario { world, participants, graph, witness_chain, asset_chains }
}

/// The cyclic graph of Figure 7a as a runnable scenario.
pub fn figure7a_scenario(cfg: &ScenarioConfig) -> Scenario {
    custom_scenario(&["a", "b", "c"], &[(0, 1, 10), (1, 2, 20), (2, 0, 30)], cfg)
}

/// The disconnected graph of Figure 7b as a runnable scenario.
pub fn figure7b_scenario(cfg: &ScenarioConfig) -> Scenario {
    custom_scenario(&["a", "b", "c", "d"], &[(0, 1, 10), (1, 0, 20), (2, 3, 30), (3, 2, 40)], cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphShape;

    #[test]
    fn two_party_scenario_is_wired_up() {
        let s = two_party_scenario(50, 80, &ScenarioConfig::default());
        assert_eq!(s.graph.contract_count(), 2);
        assert_eq!(s.asset_chains.len(), 2);
        assert_eq!(s.participants.len(), 2);
        // Every participant is funded on every chain.
        let alice = s.participants.get("alice").unwrap().address();
        for chain in s.asset_chains.iter().chain([&s.witness_chain]) {
            assert_eq!(s.world.chain(*chain).unwrap().balance_of(&alice), 1_000);
        }
        // Edges map to distinct chains, none of which is the witness chain.
        assert!(!s.asset_chains.contains(&s.witness_chain));
    }

    #[test]
    fn ring_scenario_diameter_matches_n() {
        for n in 2..6 {
            let s = ring_scenario(n, 10, &ScenarioConfig::default());
            assert_eq!(s.graph.diameter(), n as u64);
            assert_eq!(s.asset_chains.len(), n);
            assert_eq!(s.participants.len(), n);
        }
    }

    #[test]
    fn figure7_scenarios_have_expected_shapes() {
        let a = figure7a_scenario(&ScenarioConfig::default());
        assert_eq!(a.graph.shape(), GraphShape::Cyclic);
        assert_eq!(a.graph.contract_count(), 3);
        let b = figure7b_scenario(&ScenarioConfig::default());
        assert_eq!(b.graph.shape(), GraphShape::Disconnected);
        assert_eq!(b.graph.contract_count(), 4);
    }

    #[test]
    fn clustered_scenario_funds_only_clustermates() {
        let s = clustered_swaps_scenario(3, 2, 2, &ScenarioConfig::default());
        assert_eq!(s.swaps.len(), 6);
        assert_eq!(s.witness_chains.len(), 3);
        assert_eq!(s.asset_chains.len(), 6);
        assert_eq!(s.participants.len(), 12);
        // Ids are global and in order.
        for (i, swap) in s.swaps.iter().enumerate() {
            assert_eq!(swap.id, SwapId(i as u64));
        }
        // Cluster 0's first sender is funded on cluster 0's chains only.
        let a0 = s.participants.get("c0s0a").unwrap().address();
        assert_eq!(s.world.chain(s.asset_chains[0]).unwrap().balance_of(&a0), 1_000);
        assert_eq!(s.world.chain(s.witness_chains[0]).unwrap().balance_of(&a0), 1_000);
        assert_eq!(s.world.chain(s.asset_chains[2]).unwrap().balance_of(&a0), 0);
        assert_eq!(s.world.chain(s.witness_chains[1]).unwrap().balance_of(&a0), 0);
        // Swaps never cross clusters: each swap's chains and witness belong
        // to its own cluster.
        for (i, swap) in s.swaps.iter().enumerate() {
            let c = i / 2;
            assert_eq!(swap.witness, s.witness_chains[c]);
            for edge in swap.graph.edges() {
                assert!(s.asset_chains[c * 2..(c + 1) * 2].contains(&edge.chain));
            }
        }
    }

    #[test]
    fn delta_reflects_chain_parameters() {
        let s = two_party_scenario(1, 1, &ScenarioConfig::default());
        // 1-second blocks, stable depth 3 => Δ = 4 seconds.
        assert_eq!(s.delta_ms(), 4_000);
    }

    #[test]
    fn table1_config_uses_paper_throughputs() {
        let cfg = ScenarioConfig::table1();
        assert_eq!(cfg.asset_chain_template.tps, 7);
    }
}
