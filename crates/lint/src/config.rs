//! `lint.toml` parsing.
//!
//! The linter is dependency-free, so this module implements the small TOML
//! subset the committed configuration actually uses: `[section]` headers,
//! `key = "string"`, `key = true|false`, and (possibly multi-line) arrays
//! of strings. Unknown sections and keys are hard errors — a typo in the
//! rule configuration must not silently disable a rule.

use std::collections::BTreeMap;

/// One rule's raw configuration: string and string-array keys.
#[derive(Debug, Default, Clone)]
pub struct Section {
    strings: BTreeMap<String, String>,
    arrays: BTreeMap<String, Vec<String>>,
    bools: BTreeMap<String, bool>,
}

impl Section {
    /// A string value.
    pub fn string(&self, key: &str) -> Option<&str> {
        self.strings.get(key).map(String::as_str)
    }

    /// An array-of-strings value (empty slice when absent).
    pub fn array(&self, key: &str) -> &[String] {
        self.arrays.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A boolean value.
    pub fn bool(&self, key: &str) -> Option<bool> {
        self.bools.get(key).copied()
    }

    /// Every key present in this section (for validation).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.strings.keys().chain(self.arrays.keys()).chain(self.bools.keys()).map(String::as_str)
    }

    /// Insert a string-array key (used by tests building configs in code).
    pub fn set_array<S: Into<String>>(&mut self, key: &str, values: Vec<S>) {
        self.arrays.insert(key.to_string(), values.into_iter().map(Into::into).collect());
    }

    /// Insert a string key (used by tests building configs in code).
    pub fn set_string(&mut self, key: &str, value: &str) {
        self.strings.insert(key.to_string(), value.to_string());
    }
}

/// The parsed configuration: one [`Section`] per `[rule]` header.
#[derive(Debug, Default, Clone)]
pub struct Config {
    sections: BTreeMap<String, Section>,
}

impl Config {
    /// Parse a `lint.toml` document.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut current: Option<String> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().to_string();
                if config.sections.contains_key(&name) {
                    return Err(format!("line {lineno}: duplicate section [{name}]"));
                }
                config.sections.insert(name.clone(), Section::default());
                current = Some(name);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = value`, got `{line}`"));
            };
            let Some(section) = current.as_ref() else {
                return Err(format!("line {lineno}: `{line}` outside any [section]"));
            };
            let key = key.trim().to_string();
            let mut value = value.trim().to_string();
            if value.starts_with('[') {
                // Array, possibly spanning lines: accumulate until the
                // bracket balance closes outside strings.
                while !array_closed(&value) {
                    let Some((_, next)) = lines.next() else {
                        return Err(format!("line {lineno}: unterminated array for `{key}`"));
                    };
                    value.push('\n');
                    value.push_str(strip_comment(next).trim());
                }
                let items = parse_string_array(&value)
                    .map_err(|e| format!("line {lineno}: array for `{key}`: {e}"))?;
                config.sections.get_mut(section).unwrap().arrays.insert(key, items);
            } else if value == "true" || value == "false" {
                config.sections.get_mut(section).unwrap().bools.insert(key, value == "true");
            } else if let Some(s) = parse_string(&value) {
                config.sections.get_mut(section).unwrap().strings.insert(key, s);
            } else {
                return Err(format!("line {lineno}: unsupported value `{value}` for `{key}`"));
            }
        }
        Ok(config)
    }

    /// A section by rule name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.get(name)
    }

    /// Insert or replace a section (used by tests building configs in code).
    pub fn set_section(&mut self, name: &str, section: Section) {
        self.sections.insert(name.to_string(), section);
    }

    /// Every configured section name.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }
}

/// Strip a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Whether an accumulated array literal has balanced brackets outside
/// strings.
fn array_closed(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    for c in value.chars() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth == 0
}

/// Parse `"…"` into its contents (no escape support needed for paths).
fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

/// Parse `["a", "b", …]` into its items.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.trim_end().strip_suffix(']'))
        .ok_or("not an array")?;
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        items.push(parse_string(part).ok_or_else(|| format!("`{part}` is not a string"))?);
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_arrays_and_bools() {
        let config = Config::parse(
            r#"
            # top comment
            [wall-clock]
            crates = ["crates/core/src", "crates/sim/src"] # trailing comment
            banned-modules = [
                "std::time",
            ]
            [no-unsafe]
            require-forbid = ["src/lib.rs"]
            strict = true
            label = "forbid"
            "#,
        )
        .unwrap();
        let wc = config.section("wall-clock").unwrap();
        assert_eq!(wc.array("crates"), ["crates/core/src", "crates/sim/src"]);
        assert_eq!(wc.array("banned-modules"), ["std::time"]);
        let nu = config.section("no-unsafe").unwrap();
        assert_eq!(nu.bool("strict"), Some(true));
        assert_eq!(nu.string("label"), Some("forbid"));
    }

    #[test]
    fn rejects_keys_outside_sections_and_bad_values() {
        assert!(Config::parse("key = \"v\"").is_err());
        assert!(Config::parse("[a]\nkey = 12notastring").is_err());
        assert!(Config::parse("[a]\n[a]").is_err());
    }
}
